//! K-means: cluster-assignment step.
//!
//! Each work-item assigns one 4-dimensional point to the nearest of 16
//! centroids staged in local memory. Moderately compute-dominated —
//! K-means sits in the paper's middle accuracy band (Table 2,
//! `D = 0.0155`).

use crate::Workload;
use gpufreq_kernel::LaunchConfig;

/// Kernel source: nearest-centroid assignment over local centroids.
pub fn source() -> String {
    r#"
__kernel void kmeans_assign(__global float* points, __global float* centroids_g,
                            __global int* assignment, int k, int dims) {
    __local float centroids[64];
    uint gid = get_global_id(0);
    uint lid = get_local_id(0);
    if (lid < 64u) {
        centroids[lid] = centroids_g[lid];
    }
    barrier(0);
    uint base = gid * 4u;
    float p0 = points[base];
    float p1 = points[base + 1u];
    float p2 = points[base + 2u];
    float p3 = points[base + 3u];
    float best = 1000000000.0f;
    int best_c = 0;
    for (int c = 0; c < k; c += 1) {
        uint cb = (uint)c * 4u;
        float d0 = centroids[cb] - p0;
        float d1 = centroids[cb + 1u] - p1;
        float d2 = centroids[cb + 2u] - p2;
        float d3 = centroids[cb + 3u] - p3;
        float dist = d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3;
        if (dist < best) {
            best = dist;
            best_c = c;
        }
    }
    assignment[gid] = best_c;
}
"#
    .to_string()
}

/// The K-means benchmark: 2²⁰ points, 16 centroids, 4 dimensions.
pub fn workload() -> Workload {
    Workload {
        name: "kmeans",
        display_name: "K-means",
        source: source(),
        launch: LaunchConfig::new(1 << 20, 256),
        bindings: vec![("k", 16), ("dims", 4)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::InstrClass;

    #[test]
    fn centroid_loop_resolves() {
        let p = workload().profile();
        // 16 centroids x 4 local loads.
        assert!((p.counts.get(InstrClass::LocalLoad) - 64.0).abs() < 1.0);
    }

    #[test]
    fn distance_math_dominates() {
        let f = workload().static_features();
        assert!(
            f.get(4) + f.get(5) > 0.3,
            "float share {}",
            f.get(4) + f.get(5)
        );
    }
}
