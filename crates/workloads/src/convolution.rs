//! 1-D convolution with a wide computed-coefficient window.
//!
//! Each work-item convolves a 49-tap window over a row tile staged in
//! local memory, with Gaussian-like weights computed arithmetically in
//! registers (so the coefficient table costs no memory traffic).
//! Compute-dominated (Fig. 5d): the float-divide-heavy weight
//! computation scales with the core clock.

use crate::Workload;
use gpufreq_kernel::LaunchConfig;

/// Kernel source: 49-tap convolution over a staged tile.
pub fn source() -> String {
    r#"
__kernel void convolution(__global float* input, __global float* output,
                          int taps, float sigma) {
    __local float tile[256];
    uint gid = get_global_id(0);
    uint lid = get_local_id(0);
    tile[lid] = input[gid];
    barrier(0);
    float acc = 0.0f;
    float norm = 0.0f;
    for (int j = 0; j < taps; j += 1) {
        int offset = j - 24;
        float d = (float)offset / sigma;
        float w = 1.0f / (1.0f + d * d);
        acc = acc + w * tile[((int)lid + offset) & 255];
        norm = norm + w;
    }
    output[gid] = acc / norm;
}
"#
    .to_string()
}

/// The Convolution benchmark: 2²⁰ samples, 49 taps.
pub fn workload() -> Workload {
    Workload {
        name: "convolution",
        display_name: "Convolution",
        source: source(),
        launch: LaunchConfig::new(1 << 20, 256),
        bindings: vec![("taps", 49)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::InstrClass;

    #[test]
    fn tap_loop_resolves() {
        let p = workload().profile();
        // One local load and one float divide per tap.
        assert!((p.counts.get(InstrClass::LocalLoad) - 49.0).abs() < 1.0);
        assert!(p.counts.get(InstrClass::FloatDiv) >= 49.0);
    }

    #[test]
    fn float_div_is_a_visible_feature() {
        let f = workload().static_features();
        assert!(f.get(6) > 0.05, "float_div share {}", f.get(6));
    }
}
