//! Dense matrix multiplication (tiled, local-memory staged).
//!
//! `C = A · B` for 1024×1024 single-precision matrices, one work-item
//! per output element, with 256-element tiles of `A` and `B` staged
//! cooperatively in local memory. Compute-dominated: the inner loop is
//! a multiply-accumulate chain over local memory at the core clock.

use crate::Workload;
use gpufreq_kernel::LaunchConfig;

/// Kernel source: tiled GEMM with cooperative local staging.
pub fn source() -> String {
    r#"
__kernel void matmul(__global float* a, __global float* b, __global float* c,
                     int n, int tiles) {
    __local float a_tile[256];
    __local float b_tile[256];
    uint gid = get_global_id(0);
    uint lid = get_local_id(0);
    uint row = gid / 1024u;
    uint col = gid % 1024u;
    float acc = 0.0f;
    for (int t = 0; t < tiles; t += 1) {
        uint k_base = (uint)t * 256u;
        a_tile[lid] = a[row * 1024u + k_base + lid];
        b_tile[lid] = b[(k_base + lid) * 1024u + col];
        barrier(0);
        for (int k = 0; k < 256; k += 1) {
            acc = acc + a_tile[k] * b_tile[k];
        }
        barrier(0);
    }
    c[gid] = acc;
}
"#
    .to_string()
}

/// The Matrix Multiply benchmark: 1024² output elements, K = 1024.
pub fn workload() -> Workload {
    Workload {
        name: "matmul",
        display_name: "MatrixMultiply",
        source: source(),
        launch: LaunchConfig::new(1 << 20, 256),
        bindings: vec![("n", 1024), ("tiles", 4)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::InstrClass;

    #[test]
    fn fma_chain_dominates() {
        let p = workload().profile();
        // 4 tiles x 256 iterations of mul + add.
        assert!((p.counts.get(InstrClass::FloatMul) - 1024.0).abs() < 1.0);
        assert!(p.counts.get(InstrClass::FloatAdd) >= 1024.0);
        // 2 local loads per inner iteration + 2 stores per tile.
        assert!(p.counts.get(InstrClass::LocalLoad) >= 2048.0);
    }

    #[test]
    fn uses_integer_division_for_indexing() {
        let p = workload().profile();
        assert!(
            p.counts.get(InstrClass::IntDiv) >= 2.0,
            "row/col use div and mod"
        );
    }

    #[test]
    fn global_traffic_is_small_relative_to_flops() {
        let p = workload().profile();
        let flops = p.counts.get(InstrClass::FloatMul) + p.counts.get(InstrClass::FloatAdd);
        assert!(flops * 4.0 > p.global_read_bytes + p.global_write_bytes);
    }
}
