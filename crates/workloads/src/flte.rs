//! Flte: filtered linear time estimation (32-tap FIR smoother).
//!
//! A signal-processing kernel: each work-item applies a 32-tap FIR
//! filter with exponentially decaying coefficients over a sample tile
//! staged in local memory, then emits a slope estimate. Sits between
//! the compute- and memory-dominated groups, matching Flte's mid-table
//! position in the paper (Table 2, `D = 0.0279`).

use crate::Workload;
use gpufreq_kernel::LaunchConfig;

/// Kernel source: FIR smoothing plus slope estimation.
pub fn source() -> String {
    r#"
__kernel void flte(__global float* samples, __global float* estimate,
                   int taps, float decay) {
    __local float tile[256];
    uint gid = get_global_id(0);
    uint lid = get_local_id(0);
    tile[lid] = samples[gid];
    barrier(0);
    float acc = 0.0f;
    float w = 1.0f;
    float wsum = 0.0f;
    float slope = 0.0f;
    for (int j = 0; j < taps; j += 1) {
        float s = tile[((int)lid - j) & 255];
        acc = acc + w * s;
        slope = slope + w * (float)j * s;
        wsum = wsum + w;
        w = w * decay;
    }
    float mean = acc / wsum;
    estimate[gid] = mean + slope * 0.001f;
}
"#
    .to_string()
}

/// The Flte benchmark: 2²⁰ samples, 32 taps.
pub fn workload() -> Workload {
    Workload {
        name: "flte",
        display_name: "Flte",
        source: source(),
        launch: LaunchConfig::new(1 << 20, 256),
        bindings: vec![("taps", 32)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::InstrClass;

    #[test]
    fn tap_loop_resolves() {
        let p = workload().profile();
        assert!((p.counts.get(InstrClass::LocalLoad) - 32.0).abs() < 1.0);
    }

    #[test]
    fn float_pipeline_dominates() {
        let f = workload().static_features();
        assert!(
            f.get(4) + f.get(5) > 0.35,
            "float share {}",
            f.get(4) + f.get(5)
        );
    }
}
