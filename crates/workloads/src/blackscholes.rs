//! Blackscholes European option pricing.
//!
//! The classic five-input / two-output pricing kernel with a rational
//! CND approximation. Despite the transcendental math, the per-element
//! work is small against 28 bytes of streaming traffic, so the kernel
//! is memory-dominated — matching the paper's observation that
//! "blackscholes shows very little speedup difference while increasing
//! the core frequency" (§4.2).

use crate::Workload;
use gpufreq_kernel::LaunchConfig;

/// Kernel source: Black-Scholes call/put pricing.
pub fn source() -> String {
    r#"
__kernel void blackscholes(__global float* spot, __global float* strike,
                           __global float* years, __global float* rate_buf,
                           __global float* vol_buf, __global float* call_out,
                           __global float* put_out) {
    uint gid = get_global_id(0);
    float s = spot[gid];
    float k = strike[gid];
    float t = years[gid];
    float r = rate_buf[gid];
    float v = vol_buf[gid];
    float sqrt_t = sqrt(t);
    float d1 = (log(s / k) + (r + 0.5f * v * v) * t) / (v * sqrt_t);
    float d2 = d1 - v * sqrt_t;
    // Cumulative normal via the Abramowitz-Stegun rational fit.
    float k1 = 1.0f / (1.0f + 0.2316419f * fabs(d1));
    float cnd1 = 1.0f - 0.3989423f * exp(-0.5f * d1 * d1)
        * k1 * (0.3193815f + k1 * (-0.3565638f + k1 * 1.7814779f));
    float k2 = 1.0f / (1.0f + 0.2316419f * fabs(d2));
    float cnd2 = 1.0f - 0.3989423f * exp(-0.5f * d2 * d2)
        * k2 * (0.3193815f + k2 * (-0.3565638f + k2 * 1.7814779f));
    if (d1 < 0.0f) {
        cnd1 = 1.0f - cnd1;
    }
    if (d2 < 0.0f) {
        cnd2 = 1.0f - cnd2;
    }
    float discount = exp(0.0f - r * t);
    float call = s * cnd1 - k * discount * cnd2;
    float put = k * discount * (1.0f - cnd2) - s * (1.0f - cnd1);
    call_out[gid] = call;
    put_out[gid] = put;
}
"#
    .to_string()
}

/// The Blackscholes benchmark: 2²⁰ options.
pub fn workload() -> Workload {
    Workload {
        name: "blackscholes",
        display_name: "Blackscholes",
        source: source(),
        launch: LaunchConfig::new(1 << 20, 256),
        bindings: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::InstrClass;

    #[test]
    fn five_in_two_out() {
        let p = workload().profile();
        assert_eq!(p.counts.get(InstrClass::GlobalLoad), 5.0);
        assert_eq!(p.counts.get(InstrClass::GlobalStore), 2.0);
        assert_eq!(p.global_read_bytes, 20.0);
        assert_eq!(p.global_write_bytes, 8.0);
    }

    #[test]
    fn transcendental_math_present() {
        let p = workload().profile();
        // sqrt, log, 3x exp.
        assert!(p.counts.get(InstrClass::SpecialFn) >= 5.0);
    }
}
