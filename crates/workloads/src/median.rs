//! 3×3 median filter (sorting-network selection).
//!
//! Each work-item loads a 3×3 neighbourhood from global memory and
//! selects the median with a min/max network. Nine uncached loads per
//! output pixel make the kernel memory-dominated (bottom group of
//! Fig. 5): speedup is flat in the core clock.

use crate::Workload;
use gpufreq_kernel::LaunchConfig;

/// Kernel source: 3×3 median via a partial sorting network.
pub fn source() -> String {
    r#"
__kernel void median_filter(__global float* img, __global float* out, uint width) {
    uint gid = get_global_id(0);
    uint up = gid - width;
    uint down = gid + width;
    float a0 = img[up - 1u];
    float a1 = img[up];
    float a2 = img[up + 1u];
    float a3 = img[gid - 1u];
    float a4 = img[gid];
    float a5 = img[gid + 1u];
    float a6 = img[down - 1u];
    float a7 = img[down];
    float a8 = img[down + 1u];
    // Median-of-9 selection network (Smith's construction, shortened).
    float lo = fmin(a0, a1); float hi = fmax(a0, a1); a0 = lo; a1 = hi;
    lo = fmin(a3, a4); hi = fmax(a3, a4); a3 = lo; a4 = hi;
    lo = fmin(a6, a7); hi = fmax(a6, a7); a6 = lo; a7 = hi;
    lo = fmin(a1, a2); hi = fmax(a1, a2); a1 = lo; a2 = hi;
    lo = fmin(a4, a5); hi = fmax(a4, a5); a4 = lo; a5 = hi;
    lo = fmin(a7, a8); hi = fmax(a7, a8); a7 = lo; a8 = hi;
    lo = fmin(a0, a1); a1 = fmax(a0, a1);
    lo = fmin(a3, a4); a4 = fmax(a3, a4);
    lo = fmin(a6, a7); a7 = fmax(a6, a7);
    a3 = fmax(a0, a3);
    a6 = fmax(a3, a6);
    a4 = fmin(a4, a7);
    a1 = fmin(a1, a4);
    a2 = fmin(a2, a5);
    a2 = fmin(a2, a8);
    a4 = fmax(a1, a6);
    a2 = fmax(a2, a4);
    out[gid] = fmin(a2, a4);
}
"#
    .to_string()
}

/// The Median Filter benchmark: a 1024×1024 image.
pub fn workload() -> Workload {
    Workload {
        name: "median",
        display_name: "MedianFilter",
        source: source(),
        launch: LaunchConfig::new(1 << 20, 256),
        bindings: vec![("width", 1024)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::InstrClass;

    #[test]
    fn nine_loads_per_pixel() {
        let p = workload().profile();
        assert_eq!(p.counts.get(InstrClass::GlobalLoad), 9.0);
        assert_eq!(p.counts.get(InstrClass::GlobalStore), 1.0);
        assert_eq!(p.global_read_bytes, 36.0);
    }

    #[test]
    fn high_access_share() {
        let f = workload().static_features();
        assert!(f.get(8) > 0.08, "gl_access share {}", f.get(8));
    }
}
