//! Mersenne Twister: parallel state twist + tempering.
//!
//! Each work-item performs one MT19937-style twist over the shared
//! state array (three state loads, one state store) and emits one
//! tempered output. The most memory-dominated benchmark in the paper
//! (§1.1, Fig. 1d–f): speedup is flat in the core clock and the
//! low-memory domains collapse to a line/point, which is what makes MT
//! hard to predict (§4.5).

use crate::Workload;
use gpufreq_kernel::LaunchConfig;

/// Kernel source: MT19937-style twist and temper.
pub fn source() -> String {
    r#"
__kernel void mersenne_twister(__global uint* state_in, __global uint* state_out,
                               __global uint* output, uint n, uint m) {
    uint gid = get_global_id(0);
    uint s_cur = state_in[gid];
    uint s_next = state_in[(gid + 1u) & (n - 1u)];
    uint s_m = state_in[(gid + m) & (n - 1u)];
    // Twist.
    uint y = (s_cur & 2147483648u) | (s_next & 2147483647u);
    uint twisted = s_m ^ (y >> 1);
    uint is_odd = y & 1u;
    if (is_odd == 1u) {
        twisted = twisted ^ 2567483615u;
    }
    state_out[gid] = twisted;
    // Temper.
    uint t = twisted;
    t = t ^ (t >> 11);
    t = t ^ ((t << 7) & 2636928640u);
    t = t ^ ((t << 15) & 4022730752u);
    t = t ^ (t >> 18);
    output[gid] = t;
}
"#
    .to_string()
}

/// The Mersenne Twister benchmark: a 2²⁰-word state.
pub fn workload() -> Workload {
    Workload {
        name: "mt",
        display_name: "MT",
        source: source(),
        launch: LaunchConfig::new(1 << 20, 256),
        bindings: vec![("n", 1 << 20), ("m", 397)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::InstrClass;

    #[test]
    fn state_traffic() {
        let p = workload().profile();
        assert_eq!(p.counts.get(InstrClass::GlobalLoad), 3.0);
        assert_eq!(p.counts.get(InstrClass::GlobalStore), 2.0);
    }

    #[test]
    fn bitwise_tempering_visible() {
        let f = workload().static_features();
        assert!(f.get(3) > 0.2, "int_bw share {}", f.get(3));
        assert!(f.get(8) > 0.1, "gl_access share {}", f.get(8));
    }
}
