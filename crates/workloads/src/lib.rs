//! `gpufreq-workloads` — the twelve test benchmarks of the paper's
//! evaluation (§4.2), written as real kernels in the OpenCL-C subset.
//!
//! The paper evaluates its predictor on twelve applications:
//! Perlin Noise, Molecular Dynamics (MD), K-means, Median Filter,
//! Convolution, Blackscholes, Mersenne Twister (MT), Flte,
//! Matrix Multiply, Bit Compression, AES, and k-NN. Each module here
//! contains the kernel source, launch geometry, and problem-size
//! bindings for one of them. The sources are genuine code — the feature
//! extractor and the simulator only ever see what they can derive from
//! the kernel text, exactly as the paper's pipeline only sees the
//! compiled OpenCL.
//!
//! The kernels are written to reproduce each application's published
//! character (§4.2, Fig. 5): k-NN, AES, Matrix Multiply, Convolution,
//! MD, K-means, Perlin Noise and Flte are compute-dominated (speedup
//! scales with the core clock), while Median Filter, Bit Compression,
//! MT and Blackscholes are memory-dominated (flat in the core clock,
//! sensitive to the memory clock).

#![warn(missing_docs)]

pub mod aes;
pub mod bitcompression;
pub mod blackscholes;
pub mod convolution;
pub mod flte;
pub mod kmeans;
pub mod knn;
pub mod matmul;
pub mod md;
pub mod median;
pub mod mt;
pub mod perlin;

use gpufreq_kernel::{parse, AnalysisConfig, KernelProfile, LaunchConfig, Program, StaticFeatures};
use serde::Serialize;

/// One test benchmark: kernel source plus everything needed to run it.
///
/// Serializable for tooling output; not deserializable, since the
/// name fields are `&'static str` borrowed from the binary itself.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Workload {
    /// Short machine name (`"knn"`, `"aes"`, ...).
    pub name: &'static str,
    /// Name as printed in the paper's figures (`"k-NN"`, `"AES"`, ...).
    pub display_name: &'static str,
    /// Kernel source in the OpenCL-C subset.
    pub source: String,
    /// Launch geometry.
    pub launch: LaunchConfig,
    /// Problem-size parameter bindings for the static analysis.
    pub bindings: Vec<(&'static str, i64)>,
}

impl Workload {
    /// Parse the kernel source.
    pub fn program(&self) -> Program {
        parse(&self.source).expect("workload sources always parse")
    }

    /// The analysis configuration (problem-size bindings applied).
    pub fn analysis_config(&self) -> AnalysisConfig {
        AnalysisConfig::with_bindings(self.bindings.iter().map(|(k, v)| (k.to_string(), *v)))
    }

    /// Execution profile for the simulator.
    pub fn profile(&self) -> KernelProfile {
        let program = self.program();
        KernelProfile::from_kernel(
            program.first_kernel().expect("workload has a kernel"),
            &self.analysis_config(),
            self.launch,
        )
        .expect("workload sources always analyze")
    }

    /// The static features the predictor sees.
    pub fn static_features(&self) -> StaticFeatures {
        self.profile().static_features()
    }
}

/// All twelve benchmarks, in the paper's Table 2 order.
pub fn all_workloads() -> Vec<Workload> {
    vec![
        perlin::workload(),
        md::workload(),
        kmeans::workload(),
        median::workload(),
        convolution::workload(),
        blackscholes::workload(),
        mt::workload(),
        flte::workload(),
        matmul::workload(),
        bitcompression::workload(),
        aes::workload(),
        knn::workload(),
    ]
}

/// Look up one benchmark by machine name.
pub fn workload(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}

/// Number of test benchmarks (§4.2).
pub const NUM_WORKLOADS: usize = 12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_workloads_exist() {
        assert_eq!(all_workloads().len(), NUM_WORKLOADS);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_workloads().iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_WORKLOADS);
    }

    #[test]
    fn every_workload_parses_and_profiles() {
        for w in all_workloads() {
            let p = w.profile();
            assert!(p.counts.total() > 0.0, "{} has no instructions", w.name);
            assert!(p.total_global_bytes() > 0.0, "{} moves no data", w.name);
        }
    }

    #[test]
    fn sources_round_trip_through_serde() {
        // AST serializability (used for caching/debugging tooling).
        for w in all_workloads() {
            let program = w.program();
            let json = serde_json::to_string(&program).unwrap();
            let back: gpufreq_kernel::Program = serde_json::from_str(&json).unwrap();
            assert_eq!(program, back, "{}", w.name);
        }
    }

    #[test]
    fn workloads_serialize_to_json() {
        // Regression: `Workload` once derived `Deserialize` too, which
        // can never work for its `&'static str` fields; it is
        // serialize-only. Guard that serialization itself stays intact.
        for w in all_workloads() {
            let json = serde_json::to_string(&w).unwrap();
            assert!(json.contains(&format!("\"name\":\"{}\"", w.name)));
            assert!(json.contains("\"source\""));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload("knn").is_some());
        assert!(workload("aes").is_some());
        assert!(workload("does-not-exist").is_none());
    }

    #[test]
    fn feature_vectors_are_distinct() {
        // The twelve codes must be distinguishable by the static model.
        let ws = all_workloads();
        for i in 0..ws.len() {
            for j in i + 1..ws.len() {
                let d = ws[i].static_features().distance(&ws[j].static_features());
                assert!(
                    d > 1e-3,
                    "{} and {} are indistinguishable (d = {d})",
                    ws[i].name,
                    ws[j].name
                );
            }
        }
    }

    #[test]
    fn compute_vs_memory_character() {
        // §4.2 / Fig. 5: the twelve codes split into compute-dominated
        // (top) and memory-dominated (bottom) groups. Verify on the
        // simulator at the default configuration.
        use gpufreq_sim::{execution_time, GpuSimulator, KernelDemand};
        let sim = GpuSimulator::titan_x();
        let default = sim.spec().clocks.default;
        let memory_bound = ["median", "bitcompression", "mt", "blackscholes"];
        for w in all_workloads() {
            let demand = KernelDemand::from_profile(sim.spec(), &w.profile());
            let t = execution_time(sim.spec(), &demand, default);
            let expect_mem = memory_bound.contains(&w.name);
            assert_eq!(
                t.is_memory_bound(),
                expect_mem,
                "{}: compute {:.3} ms vs memory {:.3} ms",
                w.name,
                t.compute_s * 1e3,
                t.memory_s * 1e3
            );
        }
    }
}
