//! Molecular Dynamics: Lennard-Jones force accumulation.
//!
//! Each work-item accumulates pairwise forces against 128 neighbour
//! particles staged in local memory, with an `rsqrt`-based distance
//! kernel. Compute-dominated with a visible special-function component
//! (Fig. 8b shows MD reaching speedups above 1.1 at high core clocks).

use crate::Workload;
use gpufreq_kernel::LaunchConfig;

/// Kernel source: LJ force loop over a staged neighbour tile.
pub fn source() -> String {
    r#"
__kernel void md_forces(__global float* pos_x, __global float* pos_y, __global float* pos_z,
                        __global float* force_out, int neighbors, float cutoff) {
    __local float nx[256];
    __local float ny[256];
    __local float nz[256];
    uint gid = get_global_id(0);
    uint lid = get_local_id(0);
    nx[lid] = pos_x[lid];
    ny[lid] = pos_y[lid];
    nz[lid] = pos_z[lid];
    barrier(0);
    float px = pos_x[gid];
    float py = pos_y[gid];
    float pz = pos_z[gid];
    float fx = 0.0f;
    for (int j = 0; j < neighbors; j += 1) {
        float dx = nx[j] - px;
        float dy = ny[j] - py;
        float dz = nz[j] - pz;
        float r2 = dx * dx + dy * dy + dz * dz + 0.001f;
        float inv_r = rsqrt(r2);
        float inv_r2 = inv_r * inv_r;
        float inv_r6 = inv_r2 * inv_r2 * inv_r2;
        // LJ: F ~ (2*inv_r6 - 1) * inv_r6 * inv_r2
        float lj = (2.0f * inv_r6 - 1.0f) * inv_r6 * inv_r2;
        if (r2 < cutoff) {
            fx = fx + lj * dx;
        }
    }
    force_out[gid] = fx;
}
"#
    .to_string()
}

/// The MD benchmark: 2²⁰ particles, 128 neighbours each.
pub fn workload() -> Workload {
    Workload {
        name: "md",
        display_name: "MD",
        source: source(),
        launch: LaunchConfig::new(1 << 20, 256),
        bindings: vec![("neighbors", 128)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::InstrClass;

    #[test]
    fn neighbour_loop_resolves() {
        let p = workload().profile();
        assert!(
            (p.counts.get(InstrClass::SpecialFn) - 128.0).abs() < 1.0,
            "one rsqrt per pair"
        );
        assert!(p.counts.get(InstrClass::LocalLoad) >= 3.0 * 128.0);
    }

    #[test]
    fn float_mul_dominates() {
        let f = workload().static_features();
        assert!(f.get(5) > 0.2, "float_mul share {}", f.get(5));
        assert!(f.get(7) > 0.02, "sf share {}", f.get(7));
    }
}
