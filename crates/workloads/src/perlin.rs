//! Perlin noise generation (4-octave gradient noise).
//!
//! Pure procedural generation: integer hashing, smoothstep fades and
//! trigonometric gradients, with one store per work-item and no input
//! traffic. The paper's most accurately predicted benchmark
//! (Table 2, `D = 0.0059`).

use crate::Workload;
use gpufreq_kernel::LaunchConfig;

/// Kernel source: 4 octaves of hash-based gradient noise.
pub fn source() -> String {
    r#"
__kernel void perlin(__global float* out_noise, int octaves, float inv_width) {
    uint gid = get_global_id(0);
    uint x = gid % 1024u;
    uint y = gid / 1024u;
    float total = 0.0f;
    float amplitude = 1.0f;
    for (int oct = 0; oct < octaves; oct += 1) {
        uint fx = x >> (uint)oct;
        uint fy = y >> (uint)oct;
        // Integer lattice hash.
        uint h00 = (fx * 374761393u + fy * 668265263u) ^ 1274126177u;
        h00 = (h00 ^ (h00 >> 13)) * 1103515245u;
        uint h10 = ((fx + 1u) * 374761393u + fy * 668265263u) ^ 1274126177u;
        h10 = (h10 ^ (h10 >> 13)) * 1103515245u;
        uint h01 = (fx * 374761393u + (fy + 1u) * 668265263u) ^ 1274126177u;
        h01 = (h01 ^ (h01 >> 13)) * 1103515245u;
        uint h11 = ((fx + 1u) * 374761393u + (fy + 1u) * 668265263u) ^ 1274126177u;
        h11 = (h11 ^ (h11 >> 13)) * 1103515245u;
        // Gradients from the hashes via trigonometry.
        float g00 = sin((float)(h00 & 1023u) * 0.00614f);
        float g10 = sin((float)(h10 & 1023u) * 0.00614f);
        float g01 = cos((float)(h01 & 1023u) * 0.00614f);
        float g11 = cos((float)(h11 & 1023u) * 0.00614f);
        // Smoothstep fade of the fractional position.
        float tx = (float)(x & 255u) * inv_width;
        float ty = (float)(y & 255u) * inv_width;
        float fade_x = tx * tx * (3.0f - 2.0f * tx);
        float fade_y = ty * ty * (3.0f - 2.0f * ty);
        float lerp_top = g00 + fade_x * (g10 - g00);
        float lerp_bot = g01 + fade_x * (g11 - g01);
        total = total + amplitude * (lerp_top + fade_y * (lerp_bot - lerp_top));
        amplitude = amplitude * 0.5f;
    }
    out_noise[gid] = total;
}
"#
    .to_string()
}

/// The Perlin Noise benchmark: a 1024×1024 field, 4 octaves.
pub fn workload() -> Workload {
    Workload {
        name: "perlin",
        display_name: "PerlinNoise",
        source: source(),
        launch: LaunchConfig::new(1 << 20, 256),
        bindings: vec![("octaves", 4)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::InstrClass;

    #[test]
    fn octave_loop_resolves() {
        let p = workload().profile();
        // 4 octaves x 4 trig gradients.
        assert!((p.counts.get(InstrClass::SpecialFn) - 16.0).abs() < 1.0);
    }

    #[test]
    fn minimal_memory_traffic() {
        let p = workload().profile();
        assert_eq!(p.global_read_bytes, 0.0);
        assert_eq!(p.global_write_bytes, 4.0);
    }

    #[test]
    fn mixes_int_hash_and_float_math() {
        let f = workload().static_features();
        assert!(f.get(1) + f.get(3) > 0.15, "int hash share");
        assert!(f.get(4) + f.get(5) > 0.2, "float share");
    }
}
