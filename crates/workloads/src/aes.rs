//! AES-like block encryption (integer/bitwise round function).
//!
//! Ten rounds of SubBytes/ShiftRows/MixColumns-style mixing over a
//! four-word state, with round keys staged in local memory. Dominated
//! by integer bitwise operations at the core clock — the paper's AES
//! sits in the compute-dominated group (Fig. 5b), with energy
//! predictions that tend to be over-approximated (§4.4).

use crate::Workload;
use gpufreq_kernel::LaunchConfig;

/// Kernel source: 10-round bitwise block cipher on a 4-word state.
pub fn source() -> String {
    r#"
__kernel void aes_encrypt(__global uint* input, __global uint* output,
                          __global uint* round_keys_g, int num_rounds) {
    __local uint round_keys[16];
    uint gid = get_global_id(0);
    uint lid = get_local_id(0);
    if (lid < 16u) {
        round_keys[lid] = round_keys_g[lid];
    }
    barrier(0);
    uint base = gid * 4u;
    uint s0 = input[base];
    uint s1 = input[base + 1u];
    uint s2 = input[base + 2u];
    uint s3 = input[base + 3u];
    for (int round = 0; round < num_rounds; round += 1) {
        uint key = round_keys[round & 15];
        // SubBytes-like nonlinear mixing.
        s0 = (s0 << 7) | (s0 >> 25);
        s1 = (s1 << 11) | (s1 >> 21);
        s2 = (s2 << 13) | (s2 >> 19);
        s3 = (s3 << 3) | (s3 >> 29);
        s0 = s0 ^ (s1 & s2);
        s1 = s1 ^ (s2 & s3);
        s2 = s2 ^ (s3 & s0);
        s3 = s3 ^ (s0 & s1);
        // MixColumns-like diffusion.
        uint t = s0;
        s0 = s0 ^ s1 ^ key;
        s1 = s1 ^ s2 ^ (key << 1);
        s2 = s2 ^ s3 ^ (key << 2);
        s3 = s3 ^ t ^ (key << 3);
        s0 = s0 + 2654435769u;
        s3 = s3 + (uint)round;
    }
    output[base] = s0;
    output[base + 1u] = s1;
    output[base + 2u] = s2;
    output[base + 3u] = s3;
}
"#
    .to_string()
}

/// The AES benchmark: 2¹⁸ blocks of four 32-bit words, 10 rounds.
pub fn workload() -> Workload {
    Workload {
        name: "aes",
        display_name: "AES",
        source: source(),
        launch: LaunchConfig::new(1 << 18, 256),
        bindings: vec![("num_rounds", 10)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwise_dominated() {
        let f = workload().static_features();
        // int_bw is the dominant feature class.
        let bw = f.get(3);
        for (j, &v) in f.values().iter().enumerate() {
            if j != 3 {
                assert!(bw >= v, "feature {j} ({v}) exceeds int_bw ({bw})");
            }
        }
        assert!(bw > 0.3, "int_bw share {bw}");
    }

    #[test]
    fn rounds_resolve_statically() {
        use gpufreq_kernel::InstrClass;
        let p = workload().profile();
        // 10 rounds x 1 local key load.
        assert!((p.counts.get(InstrClass::LocalLoad) - 10.0).abs() < 1.0);
    }
}
