//! Bit compression: pack four 32-bit words into one byte-plane word.
//!
//! A streaming pack kernel — four loads, a handful of shifts and
//! masks, one store. Memory-dominated (bottom group of Fig. 5):
//! performance tracks the memory clock, and raising the core clock
//! mostly burns power.

use crate::Workload;
use gpufreq_kernel::LaunchConfig;

/// Kernel source: 4-to-1 bit-plane packing.
pub fn source() -> String {
    r#"
__kernel void bit_compress(__global uint* input, __global uint* output, uint bits) {
    uint gid = get_global_id(0);
    uint base = gid * 4u;
    uint w0 = input[base];
    uint w1 = input[base + 1u];
    uint w2 = input[base + 2u];
    uint w3 = input[base + 3u];
    uint mask = (1u << bits) - 1u;
    uint p0 = (w0 >> (32u - bits)) & mask;
    uint p1 = (w1 >> (32u - bits)) & mask;
    uint p2 = (w2 >> (32u - bits)) & mask;
    uint p3 = (w3 >> (32u - bits)) & mask;
    uint packed = p0 | (p1 << bits) | (p2 << (bits * 2u)) | (p3 << (bits * 3u));
    output[gid] = packed;
}
"#
    .to_string()
}

/// The Bit Compression benchmark: 2²⁰ packed outputs (4 Mi inputs).
pub fn workload() -> Workload {
    Workload {
        name: "bitcompression",
        display_name: "BitCompression",
        source: source(),
        launch: LaunchConfig::new(1 << 20, 256),
        bindings: vec![("bits", 8)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::InstrClass;

    #[test]
    fn streaming_traffic() {
        let p = workload().profile();
        assert_eq!(p.counts.get(InstrClass::GlobalLoad), 4.0);
        assert_eq!(p.counts.get(InstrClass::GlobalStore), 1.0);
        assert_eq!(p.global_read_bytes, 16.0);
        assert_eq!(p.global_write_bytes, 4.0);
    }

    #[test]
    fn bitwise_but_shallow() {
        let f = workload().static_features();
        assert!(f.get(3) > 0.2, "int_bw share {}", f.get(3));
        // Few instructions overall: access share stays visible.
        assert!(f.get(8) > 0.1, "gl_access share {}", f.get(8));
    }
}
