//! k-Nearest-Neighbour classification (1-NN over 2-D points).
//!
//! The paper's most core-clock-sensitive benchmark (§1.1, Fig. 1a):
//! each work-item scans 256 reference points staged in local memory,
//! so the kernel is dominated by float arithmetic at the core clock
//! and "benefits greatly from core scaling".

use crate::Workload;
use gpufreq_kernel::LaunchConfig;

/// Kernel source: brute-force 1-NN over a local-memory reference tile.
pub fn source() -> String {
    r#"
__kernel void knn(__global float* query_x, __global float* query_y,
                  __global float* ref_x_g, __global float* ref_y_g,
                  __global int* out_idx, int num_refs) {
    __local float ref_x[256];
    __local float ref_y[256];
    uint gid = get_global_id(0);
    uint lid = get_local_id(0);
    // Cooperative staging: each work-item loads one reference point.
    ref_x[lid] = ref_x_g[lid];
    ref_y[lid] = ref_y_g[lid];
    barrier(0);
    float qx = query_x[gid];
    float qy = query_y[gid];
    float best = 1000000000.0f;
    int best_i = 0;
    for (int r = 0; r < num_refs; r += 1) {
        float dx = ref_x[r] - qx;
        float dy = ref_y[r] - qy;
        float dist = dx * dx + dy * dy;
        if (dist < best) {
            best = dist;
            best_i = r;
        }
    }
    out_idx[gid] = best_i;
}
"#
    .to_string()
}

/// The k-NN benchmark: 2²⁰ queries against 256 reference points.
pub fn workload() -> Workload {
    Workload {
        name: "knn",
        display_name: "k-NN",
        source: source(),
        launch: LaunchConfig::new(1 << 20, 256),
        bindings: vec![("num_refs", 256)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::InstrClass;

    #[test]
    fn parses_and_is_float_dominated() {
        let w = workload();
        let p = w.profile();
        let f = w.static_features();
        // float_add + float_mul dominate the mix.
        assert!(
            f.get(4) + f.get(5) > 0.3,
            "float share {}",
            f.get(4) + f.get(5)
        );
        assert!(
            p.counts.get(InstrClass::LocalLoad) > 100.0,
            "reference tile scanned"
        );
    }

    #[test]
    fn loop_resolves_via_binding() {
        let p = workload().profile();
        // 256 iterations * 2 local loads each.
        assert!((p.counts.get(InstrClass::LocalLoad) - 512.0).abs() < 1.0);
    }
}
