//! Hypervolume correctness against a brute-force Monte-Carlo-free grid
//! oracle, plus algebraic identities of the coverage difference.

use gpufreq_pareto::{
    coverage_difference, hypervolume, pareto_front_simple, Objectives, PAPER_REFERENCE,
};
use proptest::prelude::*;

/// Grid-rasterized hypervolume: count cells of a fine grid dominated by
/// at least one point. Slow but independent of the sweep algorithm.
fn grid_hypervolume(points: &[Objectives], reference: Objectives, cells: usize) -> f64 {
    // The grid spans [ref.speedup, max speedup] x [min energy, ref.energy].
    let s_hi = points
        .iter()
        .map(|p| p.speedup)
        .fold(reference.speedup, f64::max);
    let e_lo = points
        .iter()
        .map(|p| p.energy)
        .fold(reference.energy, f64::min);
    if s_hi <= reference.speedup || e_lo >= reference.energy {
        return 0.0;
    }
    let ds = (s_hi - reference.speedup) / cells as f64;
    let de = (reference.energy - e_lo) / cells as f64;
    let mut covered = 0usize;
    for a in 0..cells {
        let s = reference.speedup + (a as f64 + 0.5) * ds;
        for b in 0..cells {
            let e = e_lo + (b as f64 + 0.5) * de;
            // Cell center is dominated if some point has speedup >= s
            // and energy <= e (within the reference quadrant).
            if points.iter().any(|p| {
                p.speedup >= s
                    && p.energy <= e
                    && p.speedup > reference.speedup
                    && p.energy < reference.energy
            }) {
                covered += 1;
            }
        }
    }
    covered as f64 * ds * de
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sweep_matches_grid_oracle(
        points in prop::collection::vec((0.05f64..1.8, 0.05f64..1.9), 1..12)
    ) {
        let objs: Vec<Objectives> =
            points.iter().map(|&(s, e)| Objectives::new(s, e)).collect();
        let exact = hypervolume(&objs, PAPER_REFERENCE);
        let approx = grid_hypervolume(&objs, PAPER_REFERENCE, 256);
        // The grid is accurate to about one cell-row of area.
        let s_hi = objs.iter().map(|p| p.speedup).fold(0.0, f64::max);
        let tolerance = 3.0 * (s_hi.max(2.0) * 2.0) / 256.0;
        prop_assert!(
            (exact - approx).abs() < tolerance,
            "sweep {exact} vs grid {approx} (tol {tolerance})"
        );
    }

    /// D(a, b) + HV(b) = HV(a ∪ b) — the defining identity (§4.5).
    #[test]
    fn coverage_difference_identity(
        a in prop::collection::vec((0.05f64..1.8, 0.05f64..1.9), 1..10),
        b in prop::collection::vec((0.05f64..1.8, 0.05f64..1.9), 1..10)
    ) {
        let pa: Vec<Objectives> = a.iter().map(|&(s, e)| Objectives::new(s, e)).collect();
        let pb: Vec<Objectives> = b.iter().map(|&(s, e)| Objectives::new(s, e)).collect();
        let mut union = pa.clone();
        union.extend_from_slice(&pb);
        let d = coverage_difference(&pa, &pb, PAPER_REFERENCE);
        let identity = hypervolume(&union, PAPER_REFERENCE) - hypervolume(&pb, PAPER_REFERENCE);
        prop_assert!((d - identity).abs() < 1e-12);
        prop_assert!(d >= -1e-12);
    }

    /// Reducing a set to its Pareto front never changes its hypervolume.
    #[test]
    fn front_preserves_hypervolume(
        points in prop::collection::vec((0.05f64..1.8, 0.05f64..1.9), 1..30)
    ) {
        let objs: Vec<Objectives> =
            points.iter().map(|&(s, e)| Objectives::new(s, e)).collect();
        let front = pareto_front_simple(&objs);
        let hv_all = hypervolume(&objs, PAPER_REFERENCE);
        let hv_front = hypervolume(&front, PAPER_REFERENCE);
        prop_assert!((hv_all - hv_front).abs() < 1e-12);
    }

    /// A set always covers itself: D(a, a) = 0.
    #[test]
    fn self_coverage_is_zero(
        points in prop::collection::vec((0.05f64..1.8, 0.05f64..1.9), 1..20)
    ) {
        let objs: Vec<Objectives> =
            points.iter().map(|&(s, e)| Objectives::new(s, e)).collect();
        prop_assert!(coverage_difference(&objs, &objs, PAPER_REFERENCE).abs() < 1e-12);
    }
}
