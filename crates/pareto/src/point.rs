//! The bi-objective point type and Pareto dominance.
//!
//! The paper's two objectives (§3.4): **speedup** over the default
//! configuration (maximize) and **normalized energy** (minimize). A
//! point dominates another if it is at least as good in both objectives
//! and strictly better in one.

use serde::{Deserialize, Serialize};

/// One candidate solution in objective space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Objectives {
    /// Speedup over the default configuration — maximized.
    pub speedup: f64,
    /// Energy normalized to the default configuration — minimized.
    pub energy: f64,
}

impl Objectives {
    /// Construct a point.
    pub fn new(speedup: f64, energy: f64) -> Objectives {
        Objectives { speedup, energy }
    }

    /// Pareto dominance (the paper's definition, §3.4):
    /// `self ≺ other` iff
    /// * `speedup ≥` and `energy <`, or
    /// * `speedup >` and `energy ≤`.
    pub fn dominates(&self, other: &Objectives) -> bool {
        (self.speedup >= other.speedup && self.energy < other.energy)
            || (self.speedup > other.speedup && self.energy <= other.energy)
    }

    /// Neither dominates the other (incomparable or equal).
    pub fn non_dominated_pair(&self, other: &Objectives) -> bool {
        !self.dominates(other) && !other.dominates(self)
    }

    /// Euclidean distance in objective space — used for the paper's
    /// extreme-point distance metric (Table 2).
    pub fn distance(&self, other: &Objectives) -> f64 {
        let ds = self.speedup - other.speedup;
        let de = self.energy - other.energy;
        (ds * ds + de * de).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_dominance() {
        let better = Objectives::new(1.2, 0.8);
        let worse = Objectives::new(1.0, 1.0);
        assert!(better.dominates(&worse));
        assert!(!worse.dominates(&better));
    }

    #[test]
    fn equal_points_do_not_dominate() {
        let a = Objectives::new(1.0, 1.0);
        assert!(!a.dominates(&a));
        assert!(a.non_dominated_pair(&a));
    }

    #[test]
    fn single_objective_improvement_dominates() {
        let base = Objectives::new(1.0, 1.0);
        assert!(Objectives::new(1.1, 1.0).dominates(&base));
        assert!(Objectives::new(1.0, 0.9).dominates(&base));
    }

    #[test]
    fn trade_offs_are_incomparable() {
        let fast_hungry = Objectives::new(1.3, 1.2);
        let slow_frugal = Objectives::new(0.8, 0.7);
        assert!(fast_hungry.non_dominated_pair(&slow_frugal));
    }

    #[test]
    fn dominance_is_transitive() {
        let a = Objectives::new(1.3, 0.7);
        let b = Objectives::new(1.1, 0.9);
        let c = Objectives::new(1.0, 1.0);
        assert!(a.dominates(&b));
        assert!(b.dominates(&c));
        assert!(a.dominates(&c));
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Objectives::new(0.0, 0.0);
        let b = Objectives::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
    }
}
