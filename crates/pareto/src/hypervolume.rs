//! Hypervolume indicator and binary coverage difference.
//!
//! §4.5 evaluates predicted Pareto sets with the *binary hypervolume
//! metric* `D(P*, P′) = HV(P* + P′) − HV(P′)` (Zitzler), with reference
//! point `(0.0, 2.0)`: speedup is maximized, normalized energy is
//! minimized, so a point's dominated region stretches from the
//! reference corner to the point.

use crate::fast::pareto_front_fast;
use crate::point::Objectives;

/// The paper's reference point: zero speedup, 2× baseline energy.
pub const PAPER_REFERENCE: Objectives = Objectives {
    speedup: 0.0,
    energy: 2.0,
};

/// 2-D hypervolume of the region dominated by `points` with respect to
/// `reference`.
///
/// A point contributes only where it beats the reference in both
/// objectives (speedup above `reference.speedup`, energy below
/// `reference.energy`); points outside that quadrant add nothing.
pub fn hypervolume(points: &[Objectives], reference: Objectives) -> f64 {
    // Reduce to the non-dominated set, keep the contributing quadrant,
    // then sweep by speedup descending, accumulating strips.
    let mut front: Vec<Objectives> = pareto_front_fast(points)
        .into_iter()
        .filter(|p| p.speedup > reference.speedup && p.energy < reference.energy)
        .collect();
    front.sort_by(|a, b| {
        b.speedup
            .partial_cmp(&a.speedup)
            .expect("no NaNs in objectives")
    });
    let mut hv = 0.0;
    let mut energy_ceiling = reference.energy;
    // Iterate from the fastest point down; each point adds the strip
    // between its own energy and the ceiling left by faster points:
    // hv = Σ (s_i − s_ref) · (e_{i−1} − e_i) with e_0 = e_ref.
    for p in front {
        if p.energy >= energy_ceiling {
            continue; // adds nothing (dominated in the clipped space)
        }
        hv += (p.speedup - reference.speedup) * (energy_ceiling - p.energy);
        energy_ceiling = p.energy;
    }
    hv
}

/// Binary coverage difference `D(a, b) = HV(a ∪ b) − HV(b)` (§4.5):
/// how much of the space dominated by `a` is *not* covered by `b`.
/// Zero means `b` covers everything `a` dominates.
pub fn coverage_difference(a: &[Objectives], b: &[Objectives], reference: Objectives) -> f64 {
    let mut union: Vec<Objectives> = a.to_vec();
    union.extend_from_slice(b);
    hypervolume(&union, reference) - hypervolume(b, reference)
}

/// `D(P*, P′)` with the paper's reference point `(0.0, 2.0)`.
pub fn paper_coverage_difference(real_front: &[Objectives], predicted: &[Objectives]) -> f64 {
    coverage_difference(real_front, predicted, PAPER_REFERENCE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Objectives> {
        v.iter().map(|&(s, e)| Objectives::new(s, e)).collect()
    }

    #[test]
    fn single_point_rectangle() {
        // (1.0, 1.0) vs reference (0, 2): area = 1.0 * 1.0 = 1.0.
        let hv = hypervolume(&pts(&[(1.0, 1.0)]), PAPER_REFERENCE);
        assert!((hv - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_point_adds_nothing() {
        let lone = hypervolume(&pts(&[(1.2, 0.8)]), PAPER_REFERENCE);
        let with_dominated = hypervolume(&pts(&[(1.2, 0.8), (1.0, 1.0)]), PAPER_REFERENCE);
        assert!((lone - with_dominated).abs() < 1e-12);
    }

    #[test]
    fn two_trade_off_points() {
        // (1.0, 1.0) and (0.5, 0.5) vs (0,2):
        // sweep: (1.0,1.0): 1.0*1.0 = 1.0; (0.5,0.5): 0.5*(1.0-0.5)=0.25.
        let hv = hypervolume(&pts(&[(1.0, 1.0), (0.5, 0.5)]), PAPER_REFERENCE);
        assert!((hv - 1.25).abs() < 1e-12, "hv {hv}");
    }

    #[test]
    fn points_outside_reference_quadrant_ignored() {
        let hv = hypervolume(&pts(&[(1.0, 2.5), (-0.1, 1.0)]), PAPER_REFERENCE);
        assert_eq!(hv, 0.0);
    }

    #[test]
    fn hypervolume_is_monotone_in_added_points() {
        let base = pts(&[(0.8, 1.2), (1.1, 1.5)]);
        let mut more = base.clone();
        more.push(Objectives::new(1.0, 0.6));
        assert!(hypervolume(&more, PAPER_REFERENCE) >= hypervolume(&base, PAPER_REFERENCE));
    }

    #[test]
    fn coverage_difference_zero_when_covered() {
        let better = pts(&[(1.2, 0.7)]);
        let worse = pts(&[(1.0, 1.0)]);
        // `better` covers everything `worse` dominates.
        let d = coverage_difference(&worse, &better, PAPER_REFERENCE);
        assert!(d.abs() < 1e-12);
        // But not vice versa.
        let d2 = coverage_difference(&better, &worse, PAPER_REFERENCE);
        assert!(d2 > 0.0);
    }

    #[test]
    fn identical_sets_have_zero_difference() {
        let p = pts(&[(1.0, 1.0), (0.6, 0.6), (1.2, 1.4)]);
        assert!(paper_coverage_difference(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn coverage_difference_is_nonnegative() {
        let a = pts(&[(0.9, 0.9), (1.15, 1.3), (0.5, 0.55)]);
        let b = pts(&[(1.0, 1.0), (0.7, 0.6)]);
        assert!(coverage_difference(&a, &b, PAPER_REFERENCE) >= 0.0);
        assert!(coverage_difference(&b, &a, PAPER_REFERENCE) >= 0.0);
    }

    #[test]
    fn duplicate_points_do_not_double_count() {
        let once = hypervolume(&pts(&[(1.0, 1.0)]), PAPER_REFERENCE);
        let twice = hypervolume(&pts(&[(1.0, 1.0), (1.0, 1.0)]), PAPER_REFERENCE);
        assert!((once - twice).abs() < 1e-12);
    }
}
