//! The paper's Algorithm 1: simple Pareto-set calculation.
//!
//! A direct transcription of the pseudo-code in §3.4 — repeatedly pop a
//! candidate, compare it against the remaining points, and either
//! discard it as dominated or emit it into the front. Quadratic in the
//! worst case, which the paper notes is "enough to process all the
//! kernel executions associated with a new input kernel"; the
//! `O(n log n)` alternative lives in [`crate::fast`].

use crate::point::Objectives;

/// Indices of the non-dominated points of `points`, in input order
/// (the paper's Algorithm 1).
///
/// Duplicate coordinates are all kept: equal points do not dominate
/// each other under the paper's strict definition.
pub fn pareto_set_simple(points: &[Objectives]) -> Vec<usize> {
    let mut front: Vec<usize> = Vec::new();
    let mut dominated = vec![false; points.len()];
    // `Predictions` is the work list; popping from the front mirrors the
    // algorithm's `pop()`.
    for candidate in 0..points.len() {
        if dominated[candidate] {
            continue;
        }
        let mut candidate_dominated = false;
        for other in 0..points.len() {
            if other == candidate || dominated[other] {
                continue;
            }
            if points[other].dominates(&points[candidate]) {
                candidate_dominated = true;
                break;
            }
            if points[candidate].dominates(&points[other]) {
                dominated[other] = true;
            }
        }
        if candidate_dominated {
            dominated[candidate] = true;
        } else {
            front.push(candidate);
        }
    }
    front
}

/// The non-dominated points themselves, in input order.
pub fn pareto_front_simple(points: &[Objectives]) -> Vec<Objectives> {
    pareto_set_simple(points)
        .into_iter()
        .map(|i| points[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Objectives> {
        v.iter().map(|&(s, e)| Objectives::new(s, e)).collect()
    }

    #[test]
    fn single_point_is_its_own_front() {
        let p = pts(&[(1.0, 1.0)]);
        assert_eq!(pareto_set_simple(&p), vec![0]);
    }

    #[test]
    fn dominated_points_are_removed() {
        // (1.2, 0.8) dominates everything else.
        let p = pts(&[(1.0, 1.0), (1.2, 0.8), (0.9, 0.9), (1.1, 0.9)]);
        assert_eq!(pareto_set_simple(&p), vec![1]);
    }

    #[test]
    fn chain_of_trade_offs_all_survive() {
        let p = pts(&[(0.6, 0.6), (0.8, 0.7), (1.0, 0.85), (1.2, 1.1)]);
        assert_eq!(pareto_set_simple(&p), vec![0, 1, 2, 3]);
    }

    #[test]
    fn mixed_case() {
        let p = pts(&[
            (1.0, 1.0),   // dominated by 3
            (0.5, 0.4),   // front (cheapest)
            (1.3, 1.5),   // front (fastest)
            (1.1, 0.9),   // front
            (1.05, 0.95), // dominated by 3
        ]);
        assert_eq!(pareto_set_simple(&p), vec![1, 2, 3]);
    }

    #[test]
    fn duplicates_are_kept() {
        let p = pts(&[(1.0, 1.0), (1.0, 1.0), (0.5, 1.5)]);
        assert_eq!(pareto_set_simple(&p), vec![0, 1]);
    }

    #[test]
    fn empty_input() {
        assert!(pareto_set_simple(&[]).is_empty());
    }

    #[test]
    fn front_is_mutually_non_dominating() {
        let p = pts(&[
            (0.62, 1.8),
            (1.12, 1.4),
            (0.9, 0.8),
            (1.0, 1.0),
            (1.12, 0.95),
            (0.7, 0.75),
            (0.99, 1.01),
        ]);
        let front = pareto_front_simple(&p);
        for a in &front {
            for b in &front {
                assert!(!a.dominates(b), "{a:?} dominates {b:?} inside the front");
            }
        }
        assert!(!front.is_empty());
    }
}
