//! `O(n log n)` Pareto front via sort-and-scan.
//!
//! The paper remarks that "faster algorithms with lower asymptotic
//! complexity are available" [Li et al.]; for two objectives the
//! classic approach sorts by speedup descending (energy ascending as
//! tie-break) and keeps a running minimum of energy. Used both as a
//! faster production path and as an independent oracle for testing
//! Algorithm 1.

use crate::point::Objectives;

/// Indices of the non-dominated points, ascending by index.
pub fn pareto_set_fast(points: &[Objectives]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    // Sort: speedup descending; among equal speedups, energy ascending.
    order.sort_by(|&a, &b| {
        points[b]
            .speedup
            .partial_cmp(&points[a].speedup)
            .expect("no NaNs in objectives")
            .then(
                points[a]
                    .energy
                    .partial_cmp(&points[b].energy)
                    .expect("no NaNs in objectives"),
            )
    });
    let mut front = Vec::new();
    let mut best_energy = f64::INFINITY;
    let mut i = 0;
    while i < order.len() {
        // Process ties in speedup together: a point with equal speedup
        // and strictly higher energy than another in the tie group is
        // dominated, but equal (speedup, energy) duplicates are kept
        // (they do not dominate each other under the strict definition).
        let tie_start = i;
        let s = points[order[i]].speedup;
        while i < order.len() && points[order[i]].speedup == s {
            i += 1;
        }
        let group_min_energy = points[order[tie_start]].energy; // sorted ascending
        if group_min_energy < best_energy {
            for &idx in &order[tie_start..i] {
                if points[idx].energy == group_min_energy {
                    front.push(idx);
                }
            }
            best_energy = group_min_energy;
        } else if group_min_energy == best_energy {
            // Same energy as a faster point: the faster point dominates
            // (strictly greater speedup, equal energy). Skip.
        }
    }
    front.sort_unstable();
    front
}

/// The non-dominated points themselves, ascending by original index.
pub fn pareto_front_fast(points: &[Objectives]) -> Vec<Objectives> {
    pareto_set_fast(points)
        .into_iter()
        .map(|i| points[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::pareto_set_simple;

    fn pts(v: &[(f64, f64)]) -> Vec<Objectives> {
        v.iter().map(|&(s, e)| Objectives::new(s, e)).collect()
    }

    fn assert_matches_simple(p: &[Objectives]) {
        let mut a = pareto_set_fast(p);
        let mut b = pareto_set_simple(p);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "fast and simple disagree on {p:?}");
    }

    #[test]
    fn agrees_with_simple_on_basic_cases() {
        assert_matches_simple(&pts(&[(1.0, 1.0), (1.2, 0.8), (0.9, 0.9), (1.1, 0.9)]));
        assert_matches_simple(&pts(&[(0.6, 0.6), (0.8, 0.7), (1.0, 0.85), (1.2, 1.1)]));
        assert_matches_simple(&pts(&[]));
        assert_matches_simple(&pts(&[(1.0, 1.0)]));
    }

    #[test]
    fn handles_speedup_ties() {
        // Same speedup, different energies: only the cheapest survives.
        let p = pts(&[(1.0, 1.0), (1.0, 0.8), (1.0, 1.2)]);
        assert_eq!(pareto_set_fast(&p), vec![1]);
        assert_matches_simple(&p);
    }

    #[test]
    fn keeps_exact_duplicates() {
        let p = pts(&[(1.0, 0.9), (1.0, 0.9), (0.5, 1.5)]);
        assert_eq!(pareto_set_fast(&p), vec![0, 1]);
        assert_matches_simple(&p);
    }

    #[test]
    fn equal_energy_faster_point_wins() {
        let p = pts(&[(1.0, 0.8), (1.2, 0.8)]);
        assert_eq!(pareto_set_fast(&p), vec![1]);
        assert_matches_simple(&p);
    }

    #[test]
    fn pseudo_random_agreement() {
        // Deterministic LCG grid — no external RNG needed.
        let mut state: u64 = 0x2545F4914F6CDD1D;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..50 {
            let n = 3 + (trial % 40);
            let p: Vec<Objectives> = (0..n)
                .map(|_| Objectives::new(0.2 + 1.3 * next(), 0.4 + 1.4 * next()))
                .collect();
            assert_matches_simple(&p);
        }
    }
}
