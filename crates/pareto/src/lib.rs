//! `gpufreq-pareto` — multi-objective machinery for the `gpufreq`
//! reproduction of *Predictable GPUs Frequency Scaling for Energy and
//! Performance* (Fan, Cosenza, Juurlink — ICPP 2019).
//!
//! * [`point`] — the bi-objective [`Objectives`] type (speedup ↑,
//!   normalized energy ↓) with the paper's dominance definition;
//! * [`simple`] — Algorithm 1 exactly as printed in §3.4;
//! * [`fast`] — the `O(n log n)` sort-and-scan front the paper alludes
//!   to, used as an independent oracle in tests;
//! * [`hypervolume`](crate::hypervolume::hypervolume) — 2-D hypervolume and the binary coverage
//!   difference `D(P*, P′)` with reference point `(0.0, 2.0)` (§4.5);
//! * [`extrema`] — max-speedup / min-energy extreme-point distances
//!   (Table 2).
//!
//! # Example
//!
//! ```
//! use gpufreq_pareto::{Objectives, pareto_front_simple, paper_coverage_difference};
//!
//! let points = vec![
//!     Objectives::new(1.0, 1.0),  // default configuration
//!     Objectives::new(1.15, 1.3), // faster but hungrier
//!     Objectives::new(0.9, 0.75), // slower but frugal
//!     Objectives::new(0.85, 0.9), // dominated by the previous point
//! ];
//! let front = pareto_front_simple(&points);
//! assert_eq!(front.len(), 3);
//! assert!(paper_coverage_difference(&front, &points).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod extrema;
pub mod fast;
pub mod hypervolume;
pub mod point;
pub mod simple;

pub use extrema::{extreme_point_distances, max_speedup_point, min_energy_point, ExtremeDistance};
pub use fast::{pareto_front_fast, pareto_set_fast};
pub use hypervolume::{
    coverage_difference, hypervolume, paper_coverage_difference, PAPER_REFERENCE,
};
pub use point::Objectives;
pub use simple::{pareto_front_simple, pareto_set_simple};
