//! Extreme-point accuracy metrics (Table 2, right-hand columns).
//!
//! §4.5 additionally scores how well the predicted set finds the two
//! *extreme* dominant points: the configuration with maximum speedup
//! and the one with minimum normalized energy. The reported metric is
//! the per-objective absolute distance between the true extreme point
//! and the predicted one, as a `(Δspeedup, Δenergy)` pair.

use crate::point::Objectives;
use serde::{Deserialize, Serialize};

/// Component-wise distance between a true and a predicted extreme point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtremeDistance {
    /// `|speedup_true − speedup_predicted|`.
    pub d_speedup: f64,
    /// `|energy_true − energy_predicted|`.
    pub d_energy: f64,
}

impl ExtremeDistance {
    /// Both components are (near) zero — the extreme point was
    /// predicted exactly.
    pub fn is_exact(&self, tol: f64) -> bool {
        self.d_speedup <= tol && self.d_energy <= tol
    }
}

/// The point with maximum speedup (ties broken by lower energy).
pub fn max_speedup_point(points: &[Objectives]) -> Option<Objectives> {
    points.iter().copied().max_by(|a, b| {
        a.speedup
            .partial_cmp(&b.speedup)
            .expect("no NaNs in objectives")
            .then(
                b.energy
                    .partial_cmp(&a.energy)
                    .expect("no NaNs in objectives"),
            )
    })
}

/// The point with minimum normalized energy (ties broken by higher
/// speedup).
pub fn min_energy_point(points: &[Objectives]) -> Option<Objectives> {
    points.iter().copied().min_by(|a, b| {
        a.energy
            .partial_cmp(&b.energy)
            .expect("no NaNs in objectives")
            .then(
                b.speedup
                    .partial_cmp(&a.speedup)
                    .expect("no NaNs in objectives"),
            )
    })
}

/// Table 2's two extreme-point distance columns: distances between the
/// true and predicted max-speedup points and min-energy points.
///
/// Returns `None` if either set is empty.
pub fn extreme_point_distances(
    real: &[Objectives],
    predicted: &[Objectives],
) -> Option<(ExtremeDistance, ExtremeDistance)> {
    let max_s = distance_pair(max_speedup_point(real)?, max_speedup_point(predicted)?);
    let min_e = distance_pair(min_energy_point(real)?, min_energy_point(predicted)?);
    Some((max_s, min_e))
}

fn distance_pair(a: Objectives, b: Objectives) -> ExtremeDistance {
    ExtremeDistance {
        d_speedup: (a.speedup - b.speedup).abs(),
        d_energy: (a.energy - b.energy).abs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Objectives> {
        v.iter().map(|&(s, e)| Objectives::new(s, e)).collect()
    }

    #[test]
    fn extremes_of_a_front() {
        let p = pts(&[(0.6, 0.6), (1.0, 1.0), (1.2, 1.4)]);
        assert_eq!(max_speedup_point(&p).unwrap(), Objectives::new(1.2, 1.4));
        assert_eq!(min_energy_point(&p).unwrap(), Objectives::new(0.6, 0.6));
    }

    #[test]
    fn ties_prefer_the_dominant_point() {
        let p = pts(&[(1.2, 1.4), (1.2, 1.1)]);
        assert_eq!(max_speedup_point(&p).unwrap(), Objectives::new(1.2, 1.1));
        let q = pts(&[(0.6, 0.6), (0.9, 0.6)]);
        assert_eq!(min_energy_point(&q).unwrap(), Objectives::new(0.9, 0.6));
    }

    #[test]
    fn exact_prediction_gives_zero_distances() {
        let real = pts(&[(0.7, 0.65), (1.15, 1.3)]);
        let (ms, me) = extreme_point_distances(&real, &real).unwrap();
        assert!(ms.is_exact(0.0));
        assert!(me.is_exact(0.0));
    }

    #[test]
    fn misprediction_measured_per_component() {
        let real = pts(&[(1.2, 1.4), (0.6, 0.6)]);
        let predicted = pts(&[(1.15, 1.35), (0.65, 0.7)]);
        let (ms, me) = extreme_point_distances(&real, &predicted).unwrap();
        assert!((ms.d_speedup - 0.05).abs() < 1e-12);
        assert!((ms.d_energy - 0.05).abs() < 1e-12);
        assert!((me.d_speedup - 0.05).abs() < 1e-12);
        assert!((me.d_energy - 0.1).abs() < 1e-12);
        assert!(!me.is_exact(1e-3));
    }

    #[test]
    fn empty_sets_yield_none() {
        assert!(extreme_point_distances(&[], &pts(&[(1.0, 1.0)])).is_none());
        assert!(extreme_point_distances(&pts(&[(1.0, 1.0)]), &[]).is_none());
        assert!(max_speedup_point(&[]).is_none());
    }
}
