//! `gpufreq-cli` — shell interface to the `gpufreq` pipeline.
//!
//! Argument parsing and command implementations live here (in the
//! library) so they are unit-testable; `src/bin/gpufreq.rs` is a thin
//! `main` that forwards `std::env::args` and exits with the returned
//! status. Commands route through the typed `Planner` façade of
//! `gpufreq-core`: devices are parsed into the `gpufreq_sim::Device`
//! registry (an unknown id exits with status 2 listing the valid
//! ids), and any `gpufreq_core::Error` — bad kernel source, corrupt
//! or mismatched model artifact — exits with status 1.
//!
//! ```text
//! gpufreq devices                          list simulated devices
//! gpufreq inspect  <kernel.cl>             parse + show static features
//! gpufreq train    [--device D] [--settings N] [--out model.json]
//! gpufreq predict  <kernel.cl> --model model.json [--device D]
//! gpufreq characterize <kernel.cl> [--device D]   measured sweep (ground truth)
//! gpufreq sweep <kernel.cl>... [--jobs N]          batch sweeps via the engine
//! gpufreq evaluate --model model.json [--device D] paper-style Table 2
//! gpufreq report [--fast|--full] [--out DIR]       cited paper-vs-repo REPRODUCTION.md
//! gpufreq serve [--port N] [--workers N]           long-lived prediction daemon (gpufreq-serve)
//! gpufreq client <host:port> [kernel.cl]           one-shot protocol client
//! ```
//!
//! `report` renders the scored reproduction report
//! (`REPRODUCTION.md` + `reproduction.json`, see
//! `gpufreq_bench::report`); with `--check <baseline.json>` it exits
//! non-zero when any metric regressed from pass to FAIL tier — the CI
//! gate. `--jobs N` pins the execution-engine worker count for
//! `train`, `sweep`, `evaluate` and `report`; output is bit-identical
//! for every value.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{parse_args, Command, ParsedArgs};

/// Entry point used by the `gpufreq` binary: run a full command line,
/// writing human-readable output to `out`.
///
/// Returns the process exit code.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> i32 {
    match parse_args(argv) {
        Ok(parsed) => match commands::dispatch(&parsed, out) {
            Ok(()) => 0,
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                1
            }
        },
        Err(e) => {
            let _ = writeln!(out, "error: {e}\n");
            let _ = writeln!(out, "{}", args::USAGE);
            2
        }
    }
}
