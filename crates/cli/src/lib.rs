//! `gpufreq-cli` — shell interface to the `gpufreq` pipeline.
//!
//! Argument parsing and command implementations live here (in the
//! library) so they are unit-testable; `src/bin/gpufreq.rs` is a thin
//! `main` that forwards `std::env::args` and exits with the returned
//! status.
//!
//! ```text
//! gpufreq devices                          list simulated devices
//! gpufreq inspect  <kernel.cl>             parse + show static features
//! gpufreq train    [--device D] [--settings N] [--out model.json]
//! gpufreq predict  <kernel.cl> --model model.json [--device D]
//! gpufreq characterize <kernel.cl> [--device D]   measured sweep (ground truth)
//! gpufreq evaluate --model model.json [--device D] paper-style Table 2
//! ```

#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{parse_args, Command, ParsedArgs};

/// Entry point used by the `gpufreq` binary: run a full command line,
/// writing human-readable output to `out`.
///
/// Returns the process exit code.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> i32 {
    match parse_args(argv) {
        Ok(parsed) => match commands::dispatch(&parsed, out) {
            Ok(()) => 0,
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                1
            }
        },
        Err(e) => {
            let _ = writeln!(out, "error: {e}\n");
            let _ = writeln!(out, "{}", args::USAGE);
            2
        }
    }
}
