//! The `gpufreq` command-line binary — see [`gpufreq_cli`] for the
//! command set.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    std::process::exit(gpufreq_cli::run(&argv, &mut stdout));
}
