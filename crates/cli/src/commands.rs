//! Command implementations for the `gpufreq` CLI.

use crate::args::{Command, ParsedArgs, USAGE};
use gpufreq_core::{
    ascii_table, build_training_data, evaluate_all, predict_pareto, render_table2, table2,
    FreqScalingModel, ModelConfig,
};
use gpufreq_kernel::{
    analyze_kernel, memory_boundedness, parse, AnalysisConfig, KernelProfile, LaunchConfig,
    StaticFeatures, STATIC_FEATURE_NAMES,
};
use gpufreq_ml::SvrParams;
use gpufreq_sim::GpuSimulator;
use std::io::Write;

type CmdResult = Result<(), Box<dyn std::error::Error>>;

/// Dispatch a parsed command line.
pub fn dispatch(parsed: &ParsedArgs, out: &mut dyn Write) -> CmdResult {
    match &parsed.command {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        Command::Devices => devices(out),
        Command::Inspect { kernel } => inspect(kernel, out),
        Command::Train { out: path, fast } => train(parsed, path, *fast, out),
        Command::Predict {
            kernel,
            model,
            json,
        } => predict(parsed, kernel, model, *json, out),
        Command::Characterize { kernel } => characterize(parsed, kernel, out),
        Command::Evaluate { model } => evaluate(parsed, model, out),
    }
}

fn simulator(device: &str) -> GpuSimulator {
    match device {
        "tesla-p100" => GpuSimulator::tesla_p100(),
        "tesla-k20c" => GpuSimulator::tesla_k20c(),
        _ => GpuSimulator::titan_x(),
    }
}

fn devices(out: &mut dyn Write) -> CmdResult {
    let mut rows = Vec::new();
    for name in ["titan-x", "tesla-p100", "tesla-k20c"] {
        let sim = simulator(name);
        let spec = sim.spec();
        rows.push(vec![
            name.to_string(),
            spec.name.clone(),
            spec.clocks.supported_memory_clocks().len().to_string(),
            spec.clocks.actual_configs().len().to_string(),
            format!("{}", spec.clocks.default),
        ]);
    }
    write!(
        out,
        "{}",
        ascii_table(
            &[
                "id",
                "device",
                "memory domains",
                "configurations",
                "default"
            ],
            &rows
        )
    )?;
    Ok(())
}

fn load_kernel(path: &str) -> Result<(StaticFeatures, KernelProfile), Box<dyn std::error::Error>> {
    let source = std::fs::read_to_string(path)?;
    let program = parse(&source).map_err(|e| format!("{path}: {e}"))?;
    let kernel = program.first_kernel().ok_or("no __kernel function found")?;
    let analysis = analyze_kernel(kernel).map_err(|e| format!("{path}: {e}"))?;
    let profile =
        KernelProfile::from_kernel(kernel, &AnalysisConfig::default(), LaunchConfig::default())
            .map_err(|e| format!("{path}: {e}"))?;
    Ok((StaticFeatures::from_analysis(&analysis), profile))
}

fn inspect(path: &str, out: &mut dyn Write) -> CmdResult {
    let (features, profile) = load_kernel(path)?;
    writeln!(
        out,
        "kernel `{}` ({} instructions per work-item)",
        profile.name,
        profile.counts.total()
    )?;
    let mut rows = Vec::new();
    for (name, value) in STATIC_FEATURE_NAMES.iter().zip(features.values()) {
        rows.push(vec![name.to_string(), format!("{value:.4}")]);
    }
    rows.push(vec![
        "memory-boundedness".to_string(),
        format!("{:.4}", memory_boundedness(&features)),
    ]);
    write!(out, "{}", ascii_table(&["feature", "share"], &rows))?;
    writeln!(
        out,
        "global traffic: {:.1} B read, {:.1} B written per work-item",
        profile.global_read_bytes, profile.global_write_bytes
    )?;
    Ok(())
}

fn train(parsed: &ParsedArgs, path: &str, fast: bool, out: &mut dyn Write) -> CmdResult {
    let sim = simulator(&parsed.device);
    let corpus = if fast {
        gpufreq_synth::generate_all()
            .into_iter()
            .step_by(3)
            .collect()
    } else {
        gpufreq_synth::generate_all()
    };
    let settings = if fast {
        parsed.settings.min(20)
    } else {
        parsed.settings
    };
    writeln!(
        out,
        "training on {} micro-benchmarks x {} settings ({})...",
        corpus.len(),
        settings,
        sim.spec().name
    )?;
    let data = build_training_data(&sim, &corpus, settings);
    let config = if fast {
        ModelConfig {
            speedup: SvrParams {
                c: 100.0,
                max_iter: 200_000,
                ..SvrParams::paper_speedup()
            },
            energy: SvrParams {
                c: 100.0,
                max_iter: 200_000,
                ..SvrParams::paper_energy()
            },
        }
    } else {
        ModelConfig::default()
    };
    let model = FreqScalingModel::train(&data, &config);
    std::fs::write(path, model.to_json())?;
    let (sv_s, sv_e) = model.support_vectors();
    writeln!(
        out,
        "trained on {} samples ({sv_s}/{sv_e} support vectors); model written to {path}",
        model.trained_on()
    )?;
    Ok(())
}

fn load_model(path: &str) -> Result<FreqScalingModel, Box<dyn std::error::Error>> {
    let json = std::fs::read_to_string(path)?;
    Ok(FreqScalingModel::from_json(&json)?)
}

fn predict(
    parsed: &ParsedArgs,
    kernel: &str,
    model_path: &str,
    json: bool,
    out: &mut dyn Write,
) -> CmdResult {
    let sim = simulator(&parsed.device);
    let model = load_model(model_path)?;
    let (features, _) = load_kernel(kernel)?;
    let prediction = predict_pareto(&model, &features, &sim.spec().clocks);
    if json {
        writeln!(out, "{}", serde_json::to_string_pretty(&prediction)?)?;
        return Ok(());
    }
    let mut rows = Vec::new();
    for p in &prediction.pareto_set {
        rows.push(vec![
            p.config.mem_mhz.to_string(),
            p.config.core_mhz.to_string(),
            format!("{:.3}", p.objectives.speedup),
            format!("{:.3}", p.objectives.energy),
            if p.heuristic {
                "mem-L heuristic".to_string()
            } else {
                String::new()
            },
        ]);
    }
    writeln!(
        out,
        "predicted Pareto-optimal frequency settings for `{kernel}`:"
    )?;
    write!(
        out,
        "{}",
        ascii_table(
            &["mem MHz", "core MHz", "speedup", "norm. energy", "note"],
            &rows
        )
    )?;
    Ok(())
}

fn characterize(parsed: &ParsedArgs, kernel: &str, out: &mut dyn Write) -> CmdResult {
    let sim = simulator(&parsed.device);
    let (_, profile) = load_kernel(kernel)?;
    let configs = sim.spec().clocks.sample_configs(parsed.settings);
    let c = sim.characterize_at(&profile, &configs);
    let mut rows = Vec::new();
    for p in &c.points {
        rows.push(vec![
            p.config().mem_mhz.to_string(),
            p.config().core_mhz.to_string(),
            format!("{:.3}", p.measurement.time_ms),
            format!("{:.1}", p.measurement.avg_power_w),
            format!("{:.3}", p.speedup),
            format!("{:.3}", p.norm_energy),
        ]);
    }
    writeln!(
        out,
        "measured sweep of `{kernel}` on {} ({} settings):",
        sim.spec().name,
        rows.len()
    )?;
    write!(
        out,
        "{}",
        ascii_table(
            &[
                "mem MHz",
                "core MHz",
                "time ms",
                "power W",
                "speedup",
                "norm. energy"
            ],
            &rows
        )
    )?;
    writeln!(
        out,
        "simulated sweep cost: {:.1} minutes",
        c.sim_wall_s() / 60.0
    )?;
    Ok(())
}

fn evaluate(parsed: &ParsedArgs, model_path: &str, out: &mut dyn Write) -> CmdResult {
    let sim = simulator(&parsed.device);
    let model = load_model(model_path)?;
    let evals = evaluate_all(&sim, &model, &gpufreq_workloads::all_workloads());
    write!(out, "{}", render_table2(&table2(&evals)))?;
    Ok(())
}

#[cfg(test)]
mod tests {

    use crate::run;

    fn run_str(line: &str) -> (i32, String) {
        let argv: Vec<String> = line.split_whitespace().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let code = run(&argv, &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    fn write_kernel() -> String {
        let dir = std::env::temp_dir().join("gpufreq-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("saxpy.cl");
        std::fs::write(
            &path,
            "__kernel void saxpy(__global float* x, __global float* y, float a) {
                uint i = get_global_id(0);
                y[i] = a * x[i] + y[i];
            }",
        )
        .unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn devices_lists_all_three() {
        let (code, out) = run_str("devices");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("GTX Titan X"));
        assert!(out.contains("Tesla P100"));
        assert!(out.contains("Tesla K20c"));
    }

    #[test]
    fn inspect_prints_features() {
        let kernel = write_kernel();
        let (code, out) = run_str(&format!("inspect {kernel}"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("float_mul"));
        assert!(out.contains("gl_access"));
        assert!(out.contains("memory-boundedness"));
    }

    #[test]
    fn characterize_runs_a_sweep() {
        let kernel = write_kernel();
        let (code, out) = run_str(&format!("characterize {kernel} --settings 6"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("speedup"));
        assert!(out.contains("simulated sweep cost"));
    }

    #[test]
    fn train_then_predict_round_trip() {
        let kernel = write_kernel();
        let model = std::env::temp_dir().join("gpufreq-cli-test/model.json");
        let model = model.to_string_lossy();
        let (code, out) = run_str(&format!("train --fast --settings 12 --out {model}"));
        assert_eq!(code, 0, "{out}");
        let (code, out) = run_str(&format!("predict {kernel} --model {model}"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("Pareto-optimal"));
        assert!(out.contains("mem-L heuristic"));
        // JSON mode parses back.
        let (code, out) = run_str(&format!("predict {kernel} --model {model} --json"));
        assert_eq!(code, 0, "{out}");
        assert!(serde_json::from_str::<serde_json::Value>(&out).is_ok());
    }

    #[test]
    fn bad_usage_exits_nonzero_with_usage() {
        let (code, out) = run_str("predict missing.cl");
        assert_eq!(code, 2);
        assert!(out.contains("USAGE"));
        let (code, _) = run_str("inspect /does/not/exist.cl");
        assert_eq!(code, 1);
    }

    #[test]
    fn help_shows_usage() {
        let (code, out) = run_str("--help");
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
    }
}
