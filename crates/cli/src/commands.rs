//! Command implementations for the `gpufreq` CLI.
//!
//! Every command routes through the typed [`Planner`] façade of
//! `gpufreq-core`: training builds a [`TrainedPlanner`] and persists a
//! versioned [`ModelArtifact`](gpufreq_core::ModelArtifact);
//! predict/evaluate load and validate it (format version, device) and
//! map any [`gpufreq_core::Error`] to a non-zero exit.

use crate::args::{Command, ParsedArgs, USAGE};
use gpufreq_core::{
    analyze_kernel_file, ascii_table, render_table2, table2, Corpus, Engine, ModelConfig, Planner,
    ProfileCache, TrainedPlanner,
};
use gpufreq_kernel::{memory_boundedness, STATIC_FEATURE_NAMES};
use gpufreq_sim::Device;
use std::io::Write;

type CmdResult = Result<(), Box<dyn std::error::Error>>;

/// Default `--slow-threshold-us` when `--trace-log` is given without
/// one: only requests slower than 10 ms (or errors) are logged.
const DEFAULT_SLOW_THRESHOLD_US: u64 = 10_000;

/// Open the `--trace-log` sink (a path or `stderr`), eagerly so a bad
/// path fails startup instead of silently dropping records later.
fn open_trace_log(
    sink: &str,
    slow_threshold_us: Option<u64>,
) -> Result<std::sync::Arc<gpufreq_obs::TraceLog>, String> {
    let threshold = slow_threshold_us.unwrap_or(DEFAULT_SLOW_THRESHOLD_US);
    gpufreq_obs::TraceLog::open(sink, threshold)
        .map(std::sync::Arc::new)
        .map_err(|e| format!("--trace-log {sink}: {e}"))
}

/// Dispatch a parsed command line.
pub fn dispatch(parsed: &ParsedArgs, out: &mut dyn Write) -> CmdResult {
    match &parsed.command {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        Command::Devices => devices(out),
        Command::Inspect { kernel } => inspect(kernel, out),
        Command::Train { out: path, fast } => train(parsed, path, *fast, out),
        Command::Predict {
            kernel,
            model,
            json,
        } => predict(parsed, kernel, model, *json, out),
        Command::Characterize { kernel } => characterize(parsed, kernel, out),
        Command::Sweep { kernels } => sweep(parsed, kernels, out),
        Command::Evaluate { model } => evaluate(parsed, model, out),
        Command::Report {
            full,
            out: dir,
            check,
        } => report(parsed, *full, dir, check.as_deref(), out),
        Command::Serve {
            port,
            fast,
            workers,
            queue,
            cache,
            port_file,
            http_port,
            http_port_file,
            max_conns,
            p99_target_us,
            quota,
            trace_log,
            slow_threshold_us,
        } => serve(
            parsed,
            &ServeOpts {
                port: *port,
                fast: *fast,
                workers: *workers,
                queue: *queue,
                cache: *cache,
                port_file: port_file.as_deref(),
                http_port: *http_port,
                http_port_file: http_port_file.as_deref(),
                max_conns: *max_conns,
                p99_target_us: *p99_target_us,
                quota: *quota,
                trace_log: trace_log.as_deref(),
                slow_threshold_us: *slow_threshold_us,
            },
            out,
        ),
        Command::Router {
            port,
            backends,
            port_file,
            http_port,
            http_port_file,
            max_conns,
            trace_log,
            slow_threshold_us,
        } => router(
            &RouterOpts {
                port: *port,
                backends,
                port_file: port_file.as_deref(),
                http_port: *http_port,
                http_port_file: http_port_file.as_deref(),
                max_conns: *max_conns,
                trace_log: trace_log.as_deref(),
                slow_threshold_us: *slow_threshold_us,
            },
            out,
        ),
        Command::Client {
            addr,
            kernel,
            stats,
            reload,
            shutdown,
            record,
        } => client(
            parsed,
            addr,
            &ClientOpts {
                kernel: kernel.as_deref(),
                stats: *stats,
                reload: reload.as_deref(),
                shutdown: *shutdown,
                record: record.as_deref(),
            },
            out,
        ),
        Command::Analyze {
            json,
            check,
            report,
            paths,
        } => analyze(*json, *check, report.as_deref(), paths, out),
    }
}

/// Run the in-repo static-analysis pass: scan the default
/// `crates/*/src` + `src/` set (or the given paths), print findings
/// (human lines or `--json`), optionally render the `ANALYSIS.md`
/// census with `--report`, and — with `--check` — exit nonzero when
/// any unsuppressed finding remains.
fn analyze(
    json: bool,
    check: bool,
    report: Option<&str>,
    paths: &[String],
    out: &mut dyn Write,
) -> CmdResult {
    use std::path::{Path, PathBuf};
    let root = std::env::current_dir()?;
    let files: Vec<PathBuf> = if paths.is_empty() {
        gpufreq_analyze::default_file_set(&root)
            .map_err(|e| format!("collecting default scan set under {}: {e}", root.display()))?
    } else {
        let mut files = Vec::new();
        for path in paths {
            let p = Path::new(path);
            if p.is_dir() {
                let mut sub = Vec::new();
                collect_rs_under(p, &mut sub).map_err(|e| format!("{path}: {e}"))?;
                files.extend(sub);
            } else {
                files.push(p.to_path_buf());
            }
        }
        files.sort();
        files
    };
    let analysis = gpufreq_analyze::analyze_files(&root, &files)?;
    let active = analysis.active_findings().count();
    if json {
        writeln!(out, "{}", analysis.to_json())?;
    } else {
        for finding in &analysis.findings {
            writeln!(out, "{finding}")?;
        }
        writeln!(
            out,
            "analyzed {} file(s): {} finding(s) ({} suppressed), {} unsafe site(s), \
             {} atomic ordering site(s)",
            analysis.files.len(),
            active,
            analysis.findings.len() - active,
            analysis.unsafe_sites.len(),
            analysis.atomic_sites.len()
        )?;
    }
    if let Some(path) = report {
        std::fs::write(path, gpufreq_analyze::report::render_markdown(&analysis))
            .map_err(|e| format!("{path}: {e}"))?;
        if !json {
            writeln!(out, "wrote {path}")?;
        }
    }
    if check && active > 0 {
        return Err(format!("analyze --check failed: {active} unsuppressed finding(s)").into());
    }
    Ok(())
}

/// Recursively collect `.rs` files under an explicitly named
/// directory, sorted for deterministic output.
fn collect_rs_under(
    dir: &std::path::Path,
    out: &mut Vec<std::path::PathBuf>,
) -> std::io::Result<()> {
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_under(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn devices(out: &mut dyn Write) -> CmdResult {
    let mut rows = Vec::new();
    for device in Device::all() {
        let spec = device.spec();
        rows.push(vec![
            device.id().to_string(),
            spec.name.clone(),
            spec.clocks.supported_memory_clocks().len().to_string(),
            spec.clocks.actual_configs().len().to_string(),
            format!("{}", spec.clocks.default),
        ]);
    }
    write!(
        out,
        "{}",
        ascii_table(
            &[
                "id",
                "device",
                "memory domains",
                "configurations",
                "default"
            ],
            &rows
        )
    )?;
    Ok(())
}

fn inspect(path: &str, out: &mut dyn Write) -> CmdResult {
    let (features, profile) = analyze_kernel_file(path)?;
    writeln!(
        out,
        "kernel `{}` ({} instructions per work-item)",
        profile.name,
        profile.counts.total()
    )?;
    let mut rows = Vec::new();
    for (name, value) in STATIC_FEATURE_NAMES.iter().zip(features.values()) {
        rows.push(vec![name.to_string(), format!("{value:.4}")]);
    }
    rows.push(vec![
        "memory-boundedness".to_string(),
        format!("{:.4}", memory_boundedness(&features)),
    ]);
    write!(out, "{}", ascii_table(&["feature", "share"], &rows))?;
    writeln!(
        out,
        "global traffic: {:.1} B read, {:.1} B written per work-item",
        profile.global_read_bytes, profile.global_write_bytes
    )?;
    Ok(())
}

fn train(parsed: &ParsedArgs, path: &str, fast: bool, out: &mut dyn Write) -> CmdResult {
    let device = parsed.device_or_default();
    let (corpus, settings, config) = if fast {
        (Corpus::Fast, parsed.settings.min(20), ModelConfig::fast())
    } else {
        (Corpus::Full, parsed.settings, ModelConfig::default())
    };
    writeln!(
        out,
        "training on corpus {corpus:?} x {settings} settings ({})...",
        device.spec().name
    )?;
    let planner = Planner::builder()
        .device(device)
        .corpus(corpus)
        .settings(settings)
        .model_config(config)
        .jobs(parsed.jobs)
        .train()?;
    planner.save(path)?;
    let (sv_s, sv_e) = planner.model().support_vectors();
    writeln!(
        out,
        "trained on {} samples ({sv_s}/{sv_e} support vectors); model written to {path}",
        planner.model().trained_on()
    )?;
    Ok(())
}

/// Load a model artifact, honoring an explicit `--device`: when given,
/// the artifact must have been trained on that device (a typed
/// mismatch error otherwise); when omitted, the artifact's own device
/// is used.
fn load_planner(parsed: &ParsedArgs, path: &str) -> Result<TrainedPlanner, gpufreq_core::Error> {
    let planner = match parsed.device {
        Some(device) => TrainedPlanner::load_for_device(path, device),
        None => TrainedPlanner::load(path),
    }?;
    Ok(planner.with_jobs(parsed.jobs))
}

fn predict(
    parsed: &ParsedArgs,
    kernel: &str,
    model_path: &str,
    json: bool,
    out: &mut dyn Write,
) -> CmdResult {
    let planner = load_planner(parsed, model_path)?;
    let (features, _) = analyze_kernel_file(kernel)?;
    let prediction = planner.predict(&features)?;
    if json {
        writeln!(out, "{}", serde_json::to_string_pretty(&prediction)?)?;
        return Ok(());
    }
    let mut rows = Vec::new();
    for p in &prediction.pareto_set {
        rows.push(vec![
            p.config.mem_mhz.to_string(),
            p.config.core_mhz.to_string(),
            format!("{:.3}", p.objectives.speedup),
            format!("{:.3}", p.objectives.energy),
            if p.heuristic {
                "mem-L heuristic".to_string()
            } else {
                String::new()
            },
        ]);
    }
    writeln!(
        out,
        "predicted Pareto-optimal frequency settings for `{kernel}` on {}:",
        planner.device()
    )?;
    write!(
        out,
        "{}",
        ascii_table(
            &["mem MHz", "core MHz", "speedup", "norm. energy", "note"],
            &rows
        )
    )?;
    Ok(())
}

fn characterize(parsed: &ParsedArgs, kernel: &str, out: &mut dyn Write) -> CmdResult {
    let sim = parsed.device_or_default().simulator();
    let (_, profile) = analyze_kernel_file(kernel)?;
    let configs = sim.spec().clocks.sample_configs(parsed.settings);
    let c = sim.characterize_at(&profile, &configs);
    let mut rows = Vec::new();
    for p in &c.points {
        rows.push(vec![
            p.config().mem_mhz.to_string(),
            p.config().core_mhz.to_string(),
            format!("{:.3}", p.measurement.time_ms),
            format!("{:.1}", p.measurement.avg_power_w),
            format!("{:.3}", p.speedup),
            format!("{:.3}", p.norm_energy),
        ]);
    }
    writeln!(
        out,
        "measured sweep of `{kernel}` on {} ({} settings):",
        sim.spec().name,
        rows.len()
    )?;
    write!(
        out,
        "{}",
        ascii_table(
            &[
                "mem MHz",
                "core MHz",
                "time ms",
                "power W",
                "speedup",
                "norm. energy"
            ],
            &rows
        )
    )?;
    writeln!(
        out,
        "simulated sweep cost: {:.1} minutes",
        c.sim_wall_s() / 60.0
    )?;
    Ok(())
}

/// Batch-characterize several kernels: analyses go through one shared
/// [`ProfileCache`] (a path passed twice — or two files with identical
/// source — is parsed once) and the per-kernel frequency sweeps fan
/// out over the [`Engine`], with results reported in input order.
fn sweep(parsed: &ParsedArgs, kernels: &[String], out: &mut dyn Write) -> CmdResult {
    let sim = parsed.device_or_default().simulator();
    let engine = Engine::new(parsed.jobs);
    let cache = ProfileCache::new();
    let configs = sim.spec().clocks.sample_configs(parsed.settings);
    // Read + analyze up front (I/O and the shared cache), sweep in
    // parallel; any unreadable or malformed kernel fails the command
    // before simulated minutes are spent on the others.
    let mut profiles = Vec::with_capacity(kernels.len());
    for path in kernels {
        let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let analyzed = cache.analyze(&source).map_err(|e| format!("{path}: {e}"))?;
        profiles.push(analyzed);
    }
    let inner_sim = sim.clone().with_jobs(engine.inner(profiles.len()).jobs());
    let characterizations = engine.map(&profiles, |analyzed| {
        inner_sim.characterize_at(&analyzed.1, &configs)
    });
    let mut rows = Vec::new();
    for (path, c) in kernels.iter().zip(&characterizations) {
        let best_speedup = c
            .points
            .iter()
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
            .expect("sweep has points");
        let min_energy = c
            .points
            .iter()
            .min_by(|a, b| a.norm_energy.total_cmp(&b.norm_energy))
            .expect("sweep has points");
        rows.push(vec![
            path.clone(),
            c.kernel.clone(),
            format!("{} @ {:.3}x", best_speedup.config(), best_speedup.speedup),
            format!("{} @ {:.3}", min_energy.config(), min_energy.norm_energy),
            format!("{:.1}", c.sim_wall_s() / 60.0),
        ]);
    }
    writeln!(
        out,
        "swept {} kernel(s) on {} ({} settings, {} analysis cache hit(s)):",
        kernels.len(),
        sim.spec().name,
        configs.len(),
        cache.hits(),
    )?;
    write!(
        out,
        "{}",
        ascii_table(
            &[
                "file",
                "kernel",
                "max speedup",
                "min energy",
                "simulated min"
            ],
            &rows
        )
    )?;
    Ok(())
}

fn evaluate(parsed: &ParsedArgs, model_path: &str, out: &mut dyn Write) -> CmdResult {
    let planner = load_planner(parsed, model_path)?;
    let evals = planner.evaluate()?;
    write!(out, "{}", render_table2(&table2(&evals)))?;
    Ok(())
}

/// Generate the reproduction report: run the fast (golden) or full
/// (paper-parameter) pipeline, write `REPRODUCTION.md` +
/// `reproduction.json` into `dir`, and — with `--check` — fail when
/// any metric regressed from pass to FAIL tier relative to a baseline
/// `reproduction.json`.
fn report(
    parsed: &ParsedArgs,
    full: bool,
    dir: &str,
    check: Option<&str>,
    out: &mut dyn Write,
) -> CmdResult {
    use gpufreq_bench::report::{generate, render, ReportOptions};
    let opts = ReportOptions {
        full,
        jobs: parsed.jobs,
        // An empty value means unset — CI pins `GPUFREQ_GIT_REV: ""`
        // so the regenerated report is byte-comparable to the
        // checked-in copy regardless of the runner's environment.
        git_revision: std::env::var("GPUFREQ_GIT_REV")
            .ok()
            .filter(|rev| !rev.is_empty()),
    };
    writeln!(
        out,
        "generating {} reproduction report (this {})...",
        if full { "full paper-parameter" } else { "fast" },
        if full {
            "trains at C = 1000 and takes minutes"
        } else {
            "takes seconds"
        }
    )?;
    let report = generate(&opts)?;
    std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    let md_path = std::path::Path::new(dir).join(render::MARKDOWN_FILE);
    let json_path = std::path::Path::new(dir).join(render::JSON_FILE);
    std::fs::write(&md_path, render::render_markdown(&report))
        .map_err(|e| format!("{}: {e}", md_path.display()))?;
    std::fs::write(&json_path, render::render_json(&report))
        .map_err(|e| format!("{}: {e}", json_path.display()))?;
    writeln!(
        out,
        "scoreboard: {} pass, {} warn, {} FAIL across {} sections",
        report.summary.pass,
        report.summary.warn,
        report.summary.fail,
        report.sections.len()
    )?;
    writeln!(out, "wrote {}", md_path.display())?;
    writeln!(out, "wrote {}", json_path.display())?;
    if let Some(baseline_path) = check {
        let baseline_json =
            std::fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
        let baseline =
            render::parse_json(&baseline_json).map_err(|e| format!("{baseline_path}: {e}"))?;
        let regressions = render::tier_regressions(&baseline, &report);
        if regressions.is_empty() {
            writeln!(
                out,
                "no pass\u{2192}FAIL tier regressions against {baseline_path}"
            )?;
        } else {
            for regression in &regressions {
                writeln!(out, "tier regression: {regression}")?;
            }
            return Err(format!(
                "{} metric(s) regressed from pass to FAIL tier against {baseline_path}",
                regressions.len()
            )
            .into());
        }
    }
    Ok(())
}

/// The `serve` knobs, bundled so the runner's signature stays sane.
struct ServeOpts<'a> {
    port: u16,
    fast: bool,
    workers: Option<usize>,
    queue: Option<usize>,
    cache: Option<usize>,
    port_file: Option<&'a str>,
    http_port: Option<u16>,
    http_port_file: Option<&'a str>,
    max_conns: Option<usize>,
    p99_target_us: Option<u64>,
    quota: Option<(u32, u32)>,
    trace_log: Option<&'a str>,
    slow_threshold_us: Option<u64>,
}

/// Train planners for the served devices, bind the TCP listener (plus
/// the HTTP gateway listener when `--http-port` is given), and run the
/// daemon until a `shutdown` request drains it; the final metrics
/// summary is printed on exit. `--device` narrows serving to one
/// device (default: every registered device); port 0 binds a free port
/// — bound addresses are printed (and written to `--port-file` /
/// `--http-port-file` when given) before serving starts.
fn serve(parsed: &ParsedArgs, opts: &ServeOpts<'_>, out: &mut dyn Write) -> CmdResult {
    use gpufreq_serve::{render_stats_table, AdmissionConfig, Quota, Server, ServerConfig};
    let (corpus, settings, config) = if opts.fast {
        (Corpus::Fast, parsed.settings.min(20), ModelConfig::fast())
    } else {
        (Corpus::Full, parsed.settings, ModelConfig::default())
    };
    let builder = Planner::builder()
        .corpus(corpus)
        .settings(settings)
        .model_config(config)
        .jobs(parsed.jobs);
    let planners = match parsed.device {
        Some(device) => {
            writeln!(
                out,
                "training 1 model (corpus {corpus:?} x {settings} settings, {})...",
                device.spec().name
            )?;
            vec![builder.device(device).train()?]
        }
        None => {
            writeln!(
                out,
                "training {} models (corpus {corpus:?} x {settings} settings, all devices)...",
                Device::all().len()
            )?;
            builder.train_all_devices()?
        }
    };
    let defaults = ServerConfig::default();
    let mut server = Server::new(
        planners,
        ServerConfig {
            workers: opts.workers.unwrap_or(defaults.workers),
            queue_capacity: opts.queue.unwrap_or(defaults.queue_capacity),
            cache_capacity: opts.cache.unwrap_or(defaults.cache_capacity),
            max_connections: opts.max_conns.unwrap_or(defaults.max_connections),
            admission: AdmissionConfig {
                p99_target_us: opts.p99_target_us,
                quota: opts.quota.map(|(rate_per_sec, burst)| Quota {
                    rate_per_sec,
                    burst,
                }),
            },
            ..defaults
        },
    )?;
    if let Some(sink) = opts.trace_log {
        server.set_trace_log(open_trace_log(sink, opts.slow_threshold_us)?);
    }
    let listener = std::net::TcpListener::bind(("127.0.0.1", opts.port))?;
    let addr = listener.local_addr()?;
    if let Some(path) = opts.port_file {
        std::fs::write(path, format!("{addr}\n")).map_err(|e| format!("{path}: {e}"))?;
    }
    let http_listener = match opts.http_port {
        Some(port) => Some(std::net::TcpListener::bind(("127.0.0.1", port))?),
        None => None,
    };
    writeln!(
        out,
        "listening on {addr} (devices: {})",
        server
            .devices()
            .iter()
            .map(|d| d.id())
            .collect::<Vec<_>>()
            .join(", ")
    )?;
    if let Some(http) = &http_listener {
        let http_addr = http.local_addr()?;
        if let Some(path) = opts.http_port_file {
            std::fs::write(path, format!("{http_addr}\n")).map_err(|e| format!("{path}: {e}"))?;
        }
        writeln!(out, "HTTP gateway on http://{http_addr}")?;
    }
    // The lines must be visible to whoever is scripting us *before* we
    // block in the accept loop.
    out.flush()?;
    let summary = server.serve_with_http(listener, http_listener)?;
    writeln!(out, "shutdown complete; final metrics:")?;
    write!(out, "{}", render_stats_table(&summary))?;
    Ok(())
}

/// The `router` knobs, bundled like [`ServeOpts`].
struct RouterOpts<'a> {
    port: u16,
    backends: &'a [String],
    port_file: Option<&'a str>,
    http_port: Option<u16>,
    http_port_file: Option<&'a str>,
    max_conns: Option<usize>,
    trace_log: Option<&'a str>,
    slow_threshold_us: Option<u64>,
}

/// Stand up the device-sharded router: parse the `--backend` specs,
/// discover (or trust) each backend's device set, bind the client
/// listeners, and route until a `shutdown` request drains it. Like
/// `serve`, port 0 binds a free port and the bound addresses are
/// printed (and written to the port files) before accepting starts.
fn router(opts: &RouterOpts<'_>, out: &mut dyn Write) -> CmdResult {
    use gpufreq_router::{BackendSpec, Router, RouterConfig};
    let mut config = RouterConfig::default();
    for spec in opts.backends {
        let parsed: BackendSpec = spec.parse().map_err(|e| format!("--backend {spec}: {e}"))?;
        config.backends.push(parsed);
    }
    if let Some(max) = opts.max_conns {
        config.max_connections = max;
    }
    let mut router = Router::new(config)?;
    if let Some(sink) = opts.trace_log {
        router.set_trace_log(open_trace_log(sink, opts.slow_threshold_us)?);
    }
    let router = router;
    let listener = std::net::TcpListener::bind(("127.0.0.1", opts.port))?;
    let addr = listener.local_addr()?;
    if let Some(path) = opts.port_file {
        std::fs::write(path, format!("{addr}\n")).map_err(|e| format!("{path}: {e}"))?;
    }
    let http_listener = match opts.http_port {
        Some(port) => Some(std::net::TcpListener::bind(("127.0.0.1", port))?),
        None => None,
    };
    writeln!(
        out,
        "routing on {addr} (devices: {}; {} backend(s))",
        router
            .devices()
            .iter()
            .map(|d| d.id())
            .collect::<Vec<_>>()
            .join(", "),
        opts.backends.len()
    )?;
    if let Some(http) = &http_listener {
        let http_addr = http.local_addr()?;
        if let Some(path) = opts.http_port_file {
            std::fs::write(path, format!("{http_addr}\n")).map_err(|e| format!("{path}: {e}"))?;
        }
        writeln!(out, "HTTP gateway on http://{http_addr}")?;
    }
    // The lines must be visible to whoever is scripting us *before* we
    // block in the accept loop.
    out.flush()?;
    let summary = router.serve_with_http(listener, http_listener)?;
    writeln!(
        out,
        "shutdown complete; routed {} request(s) ({} retried, {} circuit-rejected, {} malformed)",
        summary.counters.routed,
        summary.counters.retried,
        summary.counters.broken_circuit,
        summary.counters.malformed
    )?;
    for backend in &summary.backends {
        writeln!(
            out,
            "  backend {} [{}] {}: {} request(s), {} failure(s)",
            backend.addr,
            backend.devices.join(", "),
            backend.state,
            backend.requests,
            backend.failures
        )?;
    }
    Ok(())
}

/// The `client` operations, bundled like [`ServeOpts`].
struct ClientOpts<'a> {
    kernel: Option<&'a str>,
    stats: bool,
    reload: Option<&'a str>,
    shutdown: bool,
    record: Option<&'a str>,
}

/// One-shot protocol client: connect, send the requested operations in
/// order (`--reload`, then predict, then `--stats`, then
/// `--shutdown`), and echo each raw JSON response line. Any error
/// response exits non-zero. With `--record`, every exchange is
/// appended to the trace file as one `{"send":...,"recv":...}` line —
/// the acceptance-harness format.
fn client(
    parsed: &ParsedArgs,
    addr: &str,
    opts: &ClientOpts<'_>,
    out: &mut dyn Write,
) -> CmdResult {
    use gpufreq_serve::codec::TraceEntry;
    use gpufreq_serve::{Request, Response};
    use std::io::BufRead as _;
    let ClientOpts {
        kernel,
        stats,
        reload,
        shutdown,
        record,
    } = *opts;
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone()?;
    let mut reader = std::io::BufReader::new(stream);
    let mut trace = match record {
        Some(path) => Some(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("{path}: {e}"))?,
        ),
        None => None,
    };
    let mut requests = Vec::new();
    if let Some(path) = reload {
        // The path is resolved by the *server* process — pass it
        // absolute so the swap does not depend on the daemon's cwd.
        let path = std::path::Path::new(path)
            .canonicalize()
            .map_err(|e| format!("{path}: {e}"))?;
        requests.push(Request::Reload {
            device: parsed.device_or_default().id().to_string(),
            path: path.to_string_lossy().into_owned(),
        });
    }
    if let Some(path) = kernel {
        let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        requests.push(Request::Predict {
            device: parsed.device_or_default().id().to_string(),
            source,
        });
    }
    if stats {
        requests.push(Request::Stats);
    }
    if shutdown {
        requests.push(Request::Shutdown);
    }
    for request in requests {
        let sent = request.to_json();
        writeln!(writer, "{sent}")?;
        writer.flush()?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(format!("server closed the connection before answering {addr}").into());
        }
        let line = line.trim();
        writeln!(out, "{line}")?;
        if let Some(file) = &mut trace {
            let entry = TraceEntry {
                send: sent,
                recv: line.to_string(),
            };
            writeln!(file, "{}", entry.to_json())?;
        }
        let response = Response::parse(line).map_err(|e| format!("unparseable response: {e}"))?;
        if let Some(error) = response.error() {
            return Err(format!("server error: {error}").into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {

    use crate::run;
    use gpufreq_core::{ModelArtifact, TrainedPlanner};
    use gpufreq_sim::Device;

    fn run_str(line: &str) -> (i32, String) {
        let argv: Vec<String> = line.split_whitespace().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let code = run(&argv, &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    fn write_kernel() -> String {
        let dir = std::env::temp_dir().join("gpufreq-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("saxpy.cl");
        std::fs::write(
            &path,
            "__kernel void saxpy(__global float* x, __global float* y, float a) {
                uint i = get_global_id(0);
                y[i] = a * x[i] + y[i];
            }",
        )
        .unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn devices_lists_all_three() {
        let (code, out) = run_str("devices");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("GTX Titan X"));
        assert!(out.contains("Tesla P100"));
        assert!(out.contains("Tesla K20c"));
    }

    #[test]
    fn inspect_prints_features() {
        let kernel = write_kernel();
        let (code, out) = run_str(&format!("inspect {kernel}"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("float_mul"));
        assert!(out.contains("gl_access"));
        assert!(out.contains("memory-boundedness"));
    }

    #[test]
    fn characterize_runs_a_sweep() {
        let kernel = write_kernel();
        let (code, out) = run_str(&format!("characterize {kernel} --settings 6"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("speedup"));
        assert!(out.contains("simulated sweep cost"));
    }

    #[test]
    fn sweep_reports_all_kernels_in_input_order_with_cache_hits() {
        let kernel = write_kernel();
        // The same path twice: the second analysis is a cache hit; both
        // still get their own row, and serial/parallel output is
        // byte-identical.
        let line = format!("sweep {kernel} {kernel} --settings 6 --jobs 2");
        let (code, out) = run_str(&line);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("swept 2 kernel(s)"), "{out}");
        assert!(out.contains("1 analysis cache hit(s)"), "{out}");
        assert!(out.contains("saxpy"), "{out}");
        let (code, serial_out) = run_str(&format!("sweep {kernel} {kernel} --settings 6 --jobs 1"));
        assert_eq!(code, 0);
        assert_eq!(serial_out, out, "sweep output must not depend on --jobs");
    }

    #[test]
    fn sweep_fails_cleanly_on_missing_or_bad_kernels() {
        let (code, out) = run_str("sweep /does/not/exist.cl");
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("/does/not/exist.cl"), "{out}");
        let (code, out) = run_str("sweep");
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("USAGE"), "{out}");
    }

    #[test]
    fn train_then_predict_round_trip() {
        let kernel = write_kernel();
        let model = std::env::temp_dir().join("gpufreq-cli-test/model.json");
        let model = model.to_string_lossy();
        let (code, out) = run_str(&format!("train --fast --settings 12 --out {model}"));
        assert_eq!(code, 0, "{out}");
        // The persisted file is a versioned, device-tagged artifact.
        let artifact = ModelArtifact::load(model.as_ref() as &str).unwrap();
        assert_eq!(artifact.device, Device::TitanX);
        let (code, out) = run_str(&format!("predict {kernel} --model {model}"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("Pareto-optimal"));
        assert!(out.contains("mem-L heuristic"));
        // JSON mode parses back.
        let (code, out) = run_str(&format!("predict {kernel} --model {model} --json"));
        assert_eq!(code, 0, "{out}");
        assert!(serde_json::from_str::<serde_json::Value>(&out).is_ok());
        // An explicit matching --device is fine; a different one is a
        // typed mismatch mapped to a non-zero exit.
        let (code, _) = run_str(&format!(
            "predict {kernel} --model {model} --device titan-x"
        ));
        assert_eq!(code, 0);
        let (code, out) = run_str(&format!(
            "predict {kernel} --model {model} --device tesla-p100"
        ));
        assert_eq!(code, 1, "{out}");
        assert!(
            out.contains("trained on `titan-x`") && out.contains("`tesla-p100`"),
            "{out}"
        );
    }

    #[test]
    fn unknown_device_exits_nonzero_listing_valid_ids() {
        // Regression: the `teslap100` typo used to silently fall back
        // to the Titan X.
        let (code, out) = run_str("train --device teslap100");
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("unknown device `teslap100`"), "{out}");
        assert!(
            out.contains("valid devices: titan-x, tesla-p100, tesla-k20c"),
            "{out}"
        );
    }

    #[test]
    fn legacy_and_corrupt_models_error_clearly() {
        let kernel = write_kernel();
        let dir = std::env::temp_dir().join("gpufreq-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Pre-versioning bare-model JSON (no format_version envelope).
        let legacy = dir.join("legacy.json");
        std::fs::write(&legacy, "{\"domains\": [], \"scaler\": {}}").unwrap();
        let (code, out) = run_str(&format!(
            "predict {kernel} --model {}",
            legacy.to_string_lossy()
        ));
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("legacy model file"), "{out}");
        // Outright corrupt JSON.
        let corrupt = dir.join("corrupt.json");
        std::fs::write(&corrupt, "{not json").unwrap();
        let (code, out) = run_str(&format!(
            "predict {kernel} --model {}",
            corrupt.to_string_lossy()
        ));
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("malformed model artifact"), "{out}");
    }

    #[test]
    fn evaluate_honors_artifact_device() {
        // Train a fast P100 model via the facade and evaluate without
        // --device: the artifact's own device must be used.
        let dir = std::env::temp_dir().join("gpufreq-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p100-eval.json");
        let planner = gpufreq_core::Planner::builder()
            .device(Device::TeslaP100)
            .corpus(gpufreq_core::Corpus::Fast)
            .settings(8)
            .model_config(fast_config())
            .train()
            .unwrap();
        planner.save(&path).unwrap();
        let loaded = TrainedPlanner::load(&path).unwrap();
        assert_eq!(loaded.device(), Device::TeslaP100);
        let (code, out) = run_str(&format!("evaluate --model {}", path.to_string_lossy()));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("Benchmark"), "{out}");
    }

    fn fast_config() -> gpufreq_core::ModelConfig {
        use gpufreq_ml::SvrParams;
        gpufreq_core::ModelConfig {
            speedup: SvrParams {
                c: 10.0,
                max_iter: 100_000,
                ..SvrParams::paper_speedup()
            },
            energy: SvrParams {
                c: 10.0,
                max_iter: 100_000,
                ..SvrParams::paper_energy()
            },
        }
    }

    #[test]
    fn client_round_trips_against_a_running_server() {
        use gpufreq_serve::{Server, ServerConfig};
        use std::sync::Arc;
        let planner = gpufreq_core::Planner::builder()
            .corpus(gpufreq_core::Corpus::Fast)
            .settings(6)
            .model_config(fast_config())
            .train()
            .unwrap();
        // Persist the same model so `--reload` has an artifact to swap
        // in mid-run.
        let dir = std::env::temp_dir().join("gpufreq-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let artifact = dir.join("reload-artifact.json");
        planner.save(&artifact).unwrap();
        let server = Arc::new(
            Server::new(
                vec![planner],
                ServerConfig {
                    workers: 2,
                    ..ServerConfig::default()
                },
            )
            .unwrap(),
        );
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.serve(listener).unwrap())
        };
        // Predict for a kernel file; the raw JSON response is echoed.
        let kernel = write_kernel();
        let (code, out) = run_str(&format!("client {addr} {kernel}"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"ok\":\"predict\""), "{out}");
        assert!(out.contains("\"device\":\"titan-x\""), "{out}");
        // Predicting for an unserved device is the server's typed
        // error, surfaced as a non-zero client exit.
        let (code, out) = run_str(&format!("client {addr} {kernel} --device tesla-k20c"));
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("device_not_served"), "{out}");
        // Hot-reload the serving model from the saved artifact, then
        // predict again on the swapped-in model.
        let (code, out) = run_str(&format!(
            "client {addr} {kernel} --reload {}",
            artifact.to_string_lossy()
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"ok\":\"reload\""), "{out}");
        assert!(out.contains("\"version\":2"), "{out}");
        assert!(out.contains("\"ok\":\"predict\""), "{out}");
        // Stats + shutdown drain the daemon cleanly.
        let (code, out) = run_str(&format!("client {addr} --stats --shutdown"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"ok\":\"stats\""), "{out}");
        assert!(out.contains("\"ok\":\"shutdown\""), "{out}");
        let summary = daemon.join().unwrap();
        assert!(summary.requests.total >= 4);
        // A client against the now-stopped server fails to connect.
        let (code, out) = run_str(&format!("client {addr} --stats"));
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("connect"), "{out}");
    }

    #[test]
    fn router_fronts_replicated_backends_and_records_traces() {
        use gpufreq_serve::{Server, ServerConfig};
        use std::sync::Arc;
        let planner = gpufreq_core::Planner::builder()
            .corpus(gpufreq_core::Corpus::Fast)
            .settings(6)
            .model_config(fast_config())
            .train()
            .unwrap();
        // Two replicas of the same titan-x model behind one router.
        let mut backends = Vec::new();
        let mut daemons = Vec::new();
        for _ in 0..2 {
            let server = Arc::new(
                Server::new(
                    vec![planner.clone()],
                    ServerConfig {
                        workers: 2,
                        ..ServerConfig::default()
                    },
                )
                .unwrap(),
            );
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            backends.push(listener.local_addr().unwrap());
            let handle = {
                let server = Arc::clone(&server);
                std::thread::spawn(move || server.serve(listener).unwrap())
            };
            daemons.push((server, handle));
        }
        let dir = std::env::temp_dir().join("gpufreq-cli-router-test");
        std::fs::create_dir_all(&dir).unwrap();
        let port_file = dir.join("router.addr");
        std::fs::remove_file(&port_file).ok();
        let router_cmd = format!(
            "router --backend {} --backend {} --port 0 --port-file {}",
            backends[0],
            backends[1],
            port_file.to_string_lossy()
        );
        let router = std::thread::spawn(move || run_str(&router_cmd));
        let addr = loop {
            match std::fs::read_to_string(&port_file) {
                Ok(s) if s.contains(':') => break s.trim().to_string(),
                _ => std::thread::sleep(std::time::Duration::from_millis(20)),
            }
        };
        // Predict through the router, recording the exchange.
        let kernel = write_kernel();
        let trace = dir.join("trace.jsonl");
        std::fs::remove_file(&trace).ok();
        let (code, out) = run_str(&format!(
            "client {addr} {kernel} --record {}",
            trace.to_string_lossy()
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"ok\":\"predict\""), "{out}");
        // The recorded trace parses and pins the same response bytes.
        let contents = std::fs::read_to_string(&trace).unwrap();
        let entries = gpufreq_serve::codec::parse_trace(&contents).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].send.contains("\"op\":\"predict\""));
        assert!(out.contains(&entries[0].recv), "{out}");
        // Router stats carry the aggregated backends plus the router
        // section.
        let (code, out) = run_str(&format!("client {addr} --stats"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"ok\":\"stats\""), "{out}");
        assert!(out.contains("\"router\":"), "{out}");
        // Shut the router down; the backends keep running.
        let (code, out) = run_str(&format!("client {addr} --shutdown"));
        assert_eq!(code, 0, "{out}");
        let (code, out) = router.join().unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("routing on"), "{out}");
        assert!(out.contains("shutdown complete"), "{out}");
        assert!(out.contains("backend "), "{out}");
        for (backend, (_, handle)) in backends.iter().zip(daemons) {
            let (code, out) = run_str(&format!("client {backend} --shutdown"));
            assert_eq!(code, 0, "{out}");
            let summary = handle.join().unwrap();
            assert!(summary.requests.total >= 1);
        }
    }

    #[test]
    fn bad_usage_exits_nonzero_with_usage() {
        let (code, out) = run_str("predict missing.cl");
        assert_eq!(code, 2);
        assert!(out.contains("USAGE"));
        let (code, _) = run_str("inspect /does/not/exist.cl");
        assert_eq!(code, 1);
    }

    #[test]
    fn help_shows_usage() {
        let (code, out) = run_str("--help");
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
    }
}
