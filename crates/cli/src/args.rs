//! Argument parsing for the `gpufreq` CLI (plain `std`, no external
//! parser dependency).

use gpufreq_sim::Device;
use std::fmt;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
gpufreq — predictable GPU frequency scaling (ICPP 2019 reproduction)

USAGE:
    gpufreq devices
    gpufreq inspect <kernel.cl>
    gpufreq train [--device <name>] [--settings <n>] [--fast] [--jobs <n>] [--out <model.json>]
    gpufreq predict <kernel.cl> --model <model.json> [--device <name>] [--json]
    gpufreq characterize <kernel.cl> [--device <name>] [--settings <n>]
    gpufreq sweep <kernel.cl>... [--device <name>] [--settings <n>] [--jobs <n>]
    gpufreq evaluate --model <model.json> [--device <name>] [--jobs <n>]
    gpufreq report [--fast|--full] [--jobs <n>] [--out <dir>] [--check <baseline.json>]
    gpufreq serve [--device <name>] [--fast] [--port <n>] [--workers <n>]
                  [--queue <n>] [--cache <n>] [--port-file <path>]
                  [--http-port <n>] [--http-port-file <path>] [--max-conns <n>]
                  [--p99-target <us>] [--quota <rate[/burst]>]
                  [--trace-log <path|stderr>] [--slow-threshold-us <n>]
    gpufreq router --backend <addr[=device,...]> [--backend ...] [--port <n>]
                  [--port-file <path>] [--http-port <n>]
                  [--http-port-file <path>] [--max-conns <n>]
                  [--trace-log <path|stderr>] [--slow-threshold-us <n>]
    gpufreq client <host:port> [<kernel.cl>] [--device <name>] [--stats]
                  [--reload <model.json>] [--shutdown] [--record <trace.jsonl>]
    gpufreq analyze [--json] [--check] [--report <path>] [paths...]

DEVICES:
    titan-x (default), tesla-p100, tesla-k20c

OPTIONS:
    --device <name>     simulated device (train default: titan-x;
                        predict/evaluate default: the model's device;
                        serve default: all registered devices)
    --settings <n>      sampled frequency settings (default: 40)
    --jobs <n>          worker threads for train/sweep/evaluate
                        (default: all cores; results are identical
                        for every value)
    --model <path>      trained model JSON (from `gpufreq train`)
    --out <path>        where `train` writes the model (default: model.json);
                        where `report` writes REPRODUCTION.md and
                        reproduction.json (default: current directory)
    --fast              reduced corpus + relaxed solver (seconds, less
                        accurate; the `report` default)
    --full              `report` at the paper's parameters (minutes)
    --check <path>      `report` only: fail if any metric regressed from
                        pass to FAIL tier relative to this baseline JSON
    --check             `analyze` only (no value): exit 1 when any
                        unsuppressed finding remains
    --report <path>     `analyze` only: also write the ANALYSIS.md
                        census report to this path
    --json              machine-readable output
    --port <n>          `serve`: TCP port to listen on (default: 7070;
                        0 picks a free port)
    --port-file <path>  `serve`: write the bound host:port to this file
                        once listening (for scripts and CI)
    --workers <n>       `serve`: worker threads answering requests
                        (default: all cores, capped at 8; responses are
                        byte-identical for every value)
    --queue <n>         `serve`: request-queue bound before `overloaded`
                        rejections (default: 256)
    --cache <n>         `serve`: response front-cache entries
                        (default: 4096; 0 disables caching)
    --http-port <n>     `serve`: also listen for HTTP/1.1 on this port
                        (0 picks a free port; omitted = no HTTP listener)
    --http-port-file <path>
                        `serve`: write the bound HTTP host:port here
                        once listening
    --max-conns <n>     `serve`: concurrent-connection cap across both
                        listeners (default: 256); connections past it
                        get a typed `overloaded` refusal
    --p99-target <us>   `serve`: refuse predict work while the rolling
                        p99 latency exceeds this many microseconds
    --quota <rate[/burst]>
                        `serve`: per-client-IP token bucket — sustained
                        requests/sec with optional burst (default burst
                        = rate)
    --backend <addr[=device,...]>
                        `router`: a backend daemon to fan requests to
                        (repeatable; at least one). Without the
                        `=device,...` list the router asks the backend
                        what it serves at startup
    --trace-log <path|stderr>
                        `serve`/`router`: append sampled slow-request
                        and error records (JSON lines with trace id and
                        per-stage latency) to this file, or to stderr
    --slow-threshold-us <n>
                        `serve`/`router`: only log requests slower than
                        this many microseconds (default: 10000; 0 logs
                        everything; errors always qualify)
    --stats             `client`: request a server metrics snapshot
    --reload <path>     `client`: hot-swap the serving model for
                        --device (default titan-x) from this artifact
    --shutdown          `client`: ask the server to drain and exit
    --record <path>     `client`: append every request/response wire
                        line pair to this JSONL trace (the record/
                        replay acceptance format)
    --help              show this text";

/// Parsed subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List simulated devices.
    Devices,
    /// Parse and show the static features of a kernel file.
    Inspect {
        /// Path to the kernel source.
        kernel: String,
    },
    /// Train a model and write it to disk.
    Train {
        /// Where the model JSON is written.
        out: String,
        /// Reduced corpus + relaxed solver.
        fast: bool,
    },
    /// Predict the Pareto-optimal settings of a kernel.
    Predict {
        /// Path to the kernel source.
        kernel: String,
        /// Path of the trained model.
        model: String,
        /// Emit JSON instead of a table.
        json: bool,
    },
    /// Ground-truth sweep of a kernel on the simulator.
    Characterize {
        /// Path to the kernel source.
        kernel: String,
    },
    /// Batch-characterize several kernels concurrently through the
    /// execution engine.
    Sweep {
        /// Paths of the kernel sources, reported in input order.
        kernels: Vec<String>,
    },
    /// Paper-style Table 2 over the twelve benchmarks.
    Evaluate {
        /// Path of the trained model.
        model: String,
    },
    /// Generate the cited paper-vs-repo reproduction report
    /// (`REPRODUCTION.md` + `reproduction.json`).
    Report {
        /// Run the paper-parameter pipeline instead of the fast
        /// golden pipeline.
        full: bool,
        /// Directory the report files are written to.
        out: String,
        /// Baseline `reproduction.json` to gate tier regressions
        /// against.
        check: Option<String>,
    },
    /// Run the long-lived prediction daemon (`gpufreq-serve`).
    Serve {
        /// TCP port to bind on 127.0.0.1 (0 = pick a free port).
        port: u16,
        /// Train the reduced corpus with the relaxed solver instead of
        /// the paper parameters.
        fast: bool,
        /// Worker threads (`None` = the server default).
        workers: Option<usize>,
        /// Request-queue bound (`None` = the server default).
        queue: Option<usize>,
        /// Front-cache entries (`None` = the server default; 0
        /// disables).
        cache: Option<usize>,
        /// File the bound address is written to once listening.
        port_file: Option<String>,
        /// HTTP/1.1 gateway port (`None` = no HTTP listener; 0 = pick
        /// a free port).
        http_port: Option<u16>,
        /// File the bound HTTP address is written to once listening.
        http_port_file: Option<String>,
        /// Concurrent-connection cap (`None` = the server default).
        max_conns: Option<usize>,
        /// Windowed-p99 admission target in microseconds, if enabled.
        p99_target_us: Option<u64>,
        /// Per-client quota as `(rate_per_sec, burst)`, if enabled.
        quota: Option<(u32, u32)>,
        /// Slow-request/error log sink (`stderr` or a file path), if
        /// enabled.
        trace_log: Option<String>,
        /// Slow-request threshold in microseconds (`None` = the
        /// default; 0 logs every request).
        slow_threshold_us: Option<u64>,
    },
    /// Run the device-sharded router over backend daemons
    /// (`gpufreq-router`).
    Router {
        /// TCP port to bind on 127.0.0.1 (0 = pick a free port).
        port: u16,
        /// Raw backend specs (`addr` or `addr=device,...`), in
        /// argument order.
        backends: Vec<String>,
        /// File the bound address is written to once listening.
        port_file: Option<String>,
        /// HTTP/1.1 gateway port (`None` = no HTTP listener; 0 = pick
        /// a free port).
        http_port: Option<u16>,
        /// File the bound HTTP address is written to once listening.
        http_port_file: Option<String>,
        /// Concurrent-connection cap (`None` = the router default).
        max_conns: Option<usize>,
        /// Slow-request/error log sink (`stderr` or a file path), if
        /// enabled.
        trace_log: Option<String>,
        /// Slow-request threshold in microseconds (`None` = the
        /// default; 0 logs every request).
        slow_threshold_us: Option<u64>,
    },
    /// Run the in-repo static-analysis pass (`gpufreq-analyze`).
    Analyze {
        /// Emit machine-readable JSON instead of human-readable lines.
        json: bool,
        /// Exit nonzero when any unsuppressed finding remains.
        check: bool,
        /// Also render the `ANALYSIS.md` census to this path.
        report: Option<String>,
        /// Explicit files/directories to scan (empty = the default
        /// `crates/*/src` + `src/` set under the current directory).
        paths: Vec<String>,
    },
    /// One-shot protocol client for a running daemon.
    Client {
        /// Server address (`host:port`).
        addr: String,
        /// Kernel to request a prediction for, if any.
        kernel: Option<String>,
        /// Also request a `stats` snapshot.
        stats: bool,
        /// Model artifact to hot-swap into the server for `--device`
        /// (default titan-x), if any.
        reload: Option<String>,
        /// Finally request a clean server shutdown.
        shutdown: bool,
        /// Trace file every request/response wire-line pair is
        /// appended to (the record/replay acceptance format).
        record: Option<String>,
    },
    /// `--help`.
    Help,
}

/// A fully parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedArgs {
    /// The subcommand.
    pub command: Command,
    /// Device explicitly selected with `--device`, if any. Commands
    /// that train or sweep default to [`Device::TitanX`]; commands
    /// that load a model default to the device recorded in it.
    pub device: Option<Device>,
    /// Sampled settings for sweeps/training.
    pub settings: usize,
    /// Worker threads pinned with `--jobs`, if any (`None` = all
    /// cores). Results are identical for every value.
    pub jobs: Option<usize>,
}

impl ParsedArgs {
    /// The device to train/sweep on when none was given explicitly.
    pub fn device_or_default(&self) -> Device {
        self.device.unwrap_or(Device::TitanX)
    }
}

/// Parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parse `argv` (excluding the program name).
pub fn parse_args(argv: &[String]) -> Result<ParsedArgs, ArgError> {
    let mut positional: Vec<&str> = Vec::new();
    let mut device: Option<Device> = None;
    let mut settings = 40usize;
    let mut jobs: Option<usize> = None;
    let mut model: Option<String> = None;
    let mut out: Option<String> = None;
    let mut fast = false;
    let mut full = false;
    let mut json = false;
    let mut help = false;
    let mut check: Option<String> = None;

    let mut port: u16 = 7070;
    let mut workers: Option<usize> = None;
    let mut queue: Option<usize> = None;
    let mut cache: Option<usize> = None;
    let mut port_file: Option<String> = None;
    let mut http_port: Option<u16> = None;
    let mut http_port_file: Option<String> = None;
    let mut max_conns: Option<usize> = None;
    let mut p99_target_us: Option<u64> = None;
    let mut quota: Option<(u32, u32)> = None;
    let mut trace_log: Option<String> = None;
    let mut slow_threshold_us: Option<u64> = None;
    let mut reload: Option<String> = None;
    let mut record: Option<String> = None;
    let mut backends: Vec<String> = Vec::new();
    let mut stats = false;
    let mut shutdown = false;
    let mut check_flag = false;
    let mut report_out: Option<String> = None;

    // `--check` is overloaded: `report --check <baseline.json>` takes a
    // value, `analyze --check` is a bare boolean. The subcommand always
    // leads the argv in both forms, so disambiguate on it up front.
    let analyze_mode = argv.first().map(String::as_str) == Some("analyze");

    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => help = true,
            "--fast" => fast = true,
            "--full" => full = true,
            "--json" => json = true,
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            "--port" => {
                let v = it.next().ok_or(ArgError("--port needs a value".into()))?;
                port = v
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --port value `{v}`")))?;
            }
            "--workers" => {
                let v = it
                    .next()
                    .ok_or(ArgError("--workers needs a value".into()))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --workers value `{v}`")))?;
                if n == 0 {
                    return Err(ArgError("--workers must be positive".into()));
                }
                workers = Some(n);
            }
            "--queue" => {
                let v = it.next().ok_or(ArgError("--queue needs a value".into()))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --queue value `{v}`")))?;
                if n == 0 {
                    return Err(ArgError("--queue must be positive".into()));
                }
                queue = Some(n);
            }
            "--cache" => {
                // 0 is meaningful here: it disables the front cache.
                let v = it.next().ok_or(ArgError("--cache needs a value".into()))?;
                cache = Some(
                    v.parse()
                        .map_err(|_| ArgError(format!("invalid --cache value `{v}`")))?,
                );
            }
            "--port-file" => {
                port_file = Some(
                    it.next()
                        .ok_or(ArgError("--port-file needs a value".into()))?
                        .clone(),
                );
            }
            "--http-port" => {
                let v = it
                    .next()
                    .ok_or(ArgError("--http-port needs a value".into()))?;
                http_port = Some(
                    v.parse()
                        .map_err(|_| ArgError(format!("invalid --http-port value `{v}`")))?,
                );
            }
            "--http-port-file" => {
                http_port_file = Some(
                    it.next()
                        .ok_or(ArgError("--http-port-file needs a value".into()))?
                        .clone(),
                );
            }
            "--max-conns" => {
                let v = it
                    .next()
                    .ok_or(ArgError("--max-conns needs a value".into()))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --max-conns value `{v}`")))?;
                if n == 0 {
                    return Err(ArgError("--max-conns must be positive".into()));
                }
                max_conns = Some(n);
            }
            "--p99-target" => {
                let v = it
                    .next()
                    .ok_or(ArgError("--p99-target needs a value".into()))?;
                let us: u64 = v
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --p99-target value `{v}`")))?;
                if us == 0 {
                    return Err(ArgError("--p99-target must be positive".into()));
                }
                p99_target_us = Some(us);
            }
            "--quota" => {
                let v = it.next().ok_or(ArgError("--quota needs a value".into()))?;
                // `rate` or `rate/burst`, both positive.
                let (rate_s, burst_s) = match v.split_once('/') {
                    Some((r, b)) => (r, Some(b)),
                    None => (v.as_str(), None),
                };
                let bad = || ArgError(format!("invalid --quota value `{v}` (want rate[/burst])"));
                let rate: u32 = rate_s.parse().map_err(|_| bad())?;
                let burst: u32 = match burst_s {
                    Some(b) => b.parse().map_err(|_| bad())?,
                    None => rate,
                };
                if rate == 0 || burst == 0 {
                    return Err(ArgError("--quota rate and burst must be positive".into()));
                }
                quota = Some((rate, burst));
            }
            "--trace-log" => {
                trace_log = Some(
                    it.next()
                        .ok_or(ArgError(
                            "--trace-log needs a value (a path or `stderr`)".into(),
                        ))?
                        .clone(),
                );
            }
            "--slow-threshold-us" => {
                // 0 is meaningful here: it logs every request.
                let v = it
                    .next()
                    .ok_or(ArgError("--slow-threshold-us needs a value".into()))?;
                slow_threshold_us =
                    Some(v.parse().map_err(|_| {
                        ArgError(format!("invalid --slow-threshold-us value `{v}`"))
                    })?);
            }
            "--reload" => {
                reload = Some(
                    it.next()
                        .ok_or(ArgError("--reload needs a model path".into()))?
                        .clone(),
                );
            }
            "--record" => {
                record = Some(
                    it.next()
                        .ok_or(ArgError("--record needs a trace path".into()))?
                        .clone(),
                );
            }
            "--backend" => {
                backends.push(
                    it.next()
                        .ok_or(ArgError(
                            "--backend needs a value (addr or addr=device,...)".into(),
                        ))?
                        .clone(),
                );
            }
            "--check" if analyze_mode => check_flag = true,
            "--check" => {
                check = Some(
                    it.next()
                        .ok_or(ArgError("--check needs a value".into()))?
                        .clone(),
                );
            }
            "--report" => {
                report_out = Some(
                    it.next()
                        .ok_or(ArgError("--report needs a value".into()))?
                        .clone(),
                );
            }
            "--device" => {
                let v = it.next().ok_or(ArgError("--device needs a value".into()))?;
                // An unknown id is a hard error listing the valid ids
                // — never a silent fallback to some default device.
                device = Some(v.parse().map_err(|e| ArgError(format!("{e}")))?);
            }
            "--settings" => {
                let v = it
                    .next()
                    .ok_or(ArgError("--settings needs a value".into()))?;
                settings = v
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --settings value `{v}`")))?;
                if settings == 0 {
                    return Err(ArgError("--settings must be positive".into()));
                }
            }
            "--jobs" => {
                let v = it.next().ok_or(ArgError("--jobs needs a value".into()))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --jobs value `{v}`")))?;
                if n == 0 {
                    return Err(ArgError("--jobs must be positive".into()));
                }
                jobs = Some(n);
            }
            "--model" => {
                model = Some(
                    it.next()
                        .ok_or(ArgError("--model needs a value".into()))?
                        .clone(),
                );
            }
            "--out" => {
                out = Some(
                    it.next()
                        .ok_or(ArgError("--out needs a value".into()))?
                        .clone(),
                );
            }
            s if s.starts_with("--") => return Err(ArgError(format!("unknown flag `{s}`"))),
            s => positional.push(s),
        }
    }
    if help {
        return Ok(ParsedArgs {
            command: Command::Help,
            device,
            settings,
            jobs,
        });
    }
    let Some((&cmd, rest)) = positional.split_first() else {
        return Err(ArgError("missing subcommand".into()));
    };
    let need_kernel = |rest: &[&str]| -> Result<String, ArgError> {
        rest.first()
            .map(|s| s.to_string())
            .ok_or(ArgError(format!("`{cmd}` needs a kernel source path")))
    };
    let command = match cmd {
        "devices" => Command::Devices,
        "inspect" => Command::Inspect {
            kernel: need_kernel(rest)?,
        },
        "train" => Command::Train {
            out: out.unwrap_or_else(|| "model.json".to_string()),
            fast,
        },
        "predict" => Command::Predict {
            kernel: need_kernel(rest)?,
            model: model.ok_or(ArgError("`predict` needs --model".into()))?,
            json,
        },
        "characterize" => Command::Characterize {
            kernel: need_kernel(rest)?,
        },
        "sweep" => {
            if rest.is_empty() {
                return Err(ArgError(
                    "`sweep` needs at least one kernel source path".into(),
                ));
            }
            Command::Sweep {
                kernels: rest.iter().map(|s| s.to_string()).collect(),
            }
        }
        "evaluate" => Command::Evaluate {
            model: model.ok_or(ArgError("`evaluate` needs --model".into()))?,
        },
        "report" => {
            if fast && full {
                return Err(ArgError("`report` takes --fast or --full, not both".into()));
            }
            Command::Report {
                full,
                out: out.unwrap_or_else(|| ".".to_string()),
                check,
            }
        }
        "serve" => Command::Serve {
            port,
            fast,
            workers,
            queue,
            cache,
            port_file,
            http_port,
            http_port_file,
            max_conns,
            p99_target_us,
            quota,
            trace_log,
            slow_threshold_us,
        },
        "router" => {
            if backends.is_empty() {
                return Err(ArgError(
                    "`router` needs at least one --backend <addr[=device,...]>".into(),
                ));
            }
            Command::Router {
                port,
                backends,
                port_file,
                http_port,
                http_port_file,
                max_conns,
                trace_log,
                slow_threshold_us,
            }
        }
        "analyze" => Command::Analyze {
            json,
            check: check_flag,
            report: report_out,
            paths: rest.iter().map(|s| s.to_string()).collect(),
        },
        "client" => {
            let Some((addr, rest)) = rest.split_first() else {
                return Err(ArgError(
                    "`client` needs a server address (host:port)".into(),
                ));
            };
            let kernel = rest.first().map(|s| s.to_string());
            if kernel.is_none() && !stats && !shutdown && reload.is_none() {
                return Err(ArgError(
                    "`client` needs a kernel path, --stats, --reload, or --shutdown".into(),
                ));
            }
            Command::Client {
                addr: addr.to_string(),
                kernel,
                stats,
                reload,
                shutdown,
                record,
            }
        }
        other => return Err(ArgError(format!("unknown subcommand `{other}`"))),
    };
    Ok(ParsedArgs {
        command,
        device,
        settings,
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_devices() {
        let p = parse_args(&args("devices")).unwrap();
        assert_eq!(p.command, Command::Devices);
        assert_eq!(p.device, None);
        assert_eq!(p.device_or_default(), Device::TitanX);
        assert_eq!(p.settings, 40);
    }

    #[test]
    fn parses_predict_with_flags() {
        let p = parse_args(&args(
            "predict k.cl --model m.json --device tesla-p100 --json",
        ))
        .unwrap();
        assert_eq!(
            p.command,
            Command::Predict {
                kernel: "k.cl".into(),
                model: "m.json".into(),
                json: true
            }
        );
        assert_eq!(p.device, Some(Device::TeslaP100));
    }

    #[test]
    fn predict_requires_model() {
        assert!(parse_args(&args("predict k.cl")).is_err());
    }

    #[test]
    fn rejects_unknown_device_and_flag() {
        let err = parse_args(&args("devices --device gtx-9000")).unwrap_err();
        assert!(err.to_string().contains("unknown device `gtx-9000`"));
        assert!(err.to_string().contains("titan-x, tesla-p100, tesla-k20c"));
        assert!(parse_args(&args("devices --frobnicate")).is_err());
    }

    #[test]
    fn a_device_typo_is_an_error_not_a_fallback() {
        // Regression: `teslap100` (missing dash) used to silently
        // train on the Titan X.
        let err = parse_args(&args("train --device teslap100")).unwrap_err();
        assert!(
            err.to_string().contains("unknown device `teslap100`"),
            "{err}"
        );
    }

    #[test]
    fn settings_must_be_numeric_and_positive() {
        assert!(parse_args(&args("train --settings abc")).is_err());
        assert!(parse_args(&args("train --settings 0")).is_err());
        let p = parse_args(&args("train --settings 12")).unwrap();
        assert_eq!(p.settings, 12);
    }

    #[test]
    fn sweep_takes_multiple_kernels_and_jobs() {
        let p = parse_args(&args("sweep a.cl b.cl c.cl --jobs 4 --settings 8")).unwrap();
        assert_eq!(
            p.command,
            Command::Sweep {
                kernels: vec!["a.cl".into(), "b.cl".into(), "c.cl".into()]
            }
        );
        assert_eq!(p.jobs, Some(4));
        assert_eq!(p.settings, 8);
        assert!(parse_args(&args("sweep")).is_err());
    }

    #[test]
    fn jobs_must_be_numeric_and_positive() {
        assert!(parse_args(&args("train --jobs abc")).is_err());
        assert!(parse_args(&args("train --jobs 0")).is_err());
        assert!(parse_args(&args("train --jobs")).is_err());
        let p = parse_args(&args("train --jobs 2")).unwrap();
        assert_eq!(p.jobs, Some(2));
        let p = parse_args(&args("train")).unwrap();
        assert_eq!(p.jobs, None);
    }

    #[test]
    fn help_short_circuits() {
        let p = parse_args(&args("--help")).unwrap();
        assert_eq!(p.command, Command::Help);
    }

    #[test]
    fn missing_subcommand_errors() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&args("frobnicate")).is_err());
    }

    #[test]
    fn report_defaults_to_fast_in_the_current_directory() {
        let p = parse_args(&args("report")).unwrap();
        assert_eq!(
            p.command,
            Command::Report {
                full: false,
                out: ".".into(),
                check: None
            }
        );
        // An explicit --fast is the same thing.
        let p = parse_args(&args("report --fast")).unwrap();
        assert_eq!(
            p.command,
            Command::Report {
                full: false,
                out: ".".into(),
                check: None
            }
        );
    }

    #[test]
    fn report_takes_full_out_check_and_jobs() {
        let p = parse_args(&args(
            "report --full --out target/report --check reproduction.json --jobs 2",
        ))
        .unwrap();
        assert_eq!(
            p.command,
            Command::Report {
                full: true,
                out: "target/report".into(),
                check: Some("reproduction.json".into())
            }
        );
        assert_eq!(p.jobs, Some(2));
    }

    #[test]
    fn report_rejects_fast_and_full_together() {
        let err = parse_args(&args("report --fast --full")).unwrap_err();
        assert!(err.to_string().contains("not both"), "{err}");
        assert!(parse_args(&args("report --check")).is_err());
    }

    #[test]
    fn serve_defaults_and_knobs() {
        let p = parse_args(&args("serve")).unwrap();
        assert_eq!(
            p.command,
            Command::Serve {
                port: 7070,
                fast: false,
                workers: None,
                queue: None,
                cache: None,
                port_file: None,
                http_port: None,
                http_port_file: None,
                max_conns: None,
                p99_target_us: None,
                quota: None,
                trace_log: None,
                slow_threshold_us: None
            }
        );
        let p = parse_args(&args(
            "serve --fast --port 0 --workers 2 --queue 16 --cache 0 \
             --port-file /tmp/serve.addr --device tesla-p100",
        ))
        .unwrap();
        assert_eq!(
            p.command,
            Command::Serve {
                port: 0,
                fast: true,
                workers: Some(2),
                queue: Some(16),
                cache: Some(0),
                port_file: Some("/tmp/serve.addr".into()),
                http_port: None,
                http_port_file: None,
                max_conns: None,
                p99_target_us: None,
                quota: None,
                trace_log: None,
                slow_threshold_us: None
            }
        );
        assert_eq!(p.device, Some(Device::TeslaP100));
        // Positive-only knobs (0 stays meaningful for --cache/--port).
        assert!(parse_args(&args("serve --workers 0")).is_err());
        assert!(parse_args(&args("serve --queue 0")).is_err());
        assert!(parse_args(&args("serve --port abc")).is_err());
        assert!(parse_args(&args("serve --port-file")).is_err());
    }

    #[test]
    fn serve_gateway_and_admission_knobs() {
        let p = parse_args(&args(
            "serve --http-port 0 --http-port-file /tmp/http.addr \
             --max-conns 64 --p99-target 5000 --quota 10/20",
        ))
        .unwrap();
        let Command::Serve {
            http_port,
            http_port_file,
            max_conns,
            p99_target_us,
            quota,
            ..
        } = p.command
        else {
            panic!("expected serve, got {:?}", p.command);
        };
        assert_eq!(http_port, Some(0));
        assert_eq!(http_port_file.as_deref(), Some("/tmp/http.addr"));
        assert_eq!(max_conns, Some(64));
        assert_eq!(p99_target_us, Some(5000));
        assert_eq!(quota, Some((10, 20)));
        // Bare-rate quota: burst defaults to the rate.
        let p = parse_args(&args("serve --quota 7")).unwrap();
        assert!(
            matches!(
                p.command,
                Command::Serve {
                    quota: Some((7, 7)),
                    ..
                }
            ),
            "{:?}",
            p.command
        );
        assert!(parse_args(&args("serve --max-conns 0")).is_err());
        assert!(parse_args(&args("serve --p99-target 0")).is_err());
        assert!(parse_args(&args("serve --quota 0/5")).is_err());
        assert!(parse_args(&args("serve --quota 5/0")).is_err());
        assert!(parse_args(&args("serve --quota ten")).is_err());
        assert!(parse_args(&args("serve --http-port abc")).is_err());
    }

    #[test]
    fn client_requires_addr_and_something_to_do() {
        let p = parse_args(&args("client 127.0.0.1:7070 k.cl --device titan-x")).unwrap();
        assert_eq!(
            p.command,
            Command::Client {
                addr: "127.0.0.1:7070".into(),
                kernel: Some("k.cl".into()),
                stats: false,
                reload: None,
                shutdown: false,
                record: None
            }
        );
        let p = parse_args(&args("client 127.0.0.1:7070 --stats --shutdown")).unwrap();
        assert_eq!(
            p.command,
            Command::Client {
                addr: "127.0.0.1:7070".into(),
                kernel: None,
                stats: true,
                reload: None,
                shutdown: true,
                record: None
            }
        );
        // `--reload` alone is a valid thing to ask of the server.
        let p = parse_args(&args("client 127.0.0.1:7070 --reload m.json")).unwrap();
        assert_eq!(
            p.command,
            Command::Client {
                addr: "127.0.0.1:7070".into(),
                kernel: None,
                stats: false,
                reload: Some("m.json".into()),
                shutdown: false,
                record: None
            }
        );
        let err = parse_args(&args("client")).unwrap_err();
        assert!(err.to_string().contains("server address"), "{err}");
        let err = parse_args(&args("client 127.0.0.1:7070")).unwrap_err();
        assert!(err.to_string().contains("--stats"), "{err}");
        assert!(parse_args(&args("client 127.0.0.1:7070 --reload")).is_err());
    }

    #[test]
    fn client_record_takes_a_trace_path() {
        let p = parse_args(&args(
            "client 127.0.0.1:7070 k.cl --record /tmp/trace.jsonl",
        ))
        .unwrap();
        assert_eq!(
            p.command,
            Command::Client {
                addr: "127.0.0.1:7070".into(),
                kernel: Some("k.cl".into()),
                stats: false,
                reload: None,
                shutdown: false,
                record: Some("/tmp/trace.jsonl".into())
            }
        );
        assert!(parse_args(&args("client 127.0.0.1:7070 k.cl --record")).is_err());
    }

    #[test]
    fn router_needs_backends_and_keeps_their_order() {
        let p = parse_args(&args(
            "router --backend 127.0.0.1:7071 --backend 127.0.0.1:7072=titan-x,tesla-p100 \
             --port 0 --port-file /tmp/router.addr --http-port 0 \
             --http-port-file /tmp/router-http.addr --max-conns 64",
        ))
        .unwrap();
        assert_eq!(
            p.command,
            Command::Router {
                port: 0,
                backends: vec![
                    "127.0.0.1:7071".into(),
                    "127.0.0.1:7072=titan-x,tesla-p100".into()
                ],
                port_file: Some("/tmp/router.addr".into()),
                http_port: Some(0),
                http_port_file: Some("/tmp/router-http.addr".into()),
                max_conns: Some(64),
                trace_log: None,
                slow_threshold_us: None
            }
        );
        // No --backend is a usage error, as is a valueless one.
        let err = parse_args(&args("router")).unwrap_err();
        assert!(err.to_string().contains("--backend"), "{err}");
        assert!(parse_args(&args("router --backend")).is_err());
    }

    #[test]
    fn trace_log_flags_parse_on_serve_and_router() {
        let p = parse_args(&args("serve --trace-log stderr --slow-threshold-us 0")).unwrap();
        assert!(
            matches!(
                &p.command,
                Command::Serve {
                    trace_log: Some(sink),
                    slow_threshold_us: Some(0),
                    ..
                } if sink == "stderr"
            ),
            "{:?}",
            p.command
        );
        let p = parse_args(&args(
            "router --backend 127.0.0.1:7071=titan-x \
             --trace-log /tmp/router-trace.jsonl --slow-threshold-us 2500",
        ))
        .unwrap();
        assert!(
            matches!(
                &p.command,
                Command::Router {
                    trace_log: Some(sink),
                    slow_threshold_us: Some(2500),
                    ..
                } if sink == "/tmp/router-trace.jsonl"
            ),
            "{:?}",
            p.command
        );
        assert!(parse_args(&args("serve --trace-log")).is_err());
        assert!(parse_args(&args("serve --slow-threshold-us many")).is_err());
    }

    #[test]
    fn analyze_check_is_a_bare_flag_but_report_check_takes_a_value() {
        let p = parse_args(&args("analyze --check --json")).unwrap();
        assert_eq!(
            p.command,
            Command::Analyze {
                json: true,
                check: true,
                report: None,
                paths: vec![]
            }
        );
        // `report --check` keeps consuming a baseline path.
        let p = parse_args(&args("report --check base.json")).unwrap();
        assert_eq!(
            p.command,
            Command::Report {
                full: false,
                out: ".".into(),
                check: Some("base.json".into())
            }
        );
    }

    #[test]
    fn analyze_takes_report_and_paths() {
        let p = parse_args(&args(
            "analyze --report ANALYSIS.md crates/ml/src crates/serve/src/protocol.rs",
        ))
        .unwrap();
        assert_eq!(
            p.command,
            Command::Analyze {
                json: false,
                check: false,
                report: Some("ANALYSIS.md".into()),
                paths: vec![
                    "crates/ml/src".into(),
                    "crates/serve/src/protocol.rs".into()
                ]
            }
        );
        assert!(parse_args(&args("analyze --report")).is_err());
    }

    #[test]
    fn train_takes_out_and_fast() {
        let p = parse_args(&args("train --out /tmp/m.json --fast")).unwrap();
        assert_eq!(
            p.command,
            Command::Train {
                out: "/tmp/m.json".into(),
                fast: true
            }
        );
    }
}
