//! End-to-end exit-code contract for `gpufreq analyze`: the CI gate
//! relies on 0 = clean, 1 = findings under `--check`, 2 = usage error,
//! so each code is pinned here against the real binary.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    // crates/cli -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/cli has a grandparent")
        .to_path_buf()
}

fn gpufreq(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_gpufreq"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("spawn gpufreq")
}

fn fixture(rel: &str) -> String {
    format!("crates/analyze/tests/fixtures/{rel}")
}

#[test]
fn check_exits_zero_on_the_clean_tree() {
    let out = gpufreq(&["analyze", "--check"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
}

#[test]
fn check_exits_one_per_known_bad_fixture() {
    for rel in [
        "undocumented_unsafe.rs",
        "unjustified_atomic.rs",
        "core/src/artifact.rs",
        "serve/src/server.rs",
        "serve/src/protocol.rs",
        "stale_allow.rs",
    ] {
        let path = fixture(rel);
        let out = gpufreq(&["analyze", "--check", &path]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{rel} should fail --check; stdout:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn check_exits_zero_when_the_finding_is_suppressed() {
    let path = fixture("suppressed.rs");
    let out = gpufreq(&["analyze", "--check", &path]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("(1 suppressed)"));
}

#[test]
fn without_check_findings_report_but_exit_zero() {
    let path = fixture("undocumented_unsafe.rs");
    let out = gpufreq(&["analyze", &path]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("undocumented-unsafe"), "{stdout}");
}

#[test]
fn json_output_is_machine_readable() {
    let path = fixture("undocumented_unsafe.rs");
    let out = gpufreq(&["analyze", "--json", &path]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.starts_with("{\"files\":1,"), "{stdout}");
    assert!(
        stdout.contains("\"lint\":\"undocumented-unsafe\""),
        "{stdout}"
    );
}

#[test]
fn usage_errors_exit_two() {
    let out = gpufreq(&["analyze", "--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    // This CLI reports usage errors on stdout alongside the help text.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unknown flag"), "{stdout}");
    assert!(stdout.contains("USAGE"), "{stdout}");
}
