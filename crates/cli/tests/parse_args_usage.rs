//! `parse_args` coverage for every subcommand documented in [`USAGE`],
//! including the error paths — so the help text and the parser can
//! never silently drift apart.

use gpufreq_cli::args::{parse_args, ArgError, Command, USAGE};
use gpufreq_sim::Device;

fn args(s: &str) -> Vec<String> {
    s.split_whitespace().map(|x| x.to_string()).collect()
}

fn parsed(s: &str) -> gpufreq_cli::ParsedArgs {
    parse_args(&args(s)).unwrap_or_else(|e| panic!("`{s}` should parse: {e}"))
}

fn rejected(s: &str) -> ArgError {
    match parse_args(&args(s)) {
        Err(e) => e,
        Ok(p) => panic!("`{s}` should be rejected, parsed as {p:?}"),
    }
}

#[test]
fn usage_documents_every_subcommand() {
    // The test below exercises exactly what USAGE advertises; make sure
    // the advertisement itself is complete.
    for cmd in [
        "devices",
        "inspect",
        "train",
        "predict",
        "characterize",
        "evaluate",
    ] {
        assert!(
            USAGE.contains(&format!("gpufreq {cmd}")),
            "USAGE lost `{cmd}`"
        );
    }
}

#[test]
fn devices_line() {
    // USAGE: gpufreq devices
    let p = parsed("devices");
    assert_eq!(p.command, Command::Devices);
    assert_eq!(p.device, None);
    assert_eq!(p.device_or_default(), Device::TitanX);
    assert_eq!(p.settings, 40);
}

#[test]
fn inspect_line() {
    // USAGE: gpufreq inspect <kernel.cl>
    let p = parsed("inspect saxpy.cl");
    assert_eq!(
        p.command,
        Command::Inspect {
            kernel: "saxpy.cl".into()
        }
    );
    let e = rejected("inspect");
    assert!(e.to_string().contains("kernel source path"), "got: {e}");
}

#[test]
fn train_line() {
    // USAGE: gpufreq train [--device <name>] [--settings <n>] [--fast] [--out <model.json>]
    let p = parsed("train");
    assert_eq!(
        p.command,
        Command::Train {
            out: "model.json".into(),
            fast: false
        }
    );

    let p = parsed("train --device tesla-p100 --settings 12 --fast --out /tmp/m.json");
    assert_eq!(
        p.command,
        Command::Train {
            out: "/tmp/m.json".into(),
            fast: true
        }
    );
    assert_eq!(p.device, Some(Device::TeslaP100));
    assert_eq!(p.settings, 12);

    rejected("train --settings");
    rejected("train --settings zero");
    rejected("train --settings 0");
    rejected("train --out");
}

#[test]
fn predict_line() {
    // USAGE: gpufreq predict <kernel.cl> --model <model.json> [--device <name>] [--json]
    let p = parsed("predict k.cl --model m.json");
    assert_eq!(
        p.command,
        Command::Predict {
            kernel: "k.cl".into(),
            model: "m.json".into(),
            json: false
        }
    );

    let p = parsed("predict k.cl --model m.json --device tesla-k20c --json");
    assert_eq!(
        p.command,
        Command::Predict {
            kernel: "k.cl".into(),
            model: "m.json".into(),
            json: true
        }
    );
    assert_eq!(p.device, Some(Device::TeslaK20c));

    let e = rejected("predict k.cl");
    assert!(e.to_string().contains("--model"), "got: {e}");
    rejected("predict --model m.json");
    rejected("predict k.cl --model");
}

#[test]
fn characterize_line() {
    // USAGE: gpufreq characterize <kernel.cl> [--device <name>] [--settings <n>]
    let p = parsed("characterize k.cl --settings 8");
    assert_eq!(
        p.command,
        Command::Characterize {
            kernel: "k.cl".into()
        }
    );
    assert_eq!(p.settings, 8);
    rejected("characterize");
}

#[test]
fn evaluate_line() {
    // USAGE: gpufreq evaluate --model <model.json> [--device <name>]
    let p = parsed("evaluate --model m.json --device tesla-p100");
    assert_eq!(
        p.command,
        Command::Evaluate {
            model: "m.json".into()
        }
    );
    assert_eq!(p.device, Some(Device::TeslaP100));

    let e = rejected("evaluate");
    assert!(e.to_string().contains("--model"), "got: {e}");
}

#[test]
fn every_documented_device_is_accepted() {
    // USAGE: DEVICES: titan-x (default), tesla-p100, tesla-k20c
    for device in Device::all() {
        assert!(USAGE.contains(device.id()), "USAGE lost `{device}`");
        let p = parsed(&format!("devices --device {device}"));
        assert_eq!(p.device, Some(device));
    }
    let e = rejected("devices --device gtx-9000");
    assert!(
        e.to_string().contains("unknown device `gtx-9000`"),
        "got: {e}"
    );
    assert!(
        e.to_string().contains("titan-x, tesla-p100, tesla-k20c"),
        "got: {e}"
    );
    rejected("devices --device");
}

#[test]
fn help_flag_wins_everywhere() {
    // USAGE: --help  show this text
    for line in ["--help", "-h", "devices --help", "--help frobnicate"] {
        assert_eq!(parsed(line).command, Command::Help, "for `{line}`");
    }
}

#[test]
fn malformed_lines_are_rejected() {
    rejected("");
    rejected("frobnicate");
    rejected("devices --frobnicate");
    rejected("devices --device"); // flag at end without value
}
