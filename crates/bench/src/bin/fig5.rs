//! Figure 5: measured speedup vs normalized energy for eight selected
//! benchmarks under every frequency configuration, grouped by memory
//! domain.
//!
//! Regenerates the characterization analysis of §4.2: the top row
//! (k-NN, AES, Matrix Multiply, Convolution) is compute-dominated and
//! spreads widely along the speedup axis; the bottom row (Median
//! Filter, Bit Compression, MT, Blackscholes) is memory-dominated and
//! collapses toward vertical clusters.

use gpufreq_bench::report::{render::render_section_text, section_fig5};
use gpufreq_bench::write_artifact;
use gpufreq_sim::{Device, MemDomain};
use std::fmt::Write as _;

/// The eight benchmarks shown in Fig. 5, top row first.
const SELECTION: [&str; 8] = [
    "knn",
    "aes",
    "matmul",
    "convolution",
    "median",
    "bitcompression",
    "mt",
    "blackscholes",
];

fn main() {
    let engine = gpufreq_bench::engine();
    let sim = Device::TitanX.simulator();
    // All eight ground-truth sweeps fan out on the engine; the
    // index-ordered merge keeps the printed panels in SELECTION order.
    let inner_sim = sim.clone().with_jobs(engine.inner(SELECTION.len()).jobs());
    let characterizations = engine.map(&SELECTION, |name| {
        let workload = gpufreq_workloads::workload(name).expect("known workload");
        let characterization = inner_sim.characterize(&workload.profile());
        (workload, characterization)
    });
    for (name, (workload, characterization)) in SELECTION.iter().zip(&characterizations) {
        println!("=== Figure 5: {} ===", workload.display_name);
        let mut csv = String::from("mem_mhz,core_mhz,speedup,normalized_energy\n");
        for domain in MemDomain::ALL.iter().rev() {
            let mem = domain.titan_x_mhz();
            let pts: Vec<_> = characterization
                .points
                .iter()
                .filter(|p| p.config().mem_mhz == mem)
                .collect();
            let (s_lo, s_hi) = min_max(pts.iter().map(|p| p.speedup));
            let (e_lo, e_hi) = min_max(pts.iter().map(|p| p.norm_energy));
            println!(
                "  {:6}: speedup [{:.3}, {:.3}] (spread {:.3}) | energy [{:.3}, {:.3}] (spread {:.3})",
                domain.label(),
                s_lo,
                s_hi,
                s_hi - s_lo,
                e_lo,
                e_hi,
                e_hi - e_lo
            );
            for p in pts {
                let _ = writeln!(
                    csv,
                    "{},{},{},{}",
                    mem,
                    p.config().core_mhz,
                    p.speedup,
                    p.norm_energy
                );
            }
        }
        // Character summary: spread along speedup distinguishes the
        // compute-dominated (top) from memory-dominated (bottom) codes.
        let (s_lo, s_hi) = min_max(
            characterization
                .points
                .iter()
                .filter(|p| p.config().mem_mhz >= 3304)
                .map(|p| p.speedup),
        );
        let character = if s_hi - s_lo > 0.7 {
            "compute-dominated"
        } else {
            "memory-dominated"
        };
        println!(
            "  high-mem speedup spread {:.3} -> {character}\n",
            s_hi - s_lo
        );
        write_artifact(&format!("fig5/{name}.csv"), &csv);
    }
    // The eight characterizations scored against the paper's
    // compute/memory grouping, exactly as `gpufreq report` embeds them.
    let items: Vec<_> = characterizations.iter().map(|(w, c)| (w, c)).collect();
    print!("{}", render_section_text(&section_fig5(&items)));
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}
