//! Diagnostic: per-domain head capacity — linear vs RBF speedup heads
//! on the mem-H domain. Not part of the paper's experiment set, so it
//! carries no `gpufreq report` section and prints no paper-vs-repro
//! delta table — the scored reproduction lives in `REPRODUCTION.md`
//! (see `gpufreq_bench::report`).

use gpufreq_core::build_training_data_with;
use gpufreq_kernel::FeatureVector;
use gpufreq_ml::scale::MinMaxScaler;
use gpufreq_ml::{rmse_percent, train_ols, train_svr, Dataset, SvmKernel, SvrParams};
use gpufreq_sim::Device;

fn main() {
    let engine = gpufreq_bench::engine();
    let sim = Device::TitanX.simulator();
    let benches = gpufreq_synth::generate_all();
    let data = build_training_data_with(&engine, &sim, &benches, 40);
    let scaler = MinMaxScaler::fit(data.speedup.xs());

    // mem-H slice of the corpus.
    let mut train = Dataset::new();
    for (i, cfg) in data.row_configs.iter().enumerate() {
        if cfg.mem_mhz == 3505 {
            let (x, y) = data.speedup.sample(i);
            train.push(scaler.transform(x), y);
        }
    }
    eprintln!("mem-H training slice: {} samples", train.len());

    // Test: the 12 workloads over all mem-H configs, swept on the
    // engine and flattened in workload order.
    let workloads = gpufreq_workloads::all_workloads();
    let inner_sim = sim.clone().with_jobs(engine.inner(workloads.len()).jobs());
    let mut test_rows = Vec::new();
    let mut test_truth = Vec::new();
    let swept = engine.map(&workloads, |w| {
        let profile = w.profile();
        let features = profile.static_features();
        let c =
            inner_sim.characterize_at(&profile, &inner_sim.spec().clocks.actual_configs_for(3505));
        (features, c)
    });
    for (features, c) in &swept {
        for p in &c.points {
            let row = FeatureVector::new(features, p.config()).as_slice().to_vec();
            test_rows.push(scaler.transform(&row));
            test_truth.push(p.speedup);
        }
    }

    let ols = train_ols(&train);
    println!(
        "OLS        train RMSE%={:<7.2} test RMSE%={:<7.2}",
        rmse_percent(train.ys(), &ols.predict_batch(train.xs())),
        rmse_percent(&test_truth, &ols.predict_batch(&test_rows))
    );

    for (name, kernel, c) in [
        ("SVR-linear", SvmKernel::Linear, 1000.0),
        ("SVR-rbf g=0.1", SvmKernel::Rbf { gamma: 0.1 }, 1000.0),
        ("SVR-rbf g=1", SvmKernel::Rbf { gamma: 1.0 }, 1000.0),
        ("SVR-rbf g=4", SvmKernel::Rbf { gamma: 4.0 }, 1000.0),
        ("SVR-rbf g=1 C=100", SvmKernel::Rbf { gamma: 1.0 }, 100.0),
    ] {
        let params = SvrParams {
            c,
            kernel,
            ..SvrParams::paper_speedup()
        };
        let start = std::time::Instant::now();
        let model = train_svr(&train, &params);
        println!(
            "{name:<18} iters={:<8} train RMSE%={:<7.2} test RMSE%={:<7.2} ({:.0}s)",
            model.iterations(),
            rmse_percent(train.ys(), &model.predict_batch(train.xs())),
            rmse_percent(&test_truth, &model.predict_batch(&test_rows)),
            start.elapsed().as_secs_f64(),
        );
    }
}
