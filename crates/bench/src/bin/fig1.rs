//! Figure 1: speedup and normalized energy of k-NN and MT as a function
//! of the core frequency, one series per memory domain, plus the
//! combined objective-space view.
//!
//! Regenerates the motivational curves of §1.1: k-NN speeds up almost
//! linearly with the core clock while MT is flat; normalized energy is
//! parabolic with an interior minimum for k-NN and rises with the core
//! clock for MT.

use gpufreq_bench::report::{render::render_section_text, section_fig1};
use gpufreq_bench::{engine, write_artifact};
use gpufreq_core::series_csv;
use gpufreq_sim::{Device, MemDomain};

fn main() {
    let engine = engine();
    let sim = Device::TitanX.simulator();
    // Characterize both workloads concurrently on the engine; results
    // come back in input order, so the printed figures never reorder.
    let names = ["knn", "mt"];
    let inner_sim = sim.clone().with_jobs(engine.inner(names.len()).jobs());
    let characterizations = engine.map(&names, |name| {
        let workload = gpufreq_workloads::workload(name).expect("known workload");
        let characterization = inner_sim.characterize(&workload.profile());
        (workload, characterization)
    });
    for (workload, characterization) in &characterizations {
        println!("=== Figure 1: {} ===", workload.display_name);
        for domain in MemDomain::ALL.iter().rev() {
            let mem = domain.titan_x_mhz();
            let mut speedup_series = Vec::new();
            let mut energy_series = Vec::new();
            for p in &characterization.points {
                if p.config().mem_mhz == mem {
                    speedup_series.push((p.config().core_mhz as f64, p.speedup));
                    energy_series.push((p.config().core_mhz as f64, p.norm_energy));
                }
            }
            speedup_series.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            energy_series.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let (min_s, max_s) = min_max(speedup_series.iter().map(|p| p.1));
            let (min_e, max_e) = min_max(energy_series.iter().map(|p| p.1));
            let min_e_at = energy_series
                .iter()
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|p| p.0)
                .unwrap_or(0.0);
            println!(
                "  {:6} ({:4} MHz): {:2} pts | speedup {:.3}..{:.3} | energy {:.3}..{:.3} (min at {:.0} MHz core)",
                domain.label(),
                mem,
                speedup_series.len(),
                min_s,
                max_s,
                min_e,
                max_e,
                min_e_at
            );
            write_artifact(
                &format!("fig1/{}_{}_speedup.csv", workload.name, domain.label()),
                &series_csv(("core_mhz", "speedup"), &speedup_series),
            );
            write_artifact(
                &format!("fig1/{}_{}_energy.csv", workload.name, domain.label()),
                &series_csv(("core_mhz", "normalized_energy"), &energy_series),
            );
        }
        // The default configuration sits at speedup = energy = 1.
        println!(
            "  default {} -> time {:.3} ms, {:.1} W",
            sim.spec().clocks.default,
            characterization.baseline.time_ms,
            characterization.baseline.avg_power_w
        );
        println!();
    }
    // The same data scored against the paper, exactly as `gpufreq
    // report` embeds it.
    print!(
        "{}",
        render_section_text(&section_fig1(
            &characterizations[0].1,
            &characterizations[1].1
        ))
    );
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}
