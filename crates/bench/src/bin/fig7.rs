//! Figure 7: per-memory-domain prediction error of the *normalized
//! energy* model on the twelve test benchmarks (the paper reports
//! RMSE 7.82 / 5.65 / 12.85 / 15.10 % for Mem_H / h / l / L).

use gpufreq_bench::{engine, paper_model, write_artifact};
use gpufreq_core::{error_analysis, evaluate_all_with, render_error_panel, Objective};
use gpufreq_sim::Device;

fn main() {
    let sim = Device::TitanX.simulator();
    let model = paper_model(&sim);
    let workloads = gpufreq_workloads::all_workloads();
    let evals = evaluate_all_with(&engine(), &sim, &model, &workloads);
    let analysis = error_analysis(&sim, &model, &evals, Objective::Energy);
    println!("=== Figure 7: prediction error of normalized energy ===\n");
    for domain in &analysis {
        println!("{}", render_error_panel(domain, "normalized energy"));
    }
    let json = serde_json::to_string_pretty(&analysis).expect("serializable");
    write_artifact("fig7/energy_errors.json", &json);
    println!("RMSE summary (paper: Mem_H 7.82%, Mem_h 5.65%, Mem_l 12.85%, Mem_L 15.10%):");
    for domain in &analysis {
        println!("  {:6} RMSE = {:.2}%", domain.label, domain.rmse_percent);
    }
}
