//! Figure 7: per-memory-domain prediction error of the *normalized
//! energy* model on the twelve test benchmarks (the paper reports
//! RMSE 7.82 / 5.65 / 12.85 / 15.10 % for Mem_H / h / l / L).

use gpufreq_bench::report::{render::render_section_text, section_fig7};
use gpufreq_bench::{engine, paper_model, write_artifact};
use gpufreq_core::{error_analysis, evaluate_all_with, render_error_panel, Objective};
use gpufreq_sim::Device;

fn main() {
    let sim = Device::TitanX.simulator();
    let model = paper_model(&sim);
    let workloads = gpufreq_workloads::all_workloads();
    let evals = evaluate_all_with(&engine(), &sim, &model, &workloads);
    let analysis = error_analysis(&sim, &model, &evals, Objective::Energy);
    println!("=== Figure 7: prediction error of normalized energy ===\n");
    for domain in &analysis {
        println!("{}", render_error_panel(domain, "normalized energy"));
    }
    let json = serde_json::to_string_pretty(&analysis).expect("serializable");
    write_artifact("fig7/energy_errors.json", &json);
    // The per-domain RMSEs scored against the paper's captions,
    // exactly as `gpufreq report` embeds them.
    print!("{}", render_section_text(&section_fig7(&analysis)));
}
