//! Table 2: evaluation of the predicted Pareto fronts — binary
//! hypervolume coverage difference `D(P*, P′)`, set cardinalities, and
//! extreme-point distances, sorted by coverage difference.

use gpufreq_bench::report::{render::render_section_text, section_table2};
use gpufreq_bench::{engine, paper_model, write_artifact};
use gpufreq_core::{evaluate_all_with, render_table2, table2, table2_csv};
use gpufreq_sim::Device;

fn main() {
    let sim = Device::TitanX.simulator();
    let model = paper_model(&sim);
    let workloads = gpufreq_workloads::all_workloads();
    let evals = evaluate_all_with(&engine(), &sim, &model, &workloads);
    let rows = table2(&evals);
    println!("=== Table 2: evaluation of predicted Pareto fronts ===\n");
    println!("{}", render_table2(&rows));
    // The paper's accompanying headline numbers.
    let exact_speedup = evals
        .iter()
        .filter(|e| e.extreme_max_speedup.is_exact(1e-9))
        .count();
    let exact_energy = evals
        .iter()
        .filter(|e| e.extreme_min_energy.is_exact(1e-9))
        .count();
    let good = rows.iter().filter(|r| r.coverage_d <= 0.0362).count();
    println!("max-speedup extreme predicted exactly: {exact_speedup}/12 (paper: 7/12)");
    println!("min-energy extreme predicted exactly:  {exact_energy}/12");
    println!(
        "benchmarks with good Pareto approximation (D <= 0.0362): {good}/12 (paper: 10-11/12)"
    );
    let json = serde_json::to_string_pretty(&rows).expect("serializable");
    write_artifact("table2/rows.json", &json);
    write_artifact("table2/rows.csv", &table2_csv(&rows));
    // The table scored against the paper's headline counts, exactly as
    // `gpufreq report` embeds it.
    print!("{}", render_section_text(&section_table2(&evals)));
}
