//! Figure 4: supported memory/core frequency combinations of the GTX
//! Titan X (4a) and the Tesla P100 (4b), including the NVML quirk
//! where advertised core clocks above 1202 MHz silently clamp (the
//! "gray points"), and the default configuration marker.

use gpufreq_bench::report::{render::render_section_text, section_fig4};
use gpufreq_bench::{fig4_csv, write_artifact};
use gpufreq_core::ascii_table;
use gpufreq_sim::{Device, NvmlDevice};

fn main() {
    for spec in [Device::TitanX.spec(), Device::TeslaP100.spec()] {
        let nvml = NvmlDevice::new(spec.clone());
        println!("=== Figure 4: {} ===", nvml.device_get_name());
        let default = spec.clocks.default;
        let mut rows = Vec::new();
        // The CSV artifact is the shared deterministic generator the
        // golden regression tests snapshot (tests/golden.rs).
        let csv = fig4_csv(&spec);
        for mem in nvml.device_get_supported_memory_clocks() {
            let advertised = nvml
                .device_get_supported_graphics_clocks(mem)
                .expect("supported");
            let domain = spec.clocks.domain(mem).expect("domain exists");
            let actual = domain.actual_core_mhz();
            let clamped = advertised
                .iter()
                .filter(|&&c| domain.effective_core(c) != c)
                .count();
            rows.push(vec![
                mem.to_string(),
                advertised.len().to_string(),
                actual.len().to_string(),
                clamped.to_string(),
                format!("{}..{}", actual.first().unwrap(), actual.last().unwrap()),
                if default.mem_mhz == mem {
                    format!("core {}", default.core_mhz)
                } else {
                    "-".to_string()
                },
            ]);
        }
        println!(
            "{}",
            ascii_table(
                &[
                    "mem MHz",
                    "advertised",
                    "actual",
                    "clamped (gray)",
                    "core range",
                    "default"
                ],
                &rows
            )
        );
        let total_adv: usize = spec
            .clocks
            .domains
            .iter()
            .map(|d| d.advertised_core_mhz.len())
            .sum();
        let total_actual = spec.clocks.actual_configs().len();
        println!(
            "total: {} advertised configurations, {} actually settable\n",
            total_adv, total_actual
        );
        let file = if spec.name.contains("Titan") {
            "fig4/titan_x.csv"
        } else {
            "fig4/tesla_p100.csv"
        };
        write_artifact(file, &csv);
    }
    // Both clock tables scored against the paper, exactly as `gpufreq
    // report` embeds them.
    print!("{}", render_section_text(&section_fig4()));
}
