//! §3.3 cost accounting: why the training phase samples 40 settings.
//!
//! The paper reports that measuring one micro-benchmark at 40 settings
//! takes ~20 minutes and at all 174 settings ~70 minutes, making
//! exhaustive search impractical across many applications. This binary
//! reproduces that accounting with the simulator's wall-clock model
//! (clock-switch settling + enough repetitions for a statistically
//! consistent 62.5 Hz power average).

use gpufreq_bench::report::{render::render_section_text, section_sweepcost};
use gpufreq_core::ascii_table;
use gpufreq_sim::Device;

fn main() {
    let engine = gpufreq_bench::engine();
    let sim = Device::TitanX.simulator();
    let bench = &gpufreq_synth::generate_all()[40]; // a mid-intensity micro-benchmark
    let profile = bench.profile();
    println!(
        "=== Sweep cost accounting (micro-benchmark {}) ===\n",
        bench.name
    );
    // The four sweep sizes are independent; fan them out on the engine
    // (row order is the input order, so the table never reorders).
    // The last sweep is the exhaustive one — sized from the clock
    // table itself so this binary and `gpufreq report` always account
    // the same sweep even if the table changes.
    let exhaustive = sim.spec().clocks.actual_configs().len();
    let sizes = [10usize, 40, 80, exhaustive];
    let inner_sim = sim.clone().with_jobs(engine.inner(sizes.len()).jobs());
    let costs: Vec<(usize, f64)> = engine.map(&sizes, |&n| {
        let configs = inner_sim.spec().clocks.sample_configs(n);
        let characterization = inner_sim.characterize_at(&profile, &configs);
        (configs.len(), characterization.sim_wall_s() / 60.0)
    });
    let rows: Vec<Vec<String>> = costs
        .iter()
        .map(|&(settings, minutes)| {
            vec![
                settings.to_string(),
                format!("{minutes:.1}"),
                format!("{:.1}", minutes * 60.0 / settings as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["settings", "simulated minutes", "seconds/setting"], &rows)
    );
    println!("paper: 40 settings = 20 min, 174 settings = 70 min per benchmark");
    println!("=> exhaustive search over 106 training codes would take days; sampling is required");
    // The accounting scored against §3.3, exactly as `gpufreq report`
    // embeds it.
    let minutes_at = |target: usize| {
        costs
            .iter()
            .find(|&&(n, _)| n == target)
            .map(|&(_, m)| m)
            .expect("swept size")
    };
    print!(
        "{}",
        render_section_text(&section_sweepcost(
            minutes_at(40),
            minutes_at(exhaustive),
            exhaustive
        ))
    );
}
