//! §3.3 cost accounting: why the training phase samples 40 settings.
//!
//! The paper reports that measuring one micro-benchmark at 40 settings
//! takes ~20 minutes and at all 174 settings ~70 minutes, making
//! exhaustive search impractical across many applications. This binary
//! reproduces that accounting with the simulator's wall-clock model
//! (clock-switch settling + enough repetitions for a statistically
//! consistent 62.5 Hz power average).

use gpufreq_core::ascii_table;
use gpufreq_sim::Device;

fn main() {
    let engine = gpufreq_bench::engine();
    let sim = Device::TitanX.simulator();
    let bench = &gpufreq_synth::generate_all()[40]; // a mid-intensity micro-benchmark
    let profile = bench.profile();
    println!(
        "=== Sweep cost accounting (micro-benchmark {}) ===\n",
        bench.name
    );
    // The four sweep sizes are independent; fan them out on the engine
    // (row order is the input order, so the table never reorders).
    let sizes = [10usize, 40, 80, 177];
    let inner_sim = sim.clone().with_jobs(engine.inner(sizes.len()).jobs());
    let rows: Vec<Vec<String>> = engine.map(&sizes, |&n| {
        let configs = inner_sim.spec().clocks.sample_configs(n);
        let characterization = inner_sim.characterize_at(&profile, &configs);
        let minutes = characterization.sim_wall_s() / 60.0;
        vec![
            configs.len().to_string(),
            format!("{:.1}", minutes),
            format!(
                "{:.1}",
                characterization.sim_wall_s() / configs.len() as f64
            ),
        ]
    });
    println!(
        "{}",
        ascii_table(&["settings", "simulated minutes", "seconds/setting"], &rows)
    );
    println!("paper: 40 settings = 20 min, 174 settings = 70 min per benchmark");
    println!("=> exhaustive search over 106 training codes would take days; sampling is required");
}
