//! Figure 6: per-memory-domain prediction error of the *speedup* model
//! on the twelve test benchmarks — box statistics per benchmark and
//! pooled RMSE per domain (the paper reports 6.68 / 7.10 / 11.13 /
//! 9.09 % for Mem_H / h / l / L).

use gpufreq_bench::report::{render::render_section_text, section_fig6};
use gpufreq_bench::{engine, paper_model, write_artifact};
use gpufreq_core::{error_analysis, evaluate_all_with, render_error_panel, Objective};
use gpufreq_sim::Device;

fn main() {
    let sim = Device::TitanX.simulator();
    let model = paper_model(&sim);
    let workloads = gpufreq_workloads::all_workloads();
    let evals = evaluate_all_with(&engine(), &sim, &model, &workloads);
    let analysis = error_analysis(&sim, &model, &evals, Objective::Speedup);
    println!("=== Figure 6: prediction error of speedup ===\n");
    for domain in &analysis {
        println!("{}", render_error_panel(domain, "speedup"));
    }
    let json = serde_json::to_string_pretty(&analysis).expect("serializable");
    write_artifact("fig6/speedup_errors.json", &json);
    // The per-domain RMSEs scored against the paper's captions,
    // exactly as `gpufreq report` embeds them.
    print!("{}", render_section_text(&section_fig6(&analysis)));
}
