//! Figure 8: predicted Pareto set vs real Pareto front for all twelve
//! test benchmarks — the red crosses (predicted configurations at their
//! measured objectives) against the blue front (measured optimum) and
//! the default configuration (black cross at (1, 1)).

use gpufreq_bench::report::{render::render_section_text, section_fig8};
use gpufreq_bench::{engine, paper_model, write_artifact};
use gpufreq_core::{evaluate_all_with, objectives_csv};
use gpufreq_sim::Device;
use std::fmt::Write as _;

fn main() {
    let sim = Device::TitanX.simulator();
    let model = paper_model(&sim);
    let workloads = gpufreq_workloads::all_workloads();
    let evals = evaluate_all_with(&engine(), &sim, &model, &workloads);
    println!("=== Figure 8: predicted vs real Pareto fronts ===\n");
    for eval in &evals {
        println!(
            "--- {} (coverage difference D = {:.4}) ---",
            eval.display_name, eval.coverage_d
        );
        println!("  real front ({} points):", eval.real_front.len());
        for p in &eval.real_front {
            println!("    speedup {:.3}, energy {:.3}", p.speedup, p.energy);
        }
        println!(
            "  predicted set ({} points, measured objectives):",
            eval.predicted_measured.len()
        );
        let mut pred_csv = String::from("mem_mhz,core_mhz,speedup,normalized_energy,heuristic\n");
        for (point, measured) in eval
            .prediction
            .pareto_set
            .iter()
            .zip(&eval.predicted_measured)
        {
            println!(
                "    {} -> speedup {:.3}, energy {:.3}{}",
                point.config,
                measured.speedup,
                measured.energy,
                if point.heuristic {
                    "  [mem-L heuristic]"
                } else {
                    ""
                }
            );
            let _ = writeln!(
                pred_csv,
                "{},{},{},{},{}",
                point.config.mem_mhz,
                point.config.core_mhz,
                measured.speedup,
                measured.energy,
                point.heuristic as u8
            );
        }
        let mp = gpufreq_core::evaluate::misprediction_analysis(eval, 0.02);
        println!(
            "  misprediction: {} true / {} false members, {} front points missed, {} speedup overestimates, {} energy underestimates",
            mp.true_members, mp.false_members, mp.missed, mp.speedup_overestimates, mp.energy_underestimates
        );
        println!(
            "  strictly dominates default: {}; offers >=5% trade-off: {}\n",
            if eval.improves_on_default() {
                "yes"
            } else {
                "no"
            },
            if eval.offers_trade_off(0.05) {
                "yes"
            } else {
                "no"
            }
        );
        write_artifact(
            &format!("fig8/{}_real_front.csv", eval.name),
            &objectives_csv(&eval.real_front),
        );
        write_artifact(&format!("fig8/{}_predicted.csv", eval.name), &pred_csv);
    }
    let dominating = evals.iter().filter(|e| e.improves_on_default()).count();
    let trading = evals.iter().filter(|e| e.offers_trade_off(0.05)).count();
    println!("summary: strict dominance over the default for {dominating}/12 benchmarks;");
    println!("         >=5% energy/performance trade-offs discovered for {trading}/12 benchmarks");
    // The fronts scored against the paper's headline, exactly as
    // `gpufreq report` embeds them.
    print!("{}", render_section_text(&section_fig8(&evals)));
}
