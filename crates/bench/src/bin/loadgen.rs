//! `loadgen` — the load-generator harness for the `gpufreq serve`
//! daemon.
//!
//! Replays a configurable mix of the 12 application kernels plus a
//! slice of the synthetic corpus against a running server and prints a
//! throughput/latency table. Two mixes matter:
//!
//! * `repeated` — a fixed set of kernels cycled forever: after the
//!   first pass every request is a front-cache hit, measuring the
//!   served fast path;
//! * `unique` — every request is a never-seen-before source (a unique
//!   comment stamp defeats both caches without changing the analysis
//!   cost), measuring the full parse → analyze → SVR-scan path.
//!
//! With `--mix both` (the default) it runs `unique` first, then
//! `repeated`, and prints the cache speedup ratio between them;
//! `--min-cache-speedup <x>` turns that ratio into an exit-code
//! assertion — the CI smoke job requires ≥ 10×. `--min-unique-rps <n>`
//! gates the uncached path the same way: the unique mix must sustain at
//! least `n` req/s, pinning the batched-scoring cold-path throughput.
//!
//! Each client keeps a window of `--pipeline` requests in flight on
//! its connection (the server answers strictly in request order, so
//! pipelining is safe by contract) — without it, loopback round-trip
//! time, not the server, would bound the cached path.
//!
//! With `--http` the same mixes are driven through the HTTP/1.1
//! gateway instead (`--addr` then names the HTTP port): pipelined
//! keep-alive `POST /predict` requests, stats via `GET /stats`. The
//! gateway deliberately has no shutdown route, so `--http --shutdown`
//! is rejected — drain the daemon through the line-protocol port.
//!
//! With `--router` the target is a `gpufreq router` process instead of
//! a daemon: the run additionally asserts the stats snapshot carries
//! the router's own aggregation section (proof the traffic really went
//! through the scale-out tier), and `--baseline-unique-rps <x>` +
//! `--min-scaling <r>` turn the unique-mix throughput into a scaling
//! gate — the run must sustain at least `r` times the recorded
//! single-backend baseline. CI measures 1 backend first, then gates a
//! 4-backend router run against that number.
//!
//! With `--trace` the run finishes with an observability probe: one
//! predict carrying a freshly minted trace id (the `"trace"` request
//! field on the line protocol, the `x-gpufreq-trace` header over HTTP)
//! whose echo proves end-to-end propagation, followed by a `/metrics`
//! scrape whose per-stage latency histograms are printed as a
//! server-attributed breakdown — where the server itself says the time
//! went, as opposed to the client-side round-trip numbers above.
//!
//! All wire framing comes from `gpufreq_serve::codec` — the same
//! helpers the CLI client and the router's backend connections use, so
//! the generator cannot drift from the protocol.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7070 [--duration 5s] [--clients 4]
//!         [--pipeline 8] [--mix repeated|unique|both] [--device titan-x]
//!         [--min-cache-speedup 10] [--min-unique-rps 500] [--http]
//!         [--router] [--baseline-unique-rps <x>] [--min-scaling <r>]
//!         [--trace] [--shutdown]
//! ```

use gpufreq_core::ascii_table;
use gpufreq_obs::expo::Family;
use gpufreq_serve::codec::{http_get, http_post, read_http_body};
use gpufreq_serve::http::{Route, TRACE_HEADER};
use gpufreq_serve::{render_stats_table, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mix {
    Repeated,
    Unique,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::Repeated => "repeated",
            Mix::Unique => "unique",
        }
    }
}

#[derive(Debug)]
struct Options {
    addr: String,
    duration: Duration,
    clients: usize,
    pipeline: usize,
    mixes: Vec<Mix>,
    device: String,
    min_cache_speedup: Option<f64>,
    min_unique_rps: Option<f64>,
    http: bool,
    router: bool,
    baseline_unique_rps: Option<f64>,
    min_scaling: Option<f64>,
    trace: bool,
    shutdown: bool,
}

fn usage() -> String {
    "usage: loadgen --addr <host:port> [--duration 5s] [--clients 4] \
     [--pipeline 8] [--mix repeated|unique|both] [--device titan-x] \
     [--min-cache-speedup <x>] [--min-unique-rps <n>] [--http] \
     [--router] [--baseline-unique-rps <x>] [--min-scaling <r>] \
     [--trace] [--shutdown]"
        .to_string()
}

fn parse_duration(s: &str) -> Result<Duration, String> {
    let (number, unit): (&str, &str) = match s.find(|c: char| !c.is_ascii_digit() && c != '.') {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, "s"),
    };
    let value: f64 = number
        .parse()
        .map_err(|_| format!("invalid duration `{s}`"))?;
    let seconds = match unit {
        "ms" => value / 1000.0,
        "s" => value,
        "m" => value * 60.0,
        other => return Err(format!("invalid duration unit `{other}` in `{s}`")),
    };
    if seconds.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(format!("duration `{s}` must be positive"));
    }
    Ok(Duration::from_secs_f64(seconds))
}

fn parse_args() -> Result<Options, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut duration = Duration::from_secs(5);
    let mut clients = 4usize;
    let mut pipeline = 8usize;
    let mut mixes = vec![Mix::Unique, Mix::Repeated];
    let mut device = "titan-x".to_string();
    let mut min_cache_speedup = None;
    let mut min_unique_rps = None;
    let mut http = false;
    let mut router = false;
    let mut baseline_unique_rps = None;
    let mut min_scaling = None;
    let mut trace = false;
    let mut shutdown = false;
    let mut it = argv.iter();
    let next_value = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
        it.next()
            .map(|s| s.to_string())
            .ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(next_value("--addr", &mut it)?),
            "--duration" => duration = parse_duration(&next_value("--duration", &mut it)?)?,
            "--clients" => {
                clients = next_value("--clients", &mut it)?
                    .parse()
                    .map_err(|_| "invalid --clients value".to_string())?;
                if clients == 0 {
                    return Err("--clients must be positive".into());
                }
            }
            "--pipeline" => {
                pipeline = next_value("--pipeline", &mut it)?
                    .parse()
                    .map_err(|_| "invalid --pipeline value".to_string())?;
                if pipeline == 0 {
                    return Err("--pipeline must be positive".into());
                }
            }
            "--mix" => {
                mixes = match next_value("--mix", &mut it)?.as_str() {
                    "repeated" => vec![Mix::Repeated],
                    "unique" => vec![Mix::Unique],
                    "both" => vec![Mix::Unique, Mix::Repeated],
                    other => return Err(format!("invalid --mix `{other}`")),
                }
            }
            "--device" => device = next_value("--device", &mut it)?,
            "--min-cache-speedup" => {
                min_cache_speedup = Some(
                    next_value("--min-cache-speedup", &mut it)?
                        .parse()
                        .map_err(|_| "invalid --min-cache-speedup value".to_string())?,
                )
            }
            "--min-unique-rps" => {
                min_unique_rps = Some(
                    next_value("--min-unique-rps", &mut it)?
                        .parse()
                        .map_err(|_| "invalid --min-unique-rps value".to_string())?,
                )
            }
            "--http" => http = true,
            "--router" => router = true,
            "--baseline-unique-rps" => {
                baseline_unique_rps = Some(
                    next_value("--baseline-unique-rps", &mut it)?
                        .parse()
                        .map_err(|_| "invalid --baseline-unique-rps value".to_string())?,
                )
            }
            "--min-scaling" => {
                min_scaling = Some(
                    next_value("--min-scaling", &mut it)?
                        .parse()
                        .map_err(|_| "invalid --min-scaling value".to_string())?,
                )
            }
            "--trace" => trace = true,
            "--shutdown" => shutdown = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if http && shutdown {
        return Err("the HTTP gateway has no shutdown route; \
                    use --shutdown against the line-protocol port"
            .into());
    }
    if min_scaling.is_some() && baseline_unique_rps.is_none() {
        return Err("--min-scaling needs --baseline-unique-rps (the recorded \
                    single-backend unique-mix req/s)"
            .into());
    }
    Ok(Options {
        addr: addr.ok_or(format!("--addr is required\n{}", usage()))?,
        duration,
        clients,
        pipeline,
        mixes,
        device,
        min_cache_speedup,
        min_unique_rps,
        http,
        router,
        baseline_unique_rps,
        min_scaling,
        trace,
        shutdown,
    })
}

/// The replayed kernel pool: the 12 application benchmarks plus every
/// ninth synthetic micro-benchmark (12 of the 106), the mix named by
/// the issue — real workloads dominating, synthetics keeping the
/// instruction-pattern spread wide.
fn kernel_pool() -> Vec<String> {
    let mut pool: Vec<String> = gpufreq_workloads::all_workloads()
        .into_iter()
        .map(|w| w.source)
        .collect();
    pool.extend(
        gpufreq_synth::generate_all()
            .into_iter()
            .step_by(9)
            .map(|b| b.source),
    );
    pool
}

#[derive(Debug)]
struct MixOutcome {
    mix: Mix,
    requests: u64,
    ok: u64,
    errors: u64,
    elapsed_s: f64,
    rps: f64,
}

/// Monotone stamp making every `unique`-mix source globally fresh.
static UNIQUE_STAMP: AtomicU64 = AtomicU64::new(0);

fn run_client(
    opts: &Options,
    mix: Mix,
    pool: &[String],
    deadline: Instant,
) -> Result<(u64, u64), String> {
    let addr = opts.addr.as_str();
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let mut writer = std::io::BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    // Responses are ~25 KB lines, often several per batch: an 8 KB
    // default buffer would cost a handful of reads per response.
    let mut reader = BufReader::with_capacity(256 * 1024, stream);
    // The repeated mix replays a fixed recorded stream: encode each
    // request — protocol line or framed HTTP POST — once, outside the
    // hot loop. (The unique mix stamps every request fresh and never
    // touches this.)
    let recorded: Vec<String> = match mix {
        Mix::Repeated => pool
            .iter()
            .map(|source| {
                let body = Request::Predict {
                    device: opts.device.clone(),
                    source: source.clone(),
                }
                .to_json();
                if opts.http {
                    http_post(Route::Predict.as_str(), &body)
                } else {
                    body + "\n"
                }
            })
            .collect(),
        Mix::Unique => Vec::new(),
    };
    let mut ok = 0u64;
    let mut errors = 0u64;
    let mut line = String::new();
    let mut i = 0usize;
    let mut received = 0u64;
    let mut outstanding = 0usize;
    // Keep up to `--pipeline` requests in flight; the server answers
    // strictly in request order, so reads just drain the same FIFO.
    loop {
        let expired = Instant::now() >= deadline;
        if !expired && outstanding < opts.pipeline {
            let idx = i % pool.len();
            i += 1;
            match mix {
                Mix::Repeated => {
                    writer
                        .write_all(recorded[idx].as_bytes())
                        .map_err(|e| e.to_string())?;
                }
                Mix::Unique => {
                    let request = Request::Predict {
                        device: opts.device.clone(),
                        source: format!(
                            "// unique {}\n{}",
                            // ordering: the stamp only needs to be
                            // unique across connection threads, which
                            // the RMW guarantees at any ordering.
                            UNIQUE_STAMP.fetch_add(1, Ordering::Relaxed),
                            pool[idx]
                        ),
                    };
                    let body = request.to_json();
                    if opts.http {
                        writer
                            .write_all(http_post(Route::Predict.as_str(), &body).as_bytes())
                            .map_err(|e| e.to_string())?;
                    } else {
                        writeln!(writer, "{body}").map_err(|e| e.to_string())?;
                    }
                }
            }
            outstanding += 1;
            continue;
        }
        if outstanding == 0 {
            break; // expired with nothing left in flight
        }
        writer.flush().map_err(|e| e.to_string())?;
        let http_body;
        let trimmed = if opts.http {
            http_body = read_http_body(&mut reader, &mut line)?;
            http_body.trim()
        } else {
            line.clear();
            if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
                return Err("server closed the connection mid-run".into());
            }
            line.trim()
        };
        outstanding -= 1;
        received += 1;
        // Classify by tag; fully parsing every ~20 KB response would
        // measure the load generator, not the server. Every 64th
        // response is parsed end to end as a sanity check.
        if trimmed.starts_with("{\"ok\":\"predict\"") {
            if received.is_multiple_of(64) {
                match Response::parse(trimmed) {
                    Ok(Response::Predict { .. }) => {}
                    Ok(other) => return Err(format!("mis-tagged response: {other:?}")),
                    Err(e) => return Err(format!("unparseable response: {e}")),
                }
            }
            ok += 1;
        } else {
            errors += 1;
        }
    }
    Ok((ok, errors))
}

fn run_mix(opts: &Options, mix: Mix, pool: &[String]) -> Result<MixOutcome, String> {
    let start = Instant::now();
    let deadline = start + opts.duration;
    let counts = std::thread::scope(|s| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|_| s.spawn(|| run_client(opts, mix, pool, deadline)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Result<Vec<(u64, u64)>, String>>()
    })?;
    let elapsed_s = start.elapsed().as_secs_f64();
    let ok: u64 = counts.iter().map(|c| c.0).sum();
    let errors: u64 = counts.iter().map(|c| c.1).sum();
    let requests = ok + errors;
    Ok(MixOutcome {
        mix,
        requests,
        ok,
        errors,
        elapsed_s,
        rps: requests as f64 / elapsed_s,
    })
}

/// One out-of-band request on a fresh connection (stats / shutdown),
/// returning the raw wire line — the router check needs the bytes, not
/// just the typed response.
fn one_shot_raw(addr: &str, request: &Request) -> Result<String, String> {
    one_shot_raw_line(addr, &request.to_json())
}

/// Like [`one_shot_raw`], but for an already-serialized request line —
/// the traced probe splices its trace id into the raw bytes.
fn one_shot_raw_line(addr: &str, request_line: &str) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{request_line}").map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    Ok(line.trim().to_string())
}

fn one_shot(addr: &str, request: &Request) -> Result<Response, String> {
    let line = one_shot_raw(addr, request)?;
    Response::parse(&line).map_err(|e| format!("unparseable response: {e}"))
}

/// One out-of-band GET against the HTTP gateway; the body is a raw
/// protocol response line.
fn http_one_shot_raw(addr: &str, route: &str) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    writer
        .write_all(http_get(route).as_bytes())
        .map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    let mut line = String::new();
    let body = read_http_body(&mut reader, &mut line)?;
    Ok(body.trim().to_string())
}

/// One close-delimited HTTP `POST` carrying the trace header — the
/// traced probe in `--http` mode ([`http_post`] deliberately has no
/// extra-header hook, so the probe frames its own request).
fn http_traced_post(addr: &str, route: &str, body: &str, trace_id: &str) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let request = format!(
        "POST {route} HTTP/1.1\r\n{TRACE_HEADER}: {trace_id}\r\n\
         content-type: application/json\r\ncontent-length: {}\r\n\
         connection: close\r\n\r\n{}",
        body.len(),
        body
    );
    writer
        .write_all(request.as_bytes())
        .map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    let mut line = String::new();
    let reply = read_http_body(&mut reader, &mut line)?;
    Ok(reply.trim().to_string())
}

/// The smallest µs upper bound covering quantile `q` of a cumulative
/// power-of-two histogram, rendered for the breakdown table. When the
/// quantile lands past the last emitted bucket (the `+Inf` remainder),
/// the bound is open.
fn bucket_quantile(buckets: &[(u64, u64)], count: u64, q: f64) -> String {
    if count == 0 {
        return "-".to_string();
    }
    let target = ((count as f64) * q).ceil().max(1.0) as u64;
    for &(le, cumulative) in buckets {
        if cumulative >= target {
            return format!("<={le}");
        }
    }
    match buckets.last() {
        Some(&(le, _)) => format!(">{le}"),
        None => ">0".to_string(),
    }
}

/// Send the traced probe, verify the echo, scrape `/metrics`, and
/// print the server-attributed per-stage latency breakdown.
fn report_trace(opts: &Options, pool: &[String]) -> Result<(), String> {
    let trace_id = gpufreq_obs::trace::mint();
    let probe = Request::Predict {
        device: opts.device.clone(),
        source: pool[0].clone(),
    };
    let reply = if opts.http {
        http_traced_post(
            &opts.addr,
            Route::Predict.as_str(),
            &probe.to_json(),
            &trace_id,
        )?
    } else {
        one_shot_raw_line(
            &opts.addr,
            &gpufreq_obs::trace::attach(&probe.to_json(), &trace_id),
        )?
    };
    if !reply.contains(&format!("\"trace\":\"{trace_id}\"")) {
        return Err(format!(
            "--trace: the probe's trace id {trace_id} was not echoed back: {reply}"
        ));
    }
    println!("trace probe {trace_id}: echoed end to end");
    let exposition = if opts.http {
        http_one_shot_raw(&opts.addr, Route::Metrics.as_str())?
    } else {
        let line = one_shot_raw(&opts.addr, &Request::Metrics)?;
        match Response::parse(&line) {
            Ok(Response::Metrics { exposition }) => exposition,
            Ok(other) => return Err(format!("--trace: unexpected metrics answer: {other:?}")),
            Err(e) => return Err(format!("--trace: unparseable metrics response: {e}")),
        }
    };
    let families = gpufreq_obs::parse_exposition(&exposition)
        .map_err(|e| format!("--trace: /metrics: {e}"))?;
    let stages: Vec<&Family> = families
        .iter()
        .filter(|f| {
            f.kind == "histogram"
                && f.name.starts_with("gpufreq_stage_")
                && f.name.ends_with("_latency_us")
        })
        .collect();
    if stages.is_empty() {
        return Err("--trace: the exposition carries no per-stage histograms".into());
    }
    let rows: Vec<Vec<String>> = stages
        .iter()
        .map(|f| {
            let stage = f
                .name
                .trim_start_matches("gpufreq_stage_")
                .trim_end_matches("_latency_us");
            let count = f.count().unwrap_or(0);
            let buckets = f.buckets();
            let mean = f
                .samples
                .iter()
                .find(|s| s.name == format!("{}_sum", f.name))
                .filter(|_| count > 0)
                .map_or("-".to_string(), |s| {
                    format!("{:.1}", s.value / count as f64)
                });
            vec![
                stage.to_string(),
                count.to_string(),
                mean,
                bucket_quantile(&buckets, count, 0.50),
                bucket_quantile(&buckets, count, 0.95),
                bucket_quantile(&buckets, count, 0.99),
            ]
        })
        .collect();
    println!("server-attributed per-stage latency (µs, from /metrics):");
    println!(
        "{}",
        ascii_table(
            &["stage", "count", "mean_us", "p50_us", "p95_us", "p99_us"],
            &rows
        )
    );
    Ok(())
}

fn run(opts: &Options) -> Result<(), String> {
    let pool = kernel_pool();
    println!(
        "replaying {} kernels against {} ({} client(s) x {} pipelined, {:?} per mix)",
        pool.len(),
        opts.addr,
        opts.clients,
        opts.pipeline,
        opts.duration
    );
    let mut outcomes = Vec::new();
    for &mix in &opts.mixes {
        outcomes.push(run_mix(opts, mix, &pool)?);
    }
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.mix.name().to_string(),
                opts.clients.to_string(),
                format!("{:.2}", o.elapsed_s),
                o.requests.to_string(),
                o.ok.to_string(),
                o.errors.to_string(),
                format!("{:.1}", o.rps),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &["mix", "clients", "seconds", "requests", "ok", "errors", "req/s"],
            &rows
        )
    );
    let stats_raw = if opts.http {
        http_one_shot_raw(&opts.addr, Route::Stats.as_str())
    } else {
        one_shot_raw(&opts.addr, &Request::Stats)
    };
    if let Ok(raw) = &stats_raw {
        if let Ok(Response::Stats { stats }) = Response::parse(raw) {
            println!("server metrics after the run:");
            println!("{}", render_stats_table(&stats));
        }
    }
    if opts.router {
        // The router appends its own aggregation section to `stats`;
        // its absence means the target was a bare daemon and any
        // scaling numbers would be meaningless.
        let raw = stats_raw
            .as_deref()
            .map_err(|e| format!("--router: fetching stats: {e}"))?;
        if !raw.contains("\"router\":") {
            return Err("--router: the stats snapshot has no router section — \
                        is the target really a gpufreq router?"
                .into());
        }
    }
    if opts.trace {
        report_trace(opts, &pool)?;
    }
    let total: u64 = outcomes.iter().map(|o| o.requests).sum();
    if total == 0 {
        return Err("no requests completed — is the server reachable?".into());
    }
    let unique = outcomes.iter().find(|o| o.mix == Mix::Unique);
    let repeated = outcomes.iter().find(|o| o.mix == Mix::Repeated);
    if let (Some(unique), Some(repeated)) = (unique, repeated) {
        let speedup = repeated.rps / unique.rps;
        println!(
            "front-cache speedup: {speedup:.1}x ({:.1} req/s repeated vs {:.1} req/s unique)",
            repeated.rps, unique.rps
        );
        if let Some(min) = opts.min_cache_speedup {
            if speedup < min {
                return Err(format!(
                    "front-cache speedup {speedup:.1}x is below the required {min}x"
                ));
            }
        }
    } else if opts.min_cache_speedup.is_some() {
        return Err("--min-cache-speedup needs --mix both".into());
    }
    if let Some(min) = opts.min_unique_rps {
        let unique =
            unique.ok_or("--min-unique-rps needs a mix that includes unique".to_string())?;
        if unique.rps < min {
            return Err(format!(
                "unique-mix throughput {:.1} req/s is below the required {min} req/s",
                unique.rps
            ));
        }
    }
    if let Some(baseline) = opts.baseline_unique_rps {
        let unique =
            unique.ok_or("--baseline-unique-rps needs a mix that includes unique".to_string())?;
        let scaling = unique.rps / baseline;
        println!(
            "scale-out: {scaling:.2}x over the single-backend baseline \
             ({:.1} req/s vs {baseline:.1} req/s unique)",
            unique.rps
        );
        if let Some(min) = opts.min_scaling {
            if scaling < min {
                return Err(format!(
                    "scale-out {scaling:.2}x is below the required {min}x"
                ));
            }
        }
    }
    if opts.shutdown {
        match one_shot(&opts.addr, &Request::Shutdown)? {
            Response::Shutdown => println!("server acknowledged shutdown"),
            other => return Err(format!("unexpected shutdown answer: {other:?}")),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
