//! Portability study (§4.1): "The methodology introduced by this work
//! is portable, and all tests ... have been performed on both" devices.
//!
//! Re-runs the full pipeline on the Tesla P100: rebuild the training
//! corpus on the P100 simulator (its single 715 MHz memory domain and
//! 61 core clocks), train a fresh model with the paper's
//! hyper-parameters, and evaluate the predicted fronts on the twelve
//! test benchmarks. With only one memory domain the problem collapses
//! to core-frequency selection — exactly why the paper calls the
//! Titan X "more interesting".

use gpufreq_bench::report::{render::render_section_text, section_portability};
use gpufreq_bench::{artifacts_dir, engine, write_artifact};
use gpufreq_core::{
    build_training_data_with, evaluate_all_with, render_table2, table2, FreqScalingModel,
    ModelConfig,
};
use gpufreq_sim::Device;

fn main() {
    let engine = engine();
    let sim = Device::TeslaP100.simulator();
    let cache = artifacts_dir().join("model_p100.json");
    let model = if let Some(model) = std::fs::read_to_string(&cache)
        .ok()
        .and_then(|j| FreqScalingModel::from_json(&j).ok())
    {
        eprintln!("[gpufreq] loaded cached P100 model");
        model
    } else {
        eprintln!("[gpufreq] training P100 model (106 micro-benchmarks x 40 settings)...");
        let data = build_training_data_with(&engine, &sim, &gpufreq_synth::generate_all(), 40);
        let model = FreqScalingModel::try_train_with(&engine, &data, &ModelConfig::default())
            .expect("paper corpus is non-empty");
        let _ = std::fs::write(&cache, model.to_json());
        model
    };
    let workloads = gpufreq_workloads::all_workloads();
    let evals = evaluate_all_with(&engine, &sim, &model, &workloads);
    println!("=== Portability: Tesla P100 (single 715 MHz memory domain) ===\n");
    println!("{}", render_table2(&table2(&evals)));
    let improving = evals.iter().filter(|e| e.improves_on_default()).count();
    println!("predicted sets improve on the P100 default for {improving}/12 benchmarks");
    println!("(no mem-L domain exists, so no heuristic point is added)");
    for e in &evals {
        assert!(
            e.prediction.pareto_set.iter().all(|p| !p.heuristic),
            "unexpected heuristic point on a single-domain device"
        );
    }
    let json = serde_json::to_string_pretty(&table2(&evals)).expect("serializable");
    write_artifact("portability/p100_table.json", &json);
    // The portability study scored against §4.1, exactly as `gpufreq
    // report` embeds it.
    print!("{}", render_section_text(&section_portability(&evals)));
}
