//! `gpufreq-bench` — the experiment harness.
//!
//! One binary per figure/table of the paper's evaluation
//! (`fig1`, `fig4`, `fig5`, `fig6`, `fig7`, `fig8`, `table2`,
//! `sweepcost`), plus Criterion micro-benchmarks for the library
//! itself. This library crate holds the shared setup: the
//! paper-parameter training run (cached on disk so the figure binaries
//! don't retrain) and common output plumbing.

#![warn(missing_docs)]

use gpufreq_core::{build_training_data, FreqScalingModel, ModelConfig};
use gpufreq_sim::GpuSimulator;
use std::path::PathBuf;

/// Directory where experiment binaries write their CSV/JSON artifacts.
pub fn artifacts_dir() -> PathBuf {
    let dir = std::env::var("GPUFREQ_ARTIFACTS").unwrap_or_else(|_| "artifacts".to_string());
    let path = PathBuf::from(dir);
    std::fs::create_dir_all(&path).expect("create artifacts directory");
    path
}

/// Path of the cached paper-parameter model.
pub fn model_cache_path() -> PathBuf {
    artifacts_dir().join("model.json")
}

/// Train the paper-parameter model (106 micro-benchmarks × 40 sampled
/// settings, linear-SVR speedup + RBF-SVR energy, `C = 1000`,
/// `ε = 0.1`, `γ = 0.1`), caching the result as JSON so subsequent
/// experiment binaries reuse it.
pub fn paper_model(sim: &GpuSimulator) -> FreqScalingModel {
    let cache = model_cache_path();
    if let Ok(json) = std::fs::read_to_string(&cache) {
        if let Ok(model) = FreqScalingModel::from_json(&json) {
            eprintln!("[gpufreq] loaded cached model from {}", cache.display());
            return model;
        }
        eprintln!("[gpufreq] cached model unreadable; retraining");
    }
    eprintln!("[gpufreq] training phase: 106 micro-benchmarks x 40 settings...");
    let start = std::time::Instant::now();
    let benches = gpufreq_synth::generate_all();
    let data = build_training_data(sim, &benches, gpufreq_synth::TRAINING_SETTINGS);
    eprintln!("[gpufreq] corpus assembled: {} samples", data.len());
    let model = FreqScalingModel::train(&data, &ModelConfig::default());
    eprintln!(
        "[gpufreq] trained in {:.1}s ({} / {} support vectors)",
        start.elapsed().as_secs_f64(),
        model.support_vectors().0,
        model.support_vectors().1
    );
    if std::fs::write(&cache, model.to_json()).is_ok() {
        eprintln!("[gpufreq] model cached at {}", cache.display());
    }
    model
}

/// Write a text artifact and echo its path.
pub fn write_artifact(name: &str, contents: &str) {
    let path = artifacts_dir().join(name);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("create artifact subdirectory");
    }
    std::fs::write(&path, contents).expect("write artifact");
    eprintln!("[gpufreq] wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_dir_is_created() {
        let d = artifacts_dir();
        assert!(d.exists());
    }

    #[test]
    fn write_artifact_round_trips() {
        write_artifact("test/_probe.txt", "hello");
        let p = artifacts_dir().join("test/_probe.txt");
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "hello");
        let _ = std::fs::remove_file(p);
    }
}
