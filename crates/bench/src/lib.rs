//! `gpufreq-bench` — the experiment harness.
//!
//! One binary per figure/table of the paper's evaluation
//! (`fig1`, `fig4`, `fig5`, `fig6`, `fig7`, `fig8`, `table2`,
//! `sweepcost`), plus Criterion micro-benchmarks for the library
//! itself. This library crate holds the shared setup: the
//! paper-parameter training run (cached on disk so the figure binaries
//! don't retrain), the [`Engine`] every binary fans out on (pin it
//! with `GPUFREQ_JOBS=N` — output is bit-identical for every value),
//! common output plumbing, and the deterministic CSV generators the
//! golden regression tests in `tests/golden.rs` snapshot.
//!
//! The [`report`] module turns all of it into the scored,
//! cited reproduction report behind `gpufreq report`: every figure
//! binary prints its section's paper-vs-repro delta table, and the
//! checked-in `REPRODUCTION.md` / `reproduction.json` at the
//! repository root are golden-tested against the `--fast` pipeline
//! (`tests/report_golden.rs`).

#![warn(missing_docs)]

pub mod report;

use gpufreq_core::{
    build_training_data_with, evaluate_all_with, table2, table2_csv, Engine, FreqScalingModel,
    ModelConfig, Table2Row,
};
use gpufreq_sim::{DeviceSpec, GpuSimulator};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The execution engine the experiment binaries fan out on.
///
/// Worker count comes from the `GPUFREQ_JOBS` environment variable
/// when set (CI pins `GPUFREQ_JOBS=2` on 2-core runners), otherwise
/// every core. Every figure/table is bit-identical for every value —
/// the engine merges in input order — so the variable only trades
/// wall-clock.
pub fn engine() -> Engine {
    let jobs = std::env::var("GPUFREQ_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    Engine::new(jobs)
}

/// Directory where experiment binaries write their CSV/JSON artifacts.
pub fn artifacts_dir() -> PathBuf {
    let dir = std::env::var("GPUFREQ_ARTIFACTS").unwrap_or_else(|_| "artifacts".to_string());
    let path = PathBuf::from(dir);
    std::fs::create_dir_all(&path).expect("create artifacts directory");
    path
}

/// Path of the cached paper-parameter model.
pub fn model_cache_path() -> PathBuf {
    artifacts_dir().join("model.json")
}

/// Train the paper-parameter model (106 micro-benchmarks × 40 sampled
/// settings, linear-SVR speedup + RBF-SVR energy, `C = 1000`,
/// `ε = 0.1`, `γ = 0.1`) on the [`engine`], caching the result as JSON
/// so subsequent experiment binaries reuse it.
pub fn paper_model(sim: &GpuSimulator) -> FreqScalingModel {
    let cache = model_cache_path();
    if let Ok(json) = std::fs::read_to_string(&cache) {
        if let Ok(model) = FreqScalingModel::from_json(&json) {
            eprintln!("[gpufreq] loaded cached model from {}", cache.display());
            return model;
        }
        eprintln!("[gpufreq] cached model unreadable; retraining");
    }
    eprintln!("[gpufreq] training phase: 106 micro-benchmarks x 40 settings...");
    let start = std::time::Instant::now();
    let engine = engine();
    let benches = gpufreq_synth::generate_all();
    let data = build_training_data_with(&engine, sim, &benches, gpufreq_synth::TRAINING_SETTINGS);
    eprintln!("[gpufreq] corpus assembled: {} samples", data.len());
    let model =
        gpufreq_core::FreqScalingModel::try_train_with(&engine, &data, &ModelConfig::default())
            .expect("paper corpus is non-empty");
    eprintln!(
        "[gpufreq] trained in {:.1}s ({} / {} support vectors)",
        start.elapsed().as_secs_f64(),
        model.support_vectors().0,
        model.support_vectors().1
    );
    if std::fs::write(&cache, model.to_json()).is_ok() {
        eprintln!("[gpufreq] model cached at {}", cache.display());
    }
    model
}

/// Write a text artifact and echo its path.
pub fn write_artifact(name: &str, contents: &str) {
    let path = artifacts_dir().join(name);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("create artifact subdirectory");
    }
    std::fs::write(&path, contents).expect("write artifact");
    eprintln!("[gpufreq] wrote {}", path.display());
}

/// The Figure 4 CSV for one device: every advertised `(mem, core)`
/// pair with its effective (possibly clamped) core clock and the
/// default-configuration marker. Pure clock-table enumeration —
/// deterministic by construction; snapshotted by the golden tests.
pub fn fig4_csv(spec: &DeviceSpec) -> String {
    let default = spec.clocks.default;
    let mut csv = String::from("mem_mhz,core_mhz,effective_core_mhz,clamped,default\n");
    for domain in &spec.clocks.domains {
        let mem = domain.mem_mhz;
        for &core in &domain.advertised_core_mhz {
            let eff = domain.effective_core(core);
            let _ = writeln!(
                csv,
                "{mem},{core},{eff},{},{}",
                (eff != core) as u8,
                (default.mem_mhz == mem && default.core_mhz == core) as u8
            );
        }
    }
    csv
}

/// Sampled settings of the pinned golden pipeline.
pub const GOLDEN_SETTINGS: usize = 8;

/// The hyper-parameters of the pinned golden pipeline:
/// [`ModelConfig::relaxed`], the one test-suite preset shared with the
/// determinism and property suites, bounded so the golden test
/// finishes in seconds.
pub fn golden_config() -> ModelConfig {
    ModelConfig::relaxed()
}

/// Table 2 rows from a **pinned, reduced** pipeline on `sim`: every
/// third micro-benchmark, [`GOLDEN_SETTINGS`] sampled settings,
/// [`golden_config`] hyper-parameters. Small enough for a `#[test]`,
/// deterministic enough to snapshot — the golden regression tests
/// compare [`golden_table2_csv`] byte-for-byte against
/// `artifacts/test/`.
pub fn golden_table2_rows(sim: &GpuSimulator, engine: &Engine) -> Vec<Table2Row> {
    let benches: Vec<_> = gpufreq_synth::generate_all()
        .into_iter()
        .step_by(3)
        .collect();
    let data = build_training_data_with(engine, sim, &benches, GOLDEN_SETTINGS);
    let model = gpufreq_core::FreqScalingModel::try_train_with(engine, &data, &golden_config())
        .expect("golden corpus is non-empty");
    let evals = evaluate_all_with(engine, sim, &model, &gpufreq_workloads::all_workloads());
    table2(&evals)
}

/// [`golden_table2_rows`] rendered as the snapshot CSV.
pub fn golden_table2_csv(sim: &GpuSimulator, engine: &Engine) -> String {
    table2_csv(&golden_table2_rows(sim, engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_sim::Device;

    #[test]
    fn artifacts_dir_is_created() {
        let d = artifacts_dir();
        assert!(d.exists());
    }

    #[test]
    fn write_artifact_round_trips() {
        write_artifact("test/_probe.txt", "hello");
        let p = artifacts_dir().join("test/_probe.txt");
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "hello");
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn fig4_csv_counts_match_clock_table() {
        let spec = Device::TitanX.spec();
        let csv = fig4_csv(&spec);
        let advertised: usize = spec
            .clocks
            .domains
            .iter()
            .map(|d| d.advertised_core_mhz.len())
            .sum();
        assert_eq!(csv.lines().count(), advertised + 1, "header + one per pair");
        let defaults = csv.lines().filter(|l| l.ends_with(",1")).count();
        assert_eq!(defaults, 1, "exactly one default marker");
    }
}
