//! The paper's published numbers as typed, cited reference values.
//!
//! Every figure and table the repo reproduces is anchored here to the
//! value conf_icpp_FanCJ19 actually prints, together with the section
//! or figure it comes from, so the report can state *how far* the
//! reproduction sits from the paper instead of merely printing its own
//! numbers. Values quoted elsewhere in the workspace (the `fig6`/`fig7`
//! RMSE captions, the Table 2 headline counts, the §3.3 sweep-cost
//! accounting) are defined once, here.

/// One published value with its citation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reference {
    /// Stable machine id (`"fig6.rmse.mem_h"`).
    pub id: &'static str,
    /// Human-readable name.
    pub name: &'static str,
    /// Unit suffix used when displaying the value (`"%"`, `" min"`).
    pub unit: &'static str,
    /// The value as printed in the paper.
    pub value: f64,
    /// Where the paper states it (`"§4.4, Fig. 6"`).
    pub citation: &'static str,
}

/// Bibliographic metadata of the reproduced paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperMeta {
    /// Corpus key of the paper.
    pub key: &'static str,
    /// Full title.
    pub title: &'static str,
    /// Author list.
    pub authors: &'static str,
    /// Venue.
    pub venue: &'static str,
    /// DOI.
    pub doi: &'static str,
}

/// The reproduced paper.
pub const PAPER: PaperMeta = PaperMeta {
    key: "conf_icpp_FanCJ19",
    title: "Predictable GPUs Frequency Scaling for Energy and Performance",
    authors: "Kaijie Fan, Biagio Cosenza, Ben Juurlink",
    venue: "ICPP 2019",
    doi: "10.1145/3337821.3337833",
};

/// Fig. 6 — pooled RMSE of the *speedup* model per memory domain,
/// highest memory clock first (the order the figure's panels use).
pub const FIG6_RMSE: [Reference; 4] = [
    Reference {
        id: "fig6.rmse.mem_H",
        name: "speedup RMSE, Mem_H (3505 MHz)",
        unit: "%",
        value: 6.68,
        citation: "§4.4, Fig. 6",
    },
    Reference {
        id: "fig6.rmse.mem_h",
        name: "speedup RMSE, Mem_h (3304 MHz)",
        unit: "%",
        value: 7.10,
        citation: "§4.4, Fig. 6",
    },
    Reference {
        id: "fig6.rmse.mem_l",
        name: "speedup RMSE, Mem_l (810 MHz)",
        unit: "%",
        value: 11.13,
        citation: "§4.4, Fig. 6",
    },
    Reference {
        id: "fig6.rmse.mem_L",
        name: "speedup RMSE, Mem_L (405 MHz)",
        unit: "%",
        value: 9.09,
        citation: "§4.4, Fig. 6",
    },
];

/// Fig. 7 — pooled RMSE of the *normalized energy* model per memory
/// domain, highest memory clock first.
pub const FIG7_RMSE: [Reference; 4] = [
    Reference {
        id: "fig7.rmse.mem_H",
        name: "energy RMSE, Mem_H (3505 MHz)",
        unit: "%",
        value: 7.82,
        citation: "§4.4, Fig. 7",
    },
    Reference {
        id: "fig7.rmse.mem_h",
        name: "energy RMSE, Mem_h (3304 MHz)",
        unit: "%",
        value: 5.65,
        citation: "§4.4, Fig. 7",
    },
    Reference {
        id: "fig7.rmse.mem_l",
        name: "energy RMSE, Mem_l (810 MHz)",
        unit: "%",
        value: 12.85,
        citation: "§4.4, Fig. 7",
    },
    Reference {
        id: "fig7.rmse.mem_L",
        name: "energy RMSE, Mem_L (405 MHz)",
        unit: "%",
        value: 15.10,
        citation: "§4.4, Fig. 7",
    },
];

/// Table 2 — the coverage difference below which the paper calls a
/// predicted front a good approximation of the real one.
pub const GOOD_COVERAGE_D: f64 = 0.0362;

/// Table 2 — benchmarks (out of [`NUM_BENCHMARKS`]) whose coverage
/// difference is at most [`GOOD_COVERAGE_D`].
pub const TABLE2_GOOD_COVERAGE: Reference = Reference {
    id: "table2.good_coverage",
    name: "benchmarks with coverage difference D \u{2264} 0.0362",
    unit: "/12",
    value: 10.0,
    citation: "§4.5, Table 2",
};

/// Table 2 — benchmarks whose max-speedup extreme point is predicted
/// exactly.
pub const TABLE2_EXACT_MAX_SPEEDUP: Reference = Reference {
    id: "table2.exact_max_speedup",
    name: "max-speedup extreme predicted exactly",
    unit: "/12",
    value: 7.0,
    citation: "§4.5, Table 2",
};

/// Number of test benchmarks in the evaluation (§4.2).
pub const NUM_BENCHMARKS: usize = 12;

/// Fig. 4a — clock-table structure of the GTX Titan X.
pub const FIG4_TITAN_X: [Reference; 3] = [
    Reference {
        id: "fig4.titan_x.domains",
        name: "Titan X memory domains",
        unit: "",
        value: 4.0,
        citation: "§2.2, Fig. 4a",
    },
    Reference {
        id: "fig4.titan_x.advertised",
        name: "Titan X advertised (mem, core) configurations",
        unit: "",
        value: 219.0,
        citation: "§2.2, Fig. 4a",
    },
    Reference {
        id: "fig4.titan_x.actual",
        name: "Titan X actually settable configurations",
        unit: "",
        value: 177.0,
        citation: "§2.2, Fig. 4a",
    },
];

/// Fig. 4a — advertised Titan X core clocks above this value silently
/// clamp (the figure's gray points).
pub const TITAN_X_CLAMP_MHZ: u32 = 1202;

/// Fig. 4b — clock-table structure of the Tesla P100.
pub const FIG4_P100: [Reference; 2] = [
    Reference {
        id: "fig4.p100.domains",
        name: "P100 memory domains",
        unit: "",
        value: 1.0,
        citation: "§2.2, Fig. 4b",
    },
    Reference {
        id: "fig4.p100.core_clocks",
        name: "P100 settable core clocks",
        unit: "",
        value: 61.0,
        citation: "§2.2, Fig. 4b",
    },
];

/// §3.3 — minutes to measure one micro-benchmark at 40 sampled
/// settings.
pub const SWEEP_MINUTES_40: Reference = Reference {
    id: "sweepcost.minutes_40",
    name: "sweep cost at 40 sampled settings",
    unit: " min",
    value: 20.0,
    citation: "§3.3",
};

/// §3.3 — minutes to measure one micro-benchmark at every setting.
pub const SWEEP_MINUTES_ALL: Reference = Reference {
    id: "sweepcost.minutes_all",
    name: "sweep cost over all settings",
    unit: " min",
    value: 70.0,
    citation: "§3.3",
};

/// Fig. 5 — the benchmarks the paper characterizes as
/// compute-dominated (speedup scales with the core clock).
pub const FIG5_COMPUTE_DOMINATED: [&str; 4] = ["knn", "aes", "matmul", "convolution"];

/// Fig. 5 — the benchmarks the paper characterizes as memory-dominated
/// (speedup flat in the core clock).
pub const FIG5_MEMORY_DOMINATED: [&str; 4] = ["median", "bitcompression", "mt", "blackscholes"];

/// Fig. 5 — speedup spread across the high-memory configurations above
/// which a benchmark reads as compute-dominated (the top row of the
/// figure spreads widely along the speedup axis; the bottom row
/// collapses toward vertical clusters).
pub const COMPUTE_DOMINATED_SPREAD: f64 = 0.7;
