//! The reproduction-report subsystem behind `gpufreq report`.
//!
//! Turns the figure/table pipelines into one self-documenting
//! deliverable: a `REPRODUCTION.md` (plus `reproduction.json` for CI
//! trend tracking) that states, per figure and table of
//! conf_icpp_FanCJ19, the paper's published value, the reproduced
//! value, the relative error and a pass/warn/FAIL tier — with a
//! provenance header recording exactly what was run.
//!
//! * [`reference`](mod@reference) — the paper's numbers as typed,
//!   cited constants;
//! * [`metrics`] — delta computation and tier grading;
//! * [`render`] — Markdown / JSON / plain-text rendering;
//! * [`generate`] — run the pipeline (fast: the golden reduced
//!   corpus; full: the paper parameters) and assemble the [`Report`].
//!
//! Every figure binary also routes its output through the
//! per-section builders here ([`section_fig6`], [`section_table2`],
//! …), so `cargo run --bin fig6` prints the same paper-vs-repro delta
//! table the report embeds.
//!
//! The `--fast` report is checked in at the repository root and
//! golden-tested (`crates/bench/tests/report_golden.rs`): regenerate
//! with `GPUFREQ_BLESS=1` after an intentional change. Output is
//! byte-identical for every worker count — the [`Engine`] merges in
//! input order — which `tests/determinism.rs` pins.

pub mod metrics;
pub mod reference;
pub mod render;

use crate::{golden_config, GOLDEN_SETTINGS};
use gpufreq_core::{
    build_training_data_with, error_analysis, evaluate_all_with, table2, BenchmarkEvaluation,
    DomainErrorAnalysis, Engine, FreqScalingModel, ModelConfig, Objective, Result, Table2Row,
    MODEL_FORMAT_VERSION,
};
use gpufreq_sim::{Characterization, Device, GpuSimulator};
use gpufreq_workloads::Workload;
use metrics::{MetricCheck, Tier};
use reference as paper;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// How `generate` runs the pipelines.
#[derive(Debug, Clone, Default)]
pub struct ReportOptions {
    /// `true`: paper parameters (106 micro-benchmarks × 40 settings,
    /// `C = 1000`); `false`: the pinned golden fast pipeline (every
    /// third micro-benchmark, 8 settings, relaxed solver).
    pub full: bool,
    /// Engine worker count (`None` = all cores). Output is
    /// byte-identical for every value; only wall-clock changes.
    pub jobs: Option<usize>,
    /// Git revision recorded in the provenance header (the CLI passes
    /// `GPUFREQ_GIT_REV` through); `None` renders as unset.
    pub git_revision: Option<String>,
}

/// What was run to produce a report — the header that makes two
/// reports comparable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// `"fast"` or `"full"`.
    pub mode: String,
    /// Device registry ids the workspace knows.
    pub devices: Vec<String>,
    /// Training corpus description.
    pub corpus: String,
    /// Sampled frequency settings per micro-benchmark.
    pub settings: usize,
    /// SVR hyper-parameter preset description.
    pub model_config: String,
    /// `ModelArtifact` format version of this build.
    pub model_format_version: u32,
    /// Number of evaluation workloads.
    pub workloads: usize,
    /// Git revision (`GPUFREQ_GIT_REV`), or a note that it was unset.
    pub git_revision: String,
    /// Scheduling note: why worker count never changes the bytes.
    pub engine: String,
    /// Prediction-path note: how candidate configurations are scored
    /// and why the batched form cannot change any reported number.
    pub scoring: String,
}

/// A supplementary table of reproduced values inside a section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetailTable {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Body rows (same arity as `header`).
    pub rows: Vec<Vec<String>>,
}

/// One figure/table of the paper, scored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Section {
    /// Stable id (`"fig6"`).
    pub id: String,
    /// Heading (`"Fig. 6 — prediction error of the speedup model"`).
    pub title: String,
    /// Where the paper presents it.
    pub citation: String,
    /// Prose summary of what was reproduced and how it compares.
    pub narrative: String,
    /// The scored paper-vs-repro checks.
    pub metrics: Vec<MetricCheck>,
    /// Reproduced-value tables (no paper counterpart per cell).
    pub details: Vec<DetailTable>,
}

impl Section {
    /// `(pass, warn, fail)` counts over this section's metrics.
    pub fn score(&self) -> (usize, usize, usize) {
        let count = |t: Tier| self.metrics.iter().filter(|m| m.tier == t).count();
        (count(Tier::Pass), count(Tier::Warn), count(Tier::Fail))
    }
}

/// Scoreboard line for one section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SectionScore {
    /// Section id.
    pub id: String,
    /// Section citation.
    pub citation: String,
    /// Metrics graded pass.
    pub pass: usize,
    /// Metrics graded warn.
    pub warn: usize,
    /// Metrics graded fail.
    pub fail: usize,
}

/// The report-wide scoreboard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Total metrics graded pass.
    pub pass: usize,
    /// Total metrics graded warn.
    pub warn: usize,
    /// Total metrics graded fail.
    pub fail: usize,
    /// Per-section breakdown, in section order.
    pub sections: Vec<SectionScore>,
}

/// Bibliographic header of the reproduced paper (serializable copy of
/// [`reference::PaperMeta`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperInfo {
    /// Corpus key.
    pub key: String,
    /// Title.
    pub title: String,
    /// Authors.
    pub authors: String,
    /// Venue.
    pub venue: String,
    /// DOI.
    pub doi: String,
}

impl PaperInfo {
    fn current() -> PaperInfo {
        PaperInfo {
            key: paper::PAPER.key.to_string(),
            title: paper::PAPER.title.to_string(),
            authors: paper::PAPER.authors.to_string(),
            venue: paper::PAPER.venue.to_string(),
            doi: paper::PAPER.doi.to_string(),
        }
    }
}

/// A complete reproduction report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The reproduced paper.
    pub paper: PaperInfo,
    /// What was run.
    pub provenance: Provenance,
    /// Scored sections, in paper order.
    pub sections: Vec<Section>,
    /// The scoreboard.
    pub summary: Summary,
}

impl Report {
    /// Look up a metric anywhere in the report by its stable id.
    pub fn metric(&self, id: &str) -> Option<&MetricCheck> {
        self.sections
            .iter()
            .flat_map(|s| s.metrics.iter())
            .find(|m| m.id == id)
    }
}

fn summarize(sections: &[Section]) -> Summary {
    let scores: Vec<SectionScore> = sections
        .iter()
        .map(|s| {
            let (pass, warn, fail) = s.score();
            SectionScore {
                id: s.id.clone(),
                citation: s.citation.clone(),
                pass,
                warn,
                fail,
            }
        })
        .collect();
    Summary {
        pass: scores.iter().map(|s| s.pass).sum(),
        warn: scores.iter().map(|s| s.warn).sum(),
        fail: scores.iter().map(|s| s.fail).sum(),
        sections: scores,
    }
}

/// Speedup spread across the high-memory configurations — Fig. 5's
/// compute/memory discriminator.
///
/// "High-memory" is derived from the characterization itself: domains
/// running at more than half the highest swept memory clock. On the
/// Titan X that selects mem-H and mem-h (3505/3304 MHz, the paper's
/// top rows) and excludes mem-l/mem-L; on a single-domain device like
/// the P100 every point qualifies instead of none.
pub fn high_mem_speedup_spread(characterization: &Characterization) -> f64 {
    let Some(top_mem) = characterization
        .points
        .iter()
        .map(|p| p.config().mem_mhz)
        .max()
    else {
        return 0.0;
    };
    let (lo, hi) = characterization
        .points
        .iter()
        .filter(|p| 2 * p.config().mem_mhz > top_mem)
        .map(|p| p.speedup)
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(v), hi.max(v))
        });
    if lo.is_finite() {
        hi - lo
    } else {
        0.0
    }
}

/// Fig. 1 — the motivational frequency-scaling character of k-NN
/// (compute-dominated) and MT (memory-dominated).
pub fn section_fig1(knn: &Characterization, mt: &Characterization) -> Section {
    let knn_spread = high_mem_speedup_spread(knn);
    let mt_spread = high_mem_speedup_spread(mt);
    // Energy parabola: at the highest memory clock, the minimum-energy
    // core clock sits strictly inside the swept range.
    let top_mem = knn
        .points
        .iter()
        .map(|p| p.config().mem_mhz)
        .max()
        .unwrap_or(0);
    let mem_h: Vec<_> = knn
        .points
        .iter()
        .filter(|p| p.config().mem_mhz == top_mem)
        .collect();
    let min_core = mem_h.iter().map(|p| p.config().core_mhz).min().unwrap_or(0);
    let max_core = mem_h.iter().map(|p| p.config().core_mhz).max().unwrap_or(0);
    let min_energy_core = mem_h
        .iter()
        .min_by(|a, b| a.norm_energy.total_cmp(&b.norm_energy))
        .map(|p| p.config().core_mhz)
        .unwrap_or(0);
    let interior = min_energy_core > min_core && min_energy_core < max_core;
    let threshold = paper::COMPUTE_DOMINATED_SPREAD;
    Section {
        id: "fig1".to_string(),
        title: "Fig. 1 — why frequency scaling is worth predicting".to_string(),
        citation: "§1.1, Fig. 1".to_string(),
        narrative: format!(
            "k-NN and MT swept over every configuration: k-NN's speedup spreads {knn_spread:.3} \
             across the high-memory configurations (scales with the core clock) while MT's \
             spreads only {mt_spread:.3} (flat); k-NN's minimum-energy core clock at the \
             {top_mem} MHz memory domain is {min_energy_core} MHz, strictly inside \
             [{min_core}, {max_core}] MHz — the paper's parabola with an interior minimum."
        ),
        metrics: vec![
            MetricCheck::qualitative(
                "fig1.knn_core_scaling",
                &format!("k-NN speedup scales with the core clock (spread > {threshold})"),
                "§1.1, Fig. 1a",
                knn_spread > threshold,
            ),
            MetricCheck::qualitative(
                "fig1.mt_flat",
                &format!("MT speedup is flat in the core clock (spread \u{2264} {threshold})"),
                "§1.1, Fig. 1b",
                mt_spread <= threshold,
            ),
            MetricCheck::qualitative(
                "fig1.knn_energy_parabola",
                "k-NN normalized energy has an interior minimum at the highest memory clock",
                "§1.1, Fig. 1a",
                interior,
            ),
        ],
        details: Vec::new(),
    }
}

/// Fig. 4 — the clock tables of the GTX Titan X and the Tesla P100.
pub fn section_fig4() -> Section {
    let titan = Device::TitanX.spec();
    let p100 = Device::TeslaP100.spec();
    let advertised = |spec: &gpufreq_sim::DeviceSpec| -> usize {
        spec.clocks
            .domains
            .iter()
            .map(|d| d.advertised_core_mhz.len())
            .sum()
    };
    let clamp_quirk = titan.clocks.domains.iter().any(|d| {
        d.advertised_core_mhz
            .iter()
            .any(|&c| c > paper::TITAN_X_CLAMP_MHZ && d.effective_core(c) != c)
    });
    let metrics = vec![
        MetricCheck::exact_count(&paper::FIG4_TITAN_X[0], titan.clocks.domains.len()),
        MetricCheck::exact_count(&paper::FIG4_TITAN_X[1], advertised(&titan)),
        MetricCheck::exact_count(&paper::FIG4_TITAN_X[2], titan.clocks.actual_configs().len()),
        MetricCheck::qualitative(
            "fig4.titan_x.clamp",
            &format!(
                "advertised Titan X core clocks above {} MHz silently clamp (gray points)",
                paper::TITAN_X_CLAMP_MHZ
            ),
            "§2.2, Fig. 4a",
            clamp_quirk,
        ),
        MetricCheck::exact_count(&paper::FIG4_P100[0], p100.clocks.domains.len()),
        MetricCheck::exact_count(&paper::FIG4_P100[1], p100.clocks.actual_configs().len()),
    ];
    let mut details = Vec::new();
    for spec in [&titan, &p100] {
        let rows: Vec<Vec<String>> = spec
            .clocks
            .domains
            .iter()
            .map(|d| {
                let clamped = d
                    .advertised_core_mhz
                    .iter()
                    .filter(|&&c| d.effective_core(c) != c)
                    .count();
                vec![
                    d.mem_mhz.to_string(),
                    d.advertised_core_mhz.len().to_string(),
                    d.actual_core_mhz().len().to_string(),
                    clamped.to_string(),
                    if spec.clocks.default.mem_mhz == d.mem_mhz {
                        format!("core {}", spec.clocks.default.core_mhz)
                    } else {
                        "—".to_string()
                    },
                ]
            })
            .collect();
        details.push(DetailTable {
            title: format!("{} clock domains", spec.name),
            header: ["mem MHz", "advertised", "actual", "clamped", "default"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            rows,
        });
    }
    Section {
        id: "fig4".to_string(),
        title: "Fig. 4 — supported frequency configurations".to_string(),
        citation: "§2.2, Fig. 4".to_string(),
        narrative: format!(
            "The simulator reproduces both clock tables structurally: {} advertised / {} \
             settable Titan X configurations over {} memory domains (with the >{} MHz clamp \
             quirk), and {} settable core clocks in the P100's single memory domain.",
            advertised(&titan),
            titan.clocks.actual_configs().len(),
            titan.clocks.domains.len(),
            paper::TITAN_X_CLAMP_MHZ,
            p100.clocks.actual_configs().len(),
        ),
        metrics,
        details,
    }
}

/// Fig. 5 — compute- vs memory-dominated character of the eight
/// selected benchmarks, from their measured sweeps.
pub fn section_fig5(items: &[(&Workload, &Characterization)]) -> Section {
    let threshold = paper::COMPUTE_DOMINATED_SPREAD;
    let mut matches = 0usize;
    let mut rows = Vec::new();
    for (workload, characterization) in items {
        let spread = high_mem_speedup_spread(characterization);
        let derived_compute = spread > threshold;
        let paper_compute = paper::FIG5_COMPUTE_DOMINATED.contains(&workload.name);
        if derived_compute == paper_compute {
            matches += 1;
        }
        let label = |compute: bool| if compute { "compute" } else { "memory" };
        rows.push(vec![
            workload.display_name.to_string(),
            format!("{spread:.3}"),
            label(derived_compute).to_string(),
            label(paper_compute).to_string(),
        ]);
    }
    let classification = paper::Reference {
        id: "fig5.classification",
        name: "benchmarks whose compute/memory character matches the paper",
        unit: "/8",
        value: items.len() as f64,
        citation: "§4.2, Fig. 5",
    };
    Section {
        id: "fig5".to_string(),
        title: "Fig. 5 — benchmark characterization".to_string(),
        citation: "§4.2, Fig. 5".to_string(),
        narrative: format!(
            "Speedup spread across the high-memory configurations separates the paper's top row \
             (compute-dominated, spread > {threshold}) from its bottom row (memory-dominated): \
             {matches}/{} of the selected benchmarks land in the published class.",
            items.len()
        ),
        metrics: vec![MetricCheck::count_at_least(&classification, matches, 1)],
        details: vec![DetailTable {
            title: "per-benchmark character".to_string(),
            header: [
                "benchmark",
                "high-mem speedup spread",
                "reproduced",
                "paper",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            rows,
        }],
    }
}

fn rmse_section(
    id: &str,
    title: &str,
    citation: &str,
    objective: &str,
    analysis: &[DomainErrorAnalysis],
    references: &[paper::Reference],
) -> Section {
    let mut metrics = Vec::new();
    for (domain, reference) in analysis.iter().zip(references) {
        debug_assert!(
            reference.name.contains(&domain.label),
            "domain order must match the reference order"
        );
        metrics.push(MetricCheck::quantitative(
            reference,
            domain.rmse_percent,
            0.5,
            1.5,
        ));
    }
    let reproduced: Vec<String> = analysis
        .iter()
        .map(|d| format!("{} {:.2}%", d.label, d.rmse_percent))
        .collect();
    Section {
        id: id.to_string(),
        title: title.to_string(),
        citation: citation.to_string(),
        narrative: format!(
            "Pooled per-domain RMSE of the {objective} model over all twelve benchmarks \
             (reproduced: {}). The tiers are graded coarsely — the simulator reproduces the \
             error *structure* (low-memory domains are harder), not the silicon's exact \
             percentages.",
            reproduced.join(", ")
        ),
        metrics,
        details: Vec::new(),
    }
}

/// Fig. 6 — per-memory-domain RMSE of the speedup model.
pub fn section_fig6(analysis: &[DomainErrorAnalysis]) -> Section {
    rmse_section(
        "fig6",
        "Fig. 6 — prediction error of the speedup model",
        "§4.4, Fig. 6",
        "speedup",
        analysis,
        &paper::FIG6_RMSE,
    )
}

/// Fig. 7 — per-memory-domain RMSE of the normalized-energy model.
pub fn section_fig7(analysis: &[DomainErrorAnalysis]) -> Section {
    rmse_section(
        "fig7",
        "Fig. 7 — prediction error of the normalized-energy model",
        "§4.4, Fig. 7",
        "normalized-energy",
        analysis,
        &paper::FIG7_RMSE,
    )
}

/// Fig. 8 — predicted vs real Pareto fronts across the benchmarks.
pub fn section_fig8(evals: &[BenchmarkEvaluation]) -> Section {
    let dominating = evals.iter().filter(|e| e.improves_on_default()).count();
    let trading = evals.iter().filter(|e| e.offers_trade_off(0.05)).count();
    let rows: Vec<Vec<String>> = evals
        .iter()
        .map(|e| {
            vec![
                e.display_name.clone(),
                format!("{:.4}", e.coverage_d),
                if e.improves_on_default() { "yes" } else { "no" }.to_string(),
                if e.offers_trade_off(0.05) {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            ]
        })
        .collect();
    Section {
        id: "fig8".to_string(),
        title: "Fig. 8 — predicted vs real Pareto fronts".to_string(),
        citation: "§4.5, Fig. 8".to_string(),
        narrative: format!(
            "Predicted Pareto sets measured at their true objectives: {dominating}/{} \
             benchmarks contain a configuration that strictly dominates the default, and \
             {trading}/{} offer a \u{2265}5% energy/performance trade-off — the paper's \
             headline that the predicted settings beat the default configuration in either \
             energy or performance.",
            evals.len(),
            evals.len()
        ),
        metrics: vec![MetricCheck::qualitative(
            "fig8.trade_offs_majority",
            "predicted sets offer a \u{2265}5% energy/performance trade-off for a majority of benchmarks",
            "§4.5, Fig. 8",
            // Strict majority: exactly half is not "a majority", and
            // grading it as one would hide a 7/12 → 6/12 regression
            // from the CI tier gate.
            trading * 2 > evals.len(),
        )],
        details: vec![DetailTable {
            title: "per-benchmark front quality".to_string(),
            header: ["benchmark", "coverage D", "dominates default", "\u{2265}5% trade-off"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            rows,
        }],
    }
}

/// Table 2 — coverage differences and extreme-point distances.
pub fn section_table2(evals: &[BenchmarkEvaluation]) -> Section {
    let rows = table2(evals);
    let good = rows
        .iter()
        .filter(|r| r.coverage_d <= paper::GOOD_COVERAGE_D)
        .count();
    let exact_speedup = evals
        .iter()
        .filter(|e| e.extreme_max_speedup.is_exact(1e-9))
        .count();
    let exact_energy = evals
        .iter()
        .filter(|e| e.extreme_min_energy.is_exact(1e-9))
        .count();
    Section {
        id: "table2".to_string(),
        title: "Table 2 — evaluation of the predicted Pareto fronts".to_string(),
        citation: "§4.5, Table 2".to_string(),
        narrative: format!(
            "Binary hypervolume coverage difference D(P*, P\u{2032}) and extreme-point \
             distances over the twelve benchmarks, sorted by D. Reproduced: {good}/{} good \
             approximations (D \u{2264} {}), max-speedup extreme exact for {exact_speedup}/{}, \
             min-energy extreme exact for {exact_energy}/{}.",
            rows.len(),
            paper::GOOD_COVERAGE_D,
            rows.len(),
            rows.len(),
        ),
        metrics: vec![
            MetricCheck::count_at_least(&paper::TABLE2_GOOD_COVERAGE, good, 2),
            MetricCheck::count_at_least(&paper::TABLE2_EXACT_MAX_SPEEDUP, exact_speedup, 2),
        ],
        details: vec![DetailTable {
            title: "reproduced Table 2".to_string(),
            header: [
                "benchmark",
                "D(P*, P\u{2032})",
                "|P\u{2032}|",
                "|P*|",
                "max speedup (ds, de)",
                "min energy (ds, de)",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            rows: table2_detail_rows(&rows),
        }],
    }
}

fn table2_detail_rows(rows: &[Table2Row]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format!("{:.4}", r.coverage_d),
                r.predicted_points.to_string(),
                r.real_points.to_string(),
                format!(
                    "({:.3}, {:.3})",
                    r.max_speedup_dist.d_speedup, r.max_speedup_dist.d_energy
                ),
                format!(
                    "({:.3}, {:.3})",
                    r.min_energy_dist.d_speedup, r.min_energy_dist.d_energy
                ),
            ]
        })
        .collect()
}

/// §3.3 — sweep-cost accounting: why the training phase samples.
pub fn section_sweepcost(minutes_40: f64, minutes_all: f64, settings_all: usize) -> Section {
    Section {
        id: "sweepcost".to_string(),
        title: "§3.3 — measurement cost of a frequency sweep".to_string(),
        citation: "§3.3".to_string(),
        narrative: format!(
            "Simulated wall-clock of sweeping one micro-benchmark (clock-switch settling plus \
             enough repetitions for a stable 62.5 Hz power average): {minutes_40:.1} min at 40 \
             sampled settings, {minutes_all:.1} min over all {settings_all} settings — the \
             accounting that makes exhaustive search impractical and sampling necessary."
        ),
        metrics: vec![
            MetricCheck::quantitative(&paper::SWEEP_MINUTES_40, minutes_40, 0.25, 0.75),
            MetricCheck::quantitative(&paper::SWEEP_MINUTES_ALL, minutes_all, 0.25, 0.75),
            MetricCheck::qualitative(
                "sweepcost.sampling_required",
                "an exhaustive sweep costs \u{2265}3\u{d7} the sampled sweep",
                "§3.3",
                minutes_all >= 3.0 * minutes_40,
            ),
        ],
        details: Vec::new(),
    }
}

/// §4.1 — portability: the full pipeline re-run on the Tesla P100.
pub fn section_portability(evals: &[BenchmarkEvaluation]) -> Section {
    let improving = evals.iter().filter(|e| e.improves_on_default()).count();
    let no_heuristic = evals
        .iter()
        .all(|e| e.prediction.pareto_set.iter().all(|p| !p.heuristic));
    Section {
        id: "portability".to_string(),
        title: "§4.1 — portability to the Tesla P100".to_string(),
        citation: "§4.1".to_string(),
        narrative: format!(
            "Corpus rebuilt, model retrained and all twelve benchmarks re-evaluated on the \
             P100's single 715 MHz memory domain; predicted sets improve on the P100 default \
             for {improving}/{} benchmarks. With one domain the problem collapses to \
             core-frequency selection and no mem-L heuristic point may appear.",
            evals.len()
        ),
        metrics: vec![
            MetricCheck::qualitative(
                "portability.pipeline_runs",
                "the full train/predict/evaluate pipeline runs on the second device",
                "§4.1",
                evals.len() == paper::NUM_BENCHMARKS,
            ),
            MetricCheck::qualitative(
                "portability.no_mem_l_heuristic",
                "no mem-L heuristic point is predicted on a single-domain device",
                "§4.5",
                no_heuristic,
            ),
        ],
        details: Vec::new(),
    }
}

/// Everything `generate` computes, exposed so callers (tests, bins)
/// can reuse the underlying evaluations.
pub struct ReportInputs {
    /// Titan X evaluations of the twelve benchmarks.
    pub evals: Vec<BenchmarkEvaluation>,
    /// Tesla P100 evaluations.
    pub p100_evals: Vec<BenchmarkEvaluation>,
    /// Speedup error analysis (Fig. 6).
    pub speedup_analysis: Vec<DomainErrorAnalysis>,
    /// Energy error analysis (Fig. 7).
    pub energy_analysis: Vec<DomainErrorAnalysis>,
}

/// Run the pipeline described by `opts` and assemble the scored
/// [`Report`].
///
/// Fast mode is the same pinned reduced pipeline the golden tests
/// snapshot ([`crate::golden_table2_rows`]); full mode is the paper's
/// parameters. Both are deterministic and schedule-independent.
pub fn generate(opts: &ReportOptions) -> Result<Report> {
    Ok(generate_with_inputs(opts)?.0)
}

/// [`generate`], also returning the computed evaluations.
pub fn generate_with_inputs(opts: &ReportOptions) -> Result<(Report, ReportInputs)> {
    let engine = Engine::new(opts.jobs);
    let benches: Vec<_> = if opts.full {
        gpufreq_synth::generate_all()
    } else {
        gpufreq_synth::generate_all()
            .into_iter()
            .step_by(3)
            .collect()
    };
    let settings = if opts.full {
        gpufreq_synth::TRAINING_SETTINGS
    } else {
        GOLDEN_SETTINGS
    };
    let config = if opts.full {
        ModelConfig::default()
    } else {
        golden_config()
    };
    let workloads = gpufreq_workloads::all_workloads();

    let train = |sim: &GpuSimulator| -> Result<FreqScalingModel> {
        let data = build_training_data_with(&engine, sim, &benches, settings);
        FreqScalingModel::try_train_with(&engine, &data, &config)
    };

    let sim = Device::TitanX.simulator();
    let model = train(&sim)?;
    let evals = evaluate_all_with(&engine, &sim, &model, &workloads);
    let speedup_analysis = error_analysis(&sim, &model, &evals, Objective::Speedup);
    let energy_analysis = error_analysis(&sim, &model, &evals, Objective::Energy);

    let p100 = Device::TeslaP100.simulator();
    let p100_model = train(&p100)?;
    let p100_evals = evaluate_all_with(&engine, &p100, &p100_model, &workloads);

    // §3.3 cost accounting: one mid-intensity micro-benchmark, the same
    // index the `sweepcost` binary uses.
    let cost_bench = &gpufreq_synth::generate_all()[40];
    let cost_profile = cost_bench.profile();
    let sampled = sim.spec().clocks.sample_configs(40);
    let exhaustive = sim.spec().clocks.actual_configs();
    let minutes_40 = sim.characterize_at(&cost_profile, &sampled).sim_wall_s() / 60.0;
    let minutes_all = sim.characterize_at(&cost_profile, &exhaustive).sim_wall_s() / 60.0;

    let eval_by_name = |name: &str| -> &BenchmarkEvaluation {
        evals
            .iter()
            .find(|e| e.name == name)
            .expect("all twelve benchmarks are evaluated")
    };
    let fig5_selection: Vec<&str> = paper::FIG5_COMPUTE_DOMINATED
        .iter()
        .chain(paper::FIG5_MEMORY_DOMINATED.iter())
        .copied()
        .collect();
    let fig5_workloads: Vec<Workload> = fig5_selection
        .iter()
        .map(|n| gpufreq_workloads::workload(n).expect("known workload"))
        .collect();
    let fig5_items: Vec<(&Workload, &Characterization)> = fig5_workloads
        .iter()
        .map(|w| (w, &eval_by_name(w.name).ground_truth))
        .collect();

    let sections = vec![
        section_fig1(
            &eval_by_name("knn").ground_truth,
            &eval_by_name("mt").ground_truth,
        ),
        section_fig4(),
        section_fig5(&fig5_items),
        section_fig6(&speedup_analysis),
        section_fig7(&energy_analysis),
        section_fig8(&evals),
        section_table2(&evals),
        section_sweepcost(minutes_40, minutes_all, exhaustive.len()),
        section_portability(&p100_evals),
    ];
    let summary = summarize(&sections);

    let mut corpus = String::new();
    let _ = write!(
        corpus,
        "{} ({} of {} micro-benchmarks)",
        if opts.full { "full" } else { "fast" },
        benches.len(),
        gpufreq_synth::NUM_MICROBENCHMARKS
    );
    let provenance = Provenance {
        mode: if opts.full { "full" } else { "fast" }.to_string(),
        devices: Device::all().iter().map(|d| d.id().to_string()).collect(),
        corpus,
        settings,
        model_config: if opts.full {
            "paper (C = 1000, \u{3b5} = 0.1, \u{3b3} = 0.1)".to_string()
        } else {
            "relaxed test preset (ModelConfig::relaxed)".to_string()
        },
        model_format_version: MODEL_FORMAT_VERSION,
        workloads: workloads.len(),
        git_revision: opts
            .git_revision
            .clone()
            .unwrap_or_else(|| "(GPUFREQ_GIT_REV unset)".to_string()),
        engine: "deterministic index-ordered fan-out; output is byte-identical for every \
                 --jobs value"
            .to_string(),
        scoring: "lane-parallel batched SVR sweep (ScoringPlan, runtime SIMD dispatch); \
                  bit-identical to per-point evaluation by construction, so every number \
                  here is independent of the scoring path"
            .to_string(),
    };

    let report = Report {
        paper: PaperInfo::current(),
        provenance,
        sections,
        summary,
    };
    let inputs = ReportInputs {
        evals,
        p100_evals,
        speedup_analysis,
        energy_analysis,
    };
    Ok((report, inputs))
}
