//! Paper-vs-reproduction metric checks: deltas, tiers, scoreboard.
//!
//! A [`MetricCheck`] pairs one reproduced value with its published
//! reference (see [`reference`](mod@super::reference)), computes the
//! relative error, and grades the result into a [`Tier`]. The grading
//! thresholds are deliberately coarse — the simulator reproduces the
//! paper's *mechanisms*, not its exact silicon — so a tier change
//! signals that the reproduction drifted, not that it disagrees with
//! the hardware by some epsilon.

use super::reference::Reference;
use serde::{Deserialize, Serialize};

/// How closely a reproduced value tracks its published reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// Within the pass threshold (or a qualitative claim that holds).
    Pass,
    /// Outside the pass threshold but within the warn threshold.
    Warn,
    /// Outside the warn threshold (or a qualitative claim that fails).
    Fail,
}

impl Tier {
    /// Lower-case word used in rendered tables (`pass`/`warn`/`FAIL`).
    pub fn word(self) -> &'static str {
        match self {
            Tier::Pass => "pass",
            Tier::Warn => "warn",
            Tier::Fail => "FAIL",
        }
    }
}

/// One scored comparison between the paper and the reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricCheck {
    /// Stable machine id, unique across the whole report
    /// (`"fig6.rmse.mem_H"`); CI keys tier-regression checks on it.
    pub id: String,
    /// Human-readable name.
    pub name: String,
    /// Citation of the published value (`"§4.4, Fig. 6"`).
    pub citation: String,
    /// Published value, rendered (`"6.68 %"`, `"7/12"`, `"holds"`).
    pub paper: String,
    /// Reproduced value, rendered the same way.
    pub reproduced: String,
    /// Published value, numeric (unset for qualitative claims).
    pub paper_value: Option<f64>,
    /// Reproduced value, numeric (`1`/`0` for qualitative claims).
    pub reproduced_value: f64,
    /// `|reproduced - paper| / |paper|`, when both are numeric.
    pub rel_err: Option<f64>,
    /// The grade.
    pub tier: Tier,
}

impl MetricCheck {
    /// Compare a reproduced quantity against a published [`Reference`]:
    /// relative error at most `pass_rel` grades [`Tier::Pass`], at most
    /// `warn_rel` grades [`Tier::Warn`], anything beyond
    /// [`Tier::Fail`].
    pub fn quantitative(
        reference: &Reference,
        reproduced: f64,
        pass_rel: f64,
        warn_rel: f64,
    ) -> MetricCheck {
        let rel_err = (reproduced - reference.value).abs() / reference.value.abs().max(1e-12);
        let tier = if rel_err <= pass_rel {
            Tier::Pass
        } else if rel_err <= warn_rel {
            Tier::Warn
        } else {
            Tier::Fail
        };
        MetricCheck {
            id: reference.id.to_string(),
            name: reference.name.to_string(),
            citation: reference.citation.to_string(),
            paper: format!("{:.2}{}", reference.value, reference.unit),
            reproduced: format!("{reproduced:.2}{}", reference.unit),
            paper_value: Some(reference.value),
            reproduced_value: reproduced,
            rel_err: Some(rel_err),
            tier,
        }
    }

    /// Compare a reproduced *count* (out of the same denominator the
    /// paper uses) against a published count where **more is better**:
    /// reaching the paper's count passes, falling short by at most
    /// `warn_slack` warns, anything lower fails.
    pub fn count_at_least(
        reference: &Reference,
        reproduced: usize,
        warn_slack: usize,
    ) -> MetricCheck {
        let paper = reference.value as usize;
        let tier = if reproduced >= paper {
            Tier::Pass
        } else if reproduced + warn_slack >= paper {
            Tier::Warn
        } else {
            Tier::Fail
        };
        MetricCheck {
            id: reference.id.to_string(),
            name: reference.name.to_string(),
            citation: reference.citation.to_string(),
            paper: format!("{paper}{}", reference.unit),
            reproduced: format!("{reproduced}{}", reference.unit),
            paper_value: Some(reference.value),
            reproduced_value: reproduced as f64,
            rel_err: None,
            tier,
        }
    }

    /// Compare a reproduced integer that must match the reference
    /// exactly (clock-table structure, domain counts).
    pub fn exact_count(reference: &Reference, reproduced: usize) -> MetricCheck {
        let tier = if reproduced as f64 == reference.value {
            Tier::Pass
        } else {
            Tier::Fail
        };
        MetricCheck {
            id: reference.id.to_string(),
            name: reference.name.to_string(),
            citation: reference.citation.to_string(),
            paper: format!("{}{}", reference.value as usize, reference.unit),
            reproduced: format!("{reproduced}{}", reference.unit),
            paper_value: Some(reference.value),
            reproduced_value: reproduced as f64,
            rel_err: None,
            tier,
        }
    }

    /// Grade a qualitative claim of the paper: `holds` passes, anything
    /// else fails (there is no meaningful middle ground for a claim).
    pub fn qualitative(id: &str, name: &str, citation: &str, holds: bool) -> MetricCheck {
        MetricCheck {
            id: id.to_string(),
            name: name.to_string(),
            citation: citation.to_string(),
            paper: "holds".to_string(),
            reproduced: if holds { "holds" } else { "violated" }.to_string(),
            paper_value: None,
            reproduced_value: if holds { 1.0 } else { 0.0 },
            rel_err: None,
            tier: if holds { Tier::Pass } else { Tier::Fail },
        }
    }

    /// The relative error rendered for tables (`"12%"`), or `"—"` when
    /// the comparison is not a ratio.
    pub fn rel_err_display(&self) -> String {
        match self.rel_err {
            Some(e) => format!("{:.0}%", e * 100.0),
            None => "—".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REF: Reference = Reference {
        id: "test.metric",
        name: "a metric",
        unit: "%",
        value: 10.0,
        citation: "§0",
    };

    #[test]
    fn quantitative_tiers_by_relative_error() {
        assert_eq!(
            MetricCheck::quantitative(&REF, 11.0, 0.25, 0.75).tier,
            Tier::Pass
        );
        assert_eq!(
            MetricCheck::quantitative(&REF, 15.0, 0.25, 0.75).tier,
            Tier::Warn
        );
        assert_eq!(
            MetricCheck::quantitative(&REF, 30.0, 0.25, 0.75).tier,
            Tier::Fail
        );
        let m = MetricCheck::quantitative(&REF, 12.0, 0.25, 0.75);
        assert!((m.rel_err.unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(m.rel_err_display(), "20%");
        assert_eq!(m.paper, "10.00%");
    }

    #[test]
    fn counts_and_claims_grade_as_specified() {
        assert_eq!(MetricCheck::count_at_least(&REF, 10, 2).tier, Tier::Pass);
        assert_eq!(MetricCheck::count_at_least(&REF, 11, 2).tier, Tier::Pass);
        assert_eq!(MetricCheck::count_at_least(&REF, 8, 2).tier, Tier::Warn);
        assert_eq!(MetricCheck::count_at_least(&REF, 7, 2).tier, Tier::Fail);
        assert_eq!(MetricCheck::exact_count(&REF, 10).tier, Tier::Pass);
        assert_eq!(MetricCheck::exact_count(&REF, 9).tier, Tier::Fail);
        let q = MetricCheck::qualitative("q", "claim", "§1", true);
        assert_eq!(q.tier, Tier::Pass);
        assert_eq!(q.rel_err_display(), "—");
        assert_eq!(
            MetricCheck::qualitative("q", "claim", "§1", false).tier,
            Tier::Fail
        );
    }
}
