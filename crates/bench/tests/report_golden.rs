//! Golden test for the checked-in `--fast` reproduction report.
//!
//! `REPRODUCTION.md` and `reproduction.json` at the repository root are
//! generated artifacts: this test regenerates the fast report and
//! compares byte-for-byte, so any drift in the pipeline — clock
//! tables, sampling, solver, evaluation, rendering — shows up as a CI
//! failure naming the first line that moved. After an *intentional*
//! change:
//!
//! ```sh
//! GPUFREQ_BLESS=1 cargo test -p gpufreq-bench --test report_golden
//! ```
//!
//! and commit the rewritten report together with the change.
//!
//! The same generated pair also anchors the engine contract for the
//! report path: the fast report is produced once on a serial engine
//! and once on a 4-way engine, and both must render byte-identical
//! documents before the snapshot comparison runs.

use gpufreq_bench::report::{generate, render, Report, ReportOptions};
use std::path::{Path, PathBuf};

/// Repository root (this crate lives at `crates/bench`).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repository root exists")
}

fn fast_report(jobs: usize) -> Report {
    generate(&ReportOptions {
        full: false,
        jobs: Some(jobs),
        git_revision: None,
    })
    .expect("fast report generates")
}

fn assert_matches_snapshot(name: &str, actual: &str) {
    let path = repo_root().join(name);
    if std::env::var_os("GPUFREQ_BLESS").is_some() {
        std::fs::write(&path, actual).expect("write report snapshot");
        eprintln!("[golden] blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing checked-in report {} ({e}); run with GPUFREQ_BLESS=1 to create it",
            path.display()
        )
    });
    if expected != actual {
        let line = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map_or_else(
                || expected.lines().count().min(actual.lines().count()) + 1,
                |i| i + 1,
            );
        panic!(
            "checked-in report {} drifted at line {line}:\n  expected: {:?}\n  actual:   {:?}\n\
             if the change is intentional, re-bless with GPUFREQ_BLESS=1",
            path.display(),
            expected.lines().nth(line - 1).unwrap_or("<eof>"),
            actual.lines().nth(line - 1).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn fast_report_is_schedule_independent_and_matches_the_checked_in_copy() {
    let serial = fast_report(1);
    let parallel = fast_report(4);
    let markdown = render::render_markdown(&serial);
    let json = render::render_json(&serial);
    // Engine contract first: the report must not depend on the worker
    // count at the byte level.
    assert_eq!(
        markdown,
        render::render_markdown(&parallel),
        "REPRODUCTION.md must be byte-identical for --jobs 1 and --jobs 4"
    );
    assert_eq!(
        json,
        render::render_json(&parallel),
        "reproduction.json must be byte-identical for --jobs 1 and --jobs 4"
    );
    // Then the golden comparison against the repository-root copies.
    assert_matches_snapshot(render::MARKDOWN_FILE, &markdown);
    assert_matches_snapshot(render::JSON_FILE, &json);
    // The JSON side must parse back into the same report (the CI
    // tier-regression gate depends on this round trip).
    let parsed = render::parse_json(&json).expect("reproduction.json parses back");
    assert_eq!(parsed, serial);
    assert!(render::tier_regressions(&parsed, &serial).is_empty());
}

#[test]
fn report_structure_is_complete() {
    let report = fast_report(2);
    // One section per reproduced figure/table, in paper order.
    let ids: Vec<&str> = report.sections.iter().map(|s| s.id.as_str()).collect();
    assert_eq!(
        ids,
        [
            "fig1",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "table2",
            "sweepcost",
            "portability"
        ]
    );
    // Every section is cited and scored, and metric ids are unique
    // report-wide (the tier gate keys on them).
    let mut seen = std::collections::HashSet::new();
    for section in &report.sections {
        assert!(
            section.citation.contains('§'),
            "{} has no citation",
            section.id
        );
        assert!(!section.metrics.is_empty(), "{} has no metrics", section.id);
        for metric in &section.metrics {
            assert!(
                seen.insert(metric.id.clone()),
                "duplicate metric id {}",
                metric.id
            );
        }
    }
    // The scoreboard adds up.
    let total = report.summary.pass + report.summary.warn + report.summary.fail;
    assert_eq!(total, seen.len());
    assert_eq!(report.summary.sections.len(), report.sections.len());
}
