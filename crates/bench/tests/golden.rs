//! Golden regression tests for the figure/table binaries.
//!
//! The experiment binaries' CSV artifacts used to be checked by eye;
//! these tests snapshot the deterministic generators behind `fig4` and
//! `table2` under `artifacts/test/` and compare byte-for-byte, so a
//! drift in the clock tables, the sampling scheme, the solver, or the
//! evaluation shows up as a CI failure naming the figure it moved.
//!
//! To regenerate the snapshots after an *intentional* change:
//!
//! ```sh
//! GPUFREQ_BLESS=1 cargo test -p gpufreq-bench --test golden
//! ```
//!
//! and commit the rewritten files together with the change that moved
//! them.

use gpufreq_bench::{fig4_csv, golden_table2_csv};
use gpufreq_core::Engine;
use gpufreq_sim::Device;
use std::path::{Path, PathBuf};

/// Directory the committed snapshots live in (relative to this crate).
fn snapshot_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("artifacts/test")
}

/// Compare `actual` against the committed snapshot `name`, or rewrite
/// the snapshot when `GPUFREQ_BLESS` is set.
fn assert_matches_snapshot(name: &str, actual: &str) {
    let path = snapshot_dir().join(name);
    if std::env::var_os("GPUFREQ_BLESS").is_some() {
        std::fs::create_dir_all(snapshot_dir()).expect("create snapshot directory");
        std::fs::write(&path, actual).expect("write snapshot");
        eprintln!("[golden] blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run with GPUFREQ_BLESS=1 to create it",
            path.display()
        )
    });
    if expected != actual {
        // Point at the first differing line rather than dumping both
        // files whole.
        let line = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map_or_else(
                || expected.lines().count().min(actual.lines().count()) + 1,
                |i| i + 1,
            );
        panic!(
            "snapshot {} drifted at line {line}:\n  expected: {:?}\n  actual:   {:?}\n\
             if the change is intentional, re-bless with GPUFREQ_BLESS=1",
            path.display(),
            expected.lines().nth(line - 1).unwrap_or("<eof>"),
            actual.lines().nth(line - 1).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn fig4_titan_x_csv_matches_snapshot() {
    assert_matches_snapshot("fig4_titan_x.csv", &fig4_csv(&Device::TitanX.spec()));
}

#[test]
fn fig4_tesla_p100_csv_matches_snapshot() {
    assert_matches_snapshot("fig4_tesla_p100.csv", &fig4_csv(&Device::TeslaP100.spec()));
}

#[test]
fn table2_golden_pipeline_matches_snapshot() {
    // The pinned reduced pipeline (see `golden_table2_rows`): small
    // enough for CI, same code path as the paper-scale `table2` binary.
    let sim = Device::TitanX.simulator();
    assert_matches_snapshot(
        "table2_fast.csv",
        &golden_table2_csv(&sim, &Engine::default()),
    );
}

#[test]
fn table2_golden_pipeline_is_schedule_independent() {
    // The snapshot is also the determinism anchor for the bench path:
    // serial and 4-way parallel runs must render byte-identical CSV.
    let sim = Device::TitanX.simulator();
    assert_eq!(
        golden_table2_csv(&sim, &Engine::serial()),
        golden_table2_csv(&sim, &Engine::new(Some(4))),
    );
}
