//! Algorithm 1 (the paper's simple Pareto scan) vs the `O(n log n)`
//! sort-based front — the trade-off §3.4 alludes to when citing faster
//! algorithms. At the paper's problem size (≤ 177 points per kernel)
//! both are microseconds; the gap opens at larger candidate sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpufreq_pareto::{pareto_set_fast, pareto_set_simple, Objectives};
use std::hint::black_box;

/// Deterministic pseudo-random point cloud in objective space.
fn cloud(n: usize) -> Vec<Objectives> {
    let mut state: u64 = 0x9E3779B97F4A7C15;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    (0..n)
        .map(|_| Objectives::new(0.1 + 1.3 * next(), 0.4 + 1.4 * next()))
        .collect()
}

fn bench_pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_front");
    for &n in &[177usize, 1000, 10_000] {
        let points = cloud(n);
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &points, |b, p| {
            b.iter(|| pareto_set_simple(black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("sort_scan", n), &points, |b, p| {
            b.iter(|| pareto_set_fast(black_box(p)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows: these benches exist to show scaling shape, and the
    // full suite must run in minutes, not hours.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pareto
}
criterion_main!(benches);
