//! Sampling ablation (§3.3): how does the number of sampled frequency
//! settings per training benchmark affect corpus-building cost?
//!
//! The paper settles on 40 of 177 settings; this bench measures the
//! sweep cost at several sampling levels and prints the resulting
//! model quality once per run (held-out RMSE of a linear-SVR speedup
//! head trained on each corpus).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpufreq_core::build_training_data;
use gpufreq_ml::{rmse, train_svr, SvrParams};
use gpufreq_sim::GpuSimulator;
use gpufreq_synth::MicroBenchmark;
use std::hint::black_box;

fn subset() -> Vec<MicroBenchmark> {
    gpufreq_synth::generate_all()
        .into_iter()
        .step_by(4)
        .collect()
}

fn report_quality(sim: &GpuSimulator, benches: &[MicroBenchmark]) {
    // Train on sampled corpora, evaluate on the exhaustive corpus.
    let full = build_training_data(sim, benches, usize::MAX);
    for &n in &[6usize, 20, 40, 80] {
        let data = build_training_data(sim, benches, n);
        let params = SvrParams {
            c: 100.0,
            max_iter: 100_000,
            ..SvrParams::paper_speedup()
        };
        let model = train_svr(&data.speedup, &params);
        let preds: Vec<f64> = full.speedup.xs().iter().map(|r| model.predict(r)).collect();
        eprintln!(
            "[ablation] {n:>3} settings ({} samples): exhaustive-corpus RMSE {:.4}",
            data.len(),
            rmse(full.speedup.ys(), &preds)
        );
    }
}

fn bench_sampling(c: &mut Criterion) {
    let sim = GpuSimulator::titan_x();
    let benches = subset();
    report_quality(&sim, &benches);
    let mut group = c.benchmark_group("ablation_sampling");
    group.sample_size(10);
    for &n in &[6usize, 20, 40, 80, 177] {
        group.bench_with_input(BenchmarkId::new("build_corpus", n), &n, |b, &n| {
            b.iter(|| build_training_data(black_box(&sim), &benches, n))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows: these benches exist to show scaling shape, and the
    // full suite must run in minutes, not hours.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sampling
}
criterion_main!(benches);
