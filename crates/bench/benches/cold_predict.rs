//! The cold-predict path: what a `gpufreq-serve` cache miss costs.
//!
//! A unique (never-seen) kernel source pays the full
//! `parse → analyze → score → Pareto` pipeline; this bench measures
//! that cost end to end for one kernel on every registry device, plus
//! the two halves separately (front-end analysis vs. model scoring),
//! so the ROADMAP's "sub-millisecond cold predict" claim is a measured
//! number instead of an assertion and a regression in either half is
//! attributable from the bench output alone.
//!
//! Planners train once in setup with the test-suite preset
//! ([`ModelConfig::relaxed`] on the fast corpus) — the scoring cost
//! depends on the support-vector count, which the preset keeps at CI
//! scale; paper-scale models are ~5x more vectors with the same shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpufreq_core::{analyze_source, Corpus, ModelConfig, Planner, TrainedPlanner};
use std::hint::black_box;

/// One planner per registry device, trained at test-suite scale.
fn planners() -> Vec<TrainedPlanner> {
    Planner::builder()
        .corpus(Corpus::Fast)
        .settings(8)
        .model_config(ModelConfig::relaxed())
        .train_all_devices()
        .expect("fast corpus trains on every device")
}

/// The benchmarked kernel: k-NN, a mid-sized real workload.
fn source() -> String {
    gpufreq_workloads::workload("knn").unwrap().source
}

fn bench_cold_predict(c: &mut Criterion) {
    let planners = planners();
    let source = source();
    let mut group = c.benchmark_group("cold_predict");
    for planner in &planners {
        group.bench_with_input(
            BenchmarkId::from_parameter(planner.device().id()),
            planner,
            |b, planner| {
                b.iter(|| {
                    // The serve-daemon cache-miss path without the
                    // cache: full parse + analysis + batched scoring
                    // of every device configuration + Pareto.
                    let (features, _profile) =
                        analyze_source(black_box(source.as_str()), None).unwrap();
                    planner.predict(&features).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    let planners = planners();
    let source = source();

    // Front-end half: source text to static features + profile.
    c.bench_function("cold_predict_stage/parse_analyze", |b| {
        b.iter(|| analyze_source(black_box(source.as_str()), None).unwrap())
    });

    // Scoring half: static features to the predicted Pareto set over
    // the full per-device configuration block.
    let (features, _) = analyze_source(&source, None).unwrap();
    let mut group = c.benchmark_group("cold_predict_stage/score_pareto");
    for planner in &planners {
        group.bench_with_input(
            BenchmarkId::from_parameter(planner.device().id()),
            planner,
            |b, planner| b.iter(|| planner.predict(black_box(&features)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cold_predict, bench_stages);
criterion_main!(benches);
