//! Model-selection ablation (§3.4).
//!
//! The paper reports comparing OLS, LASSO and SVR for speedup modeling,
//! and polynomial regression vs SVR for normalized energy, before
//! selecting linear-SVR / RBF-SVR. This bench trains every candidate on
//! the same corpus, reports its wall-clock cost, and prints the held-out
//! RMSE of each (the quality side of the ablation) once per run.

use criterion::{criterion_group, criterion_main, Criterion};
use gpufreq_core::build_training_data;
use gpufreq_ml::{
    rmse, train_lasso, train_ols, train_poly, train_svr, Dataset, LassoParams, SvmKernel, SvrParams,
};
use gpufreq_sim::GpuSimulator;
use std::hint::black_box;
use std::sync::OnceLock;

struct Corpus {
    speedup_train: Dataset,
    speedup_test: Dataset,
    energy_train: Dataset,
    energy_test: Dataset,
}

fn corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let sim = GpuSimulator::titan_x();
        let benches: Vec<_> = gpufreq_synth::generate_all()
            .into_iter()
            .step_by(3)
            .collect();
        let data = build_training_data(&sim, &benches, 12);
        let mut speedup = data.speedup.clone();
        let mut energy = data.energy.clone();
        speedup.shuffle(42);
        energy.shuffle(42);
        let (st, se) = speedup.split(0.8);
        let (et, ee) = energy.split(0.8);
        Corpus {
            speedup_train: st,
            speedup_test: se,
            energy_train: et,
            energy_test: ee,
        }
    })
}

fn svr(kernel: SvmKernel) -> SvrParams {
    // Capped like the svr bench: the ablation compares model classes,
    // not solver budgets.
    SvrParams {
        c: 100.0,
        kernel,
        max_iter: 100_000,
        ..SvrParams::paper_speedup()
    }
}

fn report_quality() {
    let c = corpus();
    let eval = |name: &str, preds: Vec<f64>, test: &Dataset| {
        eprintln!(
            "[ablation] {name}: held-out RMSE {:.4}",
            rmse(test.ys(), &preds)
        );
    };
    // Speedup candidates.
    let ols = train_ols(&c.speedup_train);
    eval(
        "speedup/ols",
        ols.predict_batch(c.speedup_test.xs()),
        &c.speedup_test,
    );
    let lasso = train_lasso(&c.speedup_train, &LassoParams::default());
    eval(
        "speedup/lasso",
        lasso.predict_batch(c.speedup_test.xs()),
        &c.speedup_test,
    );
    let lin_svr = train_svr(&c.speedup_train, &svr(SvmKernel::Linear));
    eval(
        "speedup/svr-linear",
        lin_svr.predict_batch(c.speedup_test.xs()),
        &c.speedup_test,
    );
    // Energy candidates.
    let poly = train_poly(&c.energy_train, 1e-6);
    eval(
        "energy/poly2",
        poly.predict_batch(c.energy_test.xs()),
        &c.energy_test,
    );
    let rbf = train_svr(&c.energy_train, &svr(SvmKernel::Rbf { gamma: 0.1 }));
    eval(
        "energy/svr-rbf",
        rbf.predict_batch(c.energy_test.xs()),
        &c.energy_test,
    );
}

fn bench_models(c: &mut Criterion) {
    report_quality();
    let data = corpus();
    let mut group = c.benchmark_group("ablation_models");
    group.sample_size(10);
    group.bench_function("speedup/ols", |b| {
        b.iter(|| train_ols(black_box(&data.speedup_train)))
    });
    group.bench_function("speedup/lasso", |b| {
        b.iter(|| train_lasso(black_box(&data.speedup_train), &LassoParams::default()))
    });
    group.bench_function("speedup/svr-linear", |b| {
        b.iter(|| train_svr(black_box(&data.speedup_train), &svr(SvmKernel::Linear)))
    });
    group.bench_function("energy/poly2", |b| {
        b.iter(|| train_poly(black_box(&data.energy_train), 1e-6))
    });
    group.bench_function("energy/svr-rbf", |b| {
        b.iter(|| {
            train_svr(
                black_box(&data.energy_train),
                &svr(SvmKernel::Rbf { gamma: 0.1 }),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows: these benches exist to show scaling shape, and the
    // full suite must run in minutes, not hours.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_models
}
criterion_main!(benches);
