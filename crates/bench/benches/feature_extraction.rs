//! Front-end throughput: lexing, parsing and the static feature pass
//! on the twelve test benchmarks.
//!
//! The paper's prediction phase cost is dominated by feature
//! extraction (everything else is a few hundred kernel evaluations);
//! this bench confirms extraction is microseconds-per-kernel, i.e. the
//! framework can "quickly derive the best configurations for any new
//! application" (§1.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpufreq_kernel::{analyze_kernel_with, parse, StaticFeatures};
use std::hint::black_box;

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    for w in gpufreq_workloads::all_workloads() {
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &w, |b, w| {
            b.iter(|| parse(black_box(&w.source)).unwrap())
        });
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_extraction");
    for w in gpufreq_workloads::all_workloads() {
        let program = w.program();
        let kernel = program.first_kernel().unwrap();
        let config = w.analysis_config();
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &w, |b, _| {
            b.iter(|| {
                let analysis = analyze_kernel_with(black_box(kernel), &config).unwrap();
                StaticFeatures::from_analysis(&analysis)
            })
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    // Source text to feature vector, the full static path of Fig. 3.
    let knn = gpufreq_workloads::workload("knn").unwrap();
    c.bench_function("source_to_features/knn", |b| {
        b.iter(|| {
            let program = parse(black_box(&knn.source)).unwrap();
            let analysis =
                analyze_kernel_with(program.first_kernel().unwrap(), &knn.analysis_config())
                    .unwrap();
            StaticFeatures::from_analysis(&analysis)
        })
    });
}

criterion_group! {
    name = benches;
    // Short windows: these benches exist to show scaling shape, and the
    // full suite must run in minutes, not hours.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_parse, bench_analysis, bench_end_to_end
}
criterion_main!(benches);
