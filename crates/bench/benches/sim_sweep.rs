//! Simulator sweep throughput: sequential runs vs the scoped-thread-parallel
//! `sweep`, and the cost of a full 177-configuration characterization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpufreq_sim::GpuSimulator;
use std::hint::black_box;

fn bench_sweep(c: &mut Criterion) {
    let sim = GpuSimulator::titan_x();
    let profile = gpufreq_workloads::workload("matmul").unwrap().profile();
    let configs = sim.spec().clocks.actual_configs();
    let mut group = c.benchmark_group("sim_sweep");
    group.sample_size(20);
    group.bench_with_input(
        BenchmarkId::new("sequential", configs.len()),
        &configs,
        |b, cfgs| {
            b.iter(|| {
                for &cfg in cfgs.iter() {
                    black_box(sim.run(&profile, cfg).unwrap());
                }
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("parallel", configs.len()),
        &configs,
        |b, cfgs| b.iter(|| sim.sweep(black_box(&profile), cfgs).unwrap()),
    );
    group.bench_function("characterize_177", |b| {
        b.iter(|| sim.characterize(black_box(&profile)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows: these benches exist to show scaling shape, and the
    // full suite must run in minutes, not hours.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sweep
}
criterion_main!(benches);
