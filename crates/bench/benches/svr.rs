//! SVR training and inference cost as a function of training-set size.
//!
//! Quantifies the cost of the paper's training phase (§3.4): SMO
//! training of the linear (speedup) and RBF (energy) heads at various
//! corpus sizes, plus single-row prediction latency — the quantity that
//! makes the *static* approach attractive (prediction needs no kernel
//! execution at all).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpufreq_core::build_training_data;
use gpufreq_ml::{train_svr, SvmKernel, SvrParams};
use gpufreq_sim::GpuSimulator;
use std::hint::black_box;

fn params(kernel: SvmKernel) -> SvrParams {
    // Moderate C and a tight iteration cap keep each training run
    // representative but bounded (the shape across corpus sizes is the
    // quantity of interest).
    SvrParams {
        c: 100.0,
        kernel,
        max_iter: 100_000,
        ..SvrParams::paper_speedup()
    }
}

fn bench_training(c: &mut Criterion) {
    let sim = GpuSimulator::titan_x();
    let benches = gpufreq_synth::generate_all();
    let mut group = c.benchmark_group("svr_train");
    group.sample_size(10);
    for &n_benches in &[8usize, 16, 32] {
        let subset: Vec<_> = benches.iter().take(n_benches).cloned().collect();
        let data = build_training_data(&sim, &subset, 10);
        group.bench_with_input(
            BenchmarkId::new("linear", data.speedup.len()),
            &data,
            |b, data| b.iter(|| train_svr(black_box(&data.speedup), &params(SvmKernel::Linear))),
        );
        group.bench_with_input(
            BenchmarkId::new("rbf", data.energy.len()),
            &data,
            |b, data| {
                b.iter(|| {
                    train_svr(
                        black_box(&data.energy),
                        &params(SvmKernel::Rbf { gamma: 0.1 }),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let sim = GpuSimulator::titan_x();
    let benches: Vec<_> = gpufreq_synth::generate_all().into_iter().take(32).collect();
    let data = build_training_data(&sim, &benches, 10);
    let linear = train_svr(&data.speedup, &params(SvmKernel::Linear));
    let rbf = train_svr(&data.energy, &params(SvmKernel::Rbf { gamma: 0.1 }));
    let row = data.speedup.xs()[0].clone();
    let mut group = c.benchmark_group("svr_predict");
    group.bench_function("linear", |b| b.iter(|| linear.predict(black_box(&row))));
    group.bench_function("rbf", |b| b.iter(|| rbf.predict(black_box(&row))));
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows: these benches exist to show scaling shape, and the
    // full suite must run in minutes, not hours.
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_training, bench_prediction
}
criterion_main!(benches);
