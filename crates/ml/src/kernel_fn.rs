//! Kernel functions for support vector regression.

use serde::{Deserialize, Serialize};

/// A positive-definite kernel `K(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SvmKernel {
    /// `K(a, b) = a · b` — used for the paper's speedup model (§3.4).
    Linear,
    /// `K(a, b) = exp(-γ ‖a − b‖²)` — used for the paper's normalized
    /// energy model with `γ = 0.1` (§3.4).
    Rbf {
        /// Width parameter γ.
        gamma: f64,
    },
    /// `K(a, b) = (γ a·b + c₀)^d` — provided for ablations.
    Polynomial {
        /// Scale γ.
        gamma: f64,
        /// Offset c₀.
        coef0: f64,
        /// Degree d.
        degree: u32,
    },
}

impl SvmKernel {
    /// Evaluate the kernel on two rows of equal width.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match *self {
            SvmKernel::Linear => dot(a, b),
            SvmKernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
            SvmKernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => (gamma * dot(a, b) + coef0).powi(degree as i32),
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_dot_product() {
        let k = SvmKernel::Linear;
        assert_eq!(k.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn rbf_is_one_at_identity_and_decays() {
        let k = SvmKernel::Rbf { gamma: 0.1 };
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-15);
        let near = k.eval(&[0.0, 0.0], &[0.1, 0.0]);
        let far = k.eval(&[0.0, 0.0], &[3.0, 0.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn rbf_is_symmetric() {
        let k = SvmKernel::Rbf { gamma: 0.5 };
        let (a, b) = ([0.2, 0.9, -1.0], [1.0, 0.0, 0.5]);
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
    }

    #[test]
    fn polynomial_degrees() {
        let k = SvmKernel::Polynomial {
            gamma: 1.0,
            coef0: 1.0,
            degree: 2,
        };
        // (1*1 + 1)^2 = 4
        assert_eq!(k.eval(&[1.0], &[1.0]), 4.0);
    }
}
