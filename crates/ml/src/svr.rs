//! ε-support-vector regression trained with SMO.
//!
//! Implements the standard libsvm formulation: the ε-SVR dual is an
//! SVM-shaped problem over `2n` variables `(α, α*)` with labels
//! `y ∈ {+1, −1}`, solved by sequential minimal optimization with
//! second-order working-set selection and an LRU kernel-row cache.
//! The paper's hyper-parameters are `C = 1000`, `ε = 0.1` for both
//! models, a linear kernel for speedup and an RBF kernel with
//! `γ = 0.1` for normalized energy (§3.4).

use crate::dataset::Dataset;
use crate::kernel_fn::SvmKernel;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

const TAU: f64 = 1e-12;

/// Hyper-parameters of one ε-SVR training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvrParams {
    /// Box constraint `C`.
    pub c: f64,
    /// Tube width `ε`.
    pub epsilon: f64,
    /// Kernel function.
    pub kernel: SvmKernel,
    /// KKT violation tolerance for convergence.
    pub tol: f64,
    /// Hard iteration cap (0 = libsvm-style heuristic of
    /// `max(10^7, 100·n)`).
    pub max_iter: usize,
    /// Number of kernel rows kept in the LRU cache.
    pub cache_rows: usize,
}

impl SvrParams {
    /// The paper's speedup model: linear kernel, `C = 1000`.
    ///
    /// Two solver-level adaptations from the literal §3.4 values, both
    /// documented in DESIGN.md:
    /// * `ε = 0.01` rather than `0.1` — the tube is an *absolute* error
    ///   band, and our simulator's speedup targets reach down to ~0.1
    ///   (deep down-clocked configurations), where a 0.1 tube alone
    ///   permits 100% relative error. A 0.01 tube is the proportional
    ///   equivalent of the paper's setting on its own data scale.
    /// * `max_iter` is capped: with `C = 1000` full KKT convergence
    ///   needs tens of millions of SMO iterations for a negligible
    ///   objective improvement; libsvm guards its solver the same way.
    pub fn paper_speedup() -> SvrParams {
        SvrParams {
            c: 1000.0,
            epsilon: 0.01,
            kernel: SvmKernel::Linear,
            tol: 1e-3,
            max_iter: 800_000,
            cache_rows: 4240,
        }
    }

    /// The paper's normalized-energy model: RBF kernel with `γ = 0.1`,
    /// `C = 1000` (see [`SvrParams::paper_speedup`] on the `ε` and
    /// iteration-cap adaptations).
    pub fn paper_energy() -> SvrParams {
        SvrParams {
            c: 1000.0,
            epsilon: 0.01,
            kernel: SvmKernel::Rbf { gamma: 0.1 },
            tol: 1e-3,
            max_iter: 800_000,
            cache_rows: 4240,
        }
    }
}

/// A trained ε-SVR model: support vectors, their coefficients
/// `β = α − α*`, and the bias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvrModel {
    kernel: SvmKernel,
    support_x: Vec<Vec<f64>>,
    beta: Vec<f64>,
    bias: f64,
    iterations: usize,
}

impl SvrModel {
    /// Predict the target for one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut acc = self.bias;
        for (sv, &b) in self.support_x.iter().zip(&self.beta) {
            acc += b * self.kernel.eval(sv, x);
        }
        acc
    }

    /// Predict a batch of rows.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Number of support vectors retained.
    pub fn num_support_vectors(&self) -> usize {
        self.support_x.len()
    }

    /// SMO iterations used during training.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The kernel this model was trained with.
    pub fn kernel(&self) -> SvmKernel {
        self.kernel
    }
}

/// Train an ε-SVR on `data`.
///
/// # Panics
/// If the dataset is empty.
pub fn train_svr(data: &Dataset, params: &SvrParams) -> SvrModel {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let n = data.len();
    let mut solver = Solver::new(data, params);
    let iterations = solver.solve();
    let bias = solver.bias();
    // β_i = α_i − α*_i; keep only support vectors.
    let mut support_x = Vec::new();
    let mut beta = Vec::new();
    for i in 0..n {
        let b = solver.alpha[i] - solver.alpha[n + i];
        if b.abs() > 1e-12 {
            support_x.push(data.xs()[i].clone());
            beta.push(b);
        }
    }
    SvrModel {
        kernel: params.kernel,
        support_x,
        beta,
        bias,
        iterations,
    }
}

/// SMO solver state over the extended `2n`-variable problem.
struct Solver<'a> {
    data: &'a Dataset,
    params: &'a SvrParams,
    n: usize,
    /// Extended labels: `+1` for the α block, `−1` for the α* block.
    y: Vec<f64>,
    /// Extended variables `(α, α*)`.
    alpha: Vec<f64>,
    /// Gradient of the dual objective.
    grad: Vec<f64>,
    /// Diagonal of the base kernel matrix.
    qd: Vec<f64>,
    cache: RowCache,
}

impl<'a> Solver<'a> {
    fn new(data: &'a Dataset, params: &'a SvrParams) -> Solver<'a> {
        let n = data.len();
        let mut y = vec![1.0; 2 * n];
        y[n..].fill(-1.0);
        // p_s = ε − y_s for the α block, ε + y_s for the α* block;
        // gradient starts at p because α = 0.
        let mut grad = vec![0.0; 2 * n];
        for i in 0..n {
            grad[i] = params.epsilon - data.ys()[i];
            grad[n + i] = params.epsilon + data.ys()[i];
        }
        let qd = (0..n)
            .map(|i| {
                params
                    .kernel
                    .eval(data.xs()[i].as_slice(), data.xs()[i].as_slice())
            })
            .collect();
        Solver {
            data,
            params,
            n,
            y,
            alpha: vec![0.0; 2 * n],
            grad,
            qd,
            cache: RowCache::new(params.cache_rows),
        }
    }

    /// Base-kernel row for extended index `s` (row of `K(x_{s mod n}, ·)`).
    fn row(&mut self, s: usize) -> std::rc::Rc<Vec<f64>> {
        let i = s % self.n;
        let kernel = self.params.kernel;
        let xs = self.data.xs();
        self.cache.get(i, || {
            (0..xs.len()).map(|j| kernel.eval(&xs[i], &xs[j])).collect()
        })
    }

    fn in_up(&self, s: usize) -> bool {
        (self.y[s] > 0.0 && self.alpha[s] < self.params.c)
            || (self.y[s] < 0.0 && self.alpha[s] > 0.0)
    }

    fn in_low(&self, s: usize) -> bool {
        (self.y[s] > 0.0 && self.alpha[s] > 0.0)
            || (self.y[s] < 0.0 && self.alpha[s] < self.params.c)
    }

    /// Second-order working-set selection (libsvm WSS3). Returns
    /// `None` when the KKT gap is below tolerance.
    fn select_working_set(&mut self) -> Option<(usize, usize)> {
        let two_n = 2 * self.n;
        let mut g_max = f64::NEG_INFINITY;
        let mut i = usize::MAX;
        for s in 0..two_n {
            if self.in_up(s) {
                let v = -self.y[s] * self.grad[s];
                if v >= g_max {
                    g_max = v;
                    i = s;
                }
            }
        }
        if i == usize::MAX {
            return None;
        }
        let row_i = self.row(i);
        let i_base = i % self.n;
        let y_i = self.y[i];
        let qd_i = self.qd[i_base];
        let mut g_max2 = f64::NEG_INFINITY;
        let mut j = usize::MAX;
        let mut obj_min = f64::INFINITY;
        // Split the extended space into the α block (y_s = +1, s < n)
        // and the α* block (y_s = −1) so the inner loop needs no modulo.
        for s in 0..two_n {
            let (s_base, y_s) = if s < self.n {
                (s, 1.0)
            } else {
                (s - self.n, -1.0)
            };
            let in_low = if y_s > 0.0 {
                self.alpha[s] > 0.0
            } else {
                self.alpha[s] < self.params.c
            };
            debug_assert_eq!(in_low, self.in_low(s));
            if !in_low {
                continue;
            }
            let yg = y_s * self.grad[s];
            g_max2 = g_max2.max(yg);
            let grad_diff = g_max + yg;
            if grad_diff > 0.0 {
                // Q_i[s] = y_i y_s K(i, s); quad coefficient of the
                // two-variable subproblem.
                let quad = qd_i + self.qd[s_base] - 2.0 * y_i * y_s * row_i[s_base];
                let quad = if quad > 0.0 { quad } else { TAU };
                let obj = -(grad_diff * grad_diff) / quad;
                if obj <= obj_min {
                    obj_min = obj;
                    j = s;
                }
            }
        }
        if g_max + g_max2 < self.params.tol || j == usize::MAX {
            return None;
        }
        Some((i, j))
    }

    /// Run SMO to convergence; returns the iteration count.
    fn solve(&mut self) -> usize {
        let max_iter = if self.params.max_iter == 0 {
            // libsvm heuristic: at least 10M, or 100 iterations per
            // variable for very large problems.
            (100 * 2 * self.n).max(10_000_000)
        } else {
            self.params.max_iter
        };
        let c = self.params.c;
        let mut it = 0;
        while it < max_iter {
            let Some((i, j)) = self.select_working_set() else {
                break;
            };
            it += 1;
            let i_base = i % self.n;
            let j_base = j % self.n;
            let row_i = self.row(i);
            let row_j = self.row(j);
            let k_ij = row_i[j_base];
            let (old_ai, old_aj) = (self.alpha[i], self.alpha[j]);
            if self.y[i] != self.y[j] {
                let quad = (self.qd[i_base] + self.qd[j_base] + 2.0 * k_ij).max(TAU);
                let delta = (-self.grad[i] - self.grad[j]) / quad;
                let diff = self.alpha[i] - self.alpha[j];
                self.alpha[i] += delta;
                self.alpha[j] += delta;
                if diff > 0.0 {
                    if self.alpha[j] < 0.0 {
                        self.alpha[j] = 0.0;
                        self.alpha[i] = diff;
                    }
                } else if self.alpha[i] < 0.0 {
                    self.alpha[i] = 0.0;
                    self.alpha[j] = -diff;
                }
                if diff > 0.0 {
                    if self.alpha[i] > c {
                        self.alpha[i] = c;
                        self.alpha[j] = c - diff;
                    }
                } else if self.alpha[j] > c {
                    self.alpha[j] = c;
                    self.alpha[i] = c + diff;
                }
            } else {
                let quad = (self.qd[i_base] + self.qd[j_base] - 2.0 * k_ij).max(TAU);
                let delta = (self.grad[i] - self.grad[j]) / quad;
                let sum = self.alpha[i] + self.alpha[j];
                self.alpha[i] -= delta;
                self.alpha[j] += delta;
                if sum > c {
                    if self.alpha[i] > c {
                        self.alpha[i] = c;
                        self.alpha[j] = sum - c;
                    }
                } else if self.alpha[j] < 0.0 {
                    self.alpha[j] = 0.0;
                    self.alpha[i] = sum;
                }
                if sum > c {
                    if self.alpha[j] > c {
                        self.alpha[j] = c;
                        self.alpha[i] = sum - c;
                    }
                } else if self.alpha[i] < 0.0 {
                    self.alpha[i] = 0.0;
                    self.alpha[j] = sum;
                }
            }
            // Gradient maintenance: G_t += Q_it Δα_i + Q_jt Δα_j, with
            // Q_st = y_s y_t K(s, t). The extended space splits into the
            // α block (y_t = +1) and the α* block (y_t = −1); writing
            // the two halves as separate tight loops avoids the
            // per-element modulo and lets the compiler vectorize.
            let d_i = self.alpha[i] - old_ai;
            let d_j = self.alpha[j] - old_aj;
            if d_i != 0.0 || d_j != 0.0 {
                let ci = self.y[i] * d_i;
                let cj = self.y[j] * d_j;
                let (lo, hi) = self.grad.split_at_mut(self.n);
                for t in 0..self.n {
                    let delta = row_i[t] * ci + row_j[t] * cj;
                    lo[t] += delta;
                    hi[t] -= delta;
                }
            }
        }
        it
    }

    /// Bias from the KKT conditions (libsvm `calculate_rho`, negated).
    fn bias(&self) -> f64 {
        let c = self.params.c;
        let mut ub = f64::INFINITY;
        let mut lb = f64::NEG_INFINITY;
        let mut sum_free = 0.0;
        let mut nr_free = 0usize;
        for s in 0..2 * self.n {
            let yg = self.y[s] * self.grad[s];
            if self.alpha[s] >= c {
                if self.y[s] < 0.0 {
                    ub = ub.min(yg);
                } else {
                    lb = lb.max(yg);
                }
            } else if self.alpha[s] <= 0.0 {
                if self.y[s] > 0.0 {
                    ub = ub.min(yg);
                } else {
                    lb = lb.max(yg);
                }
            } else {
                nr_free += 1;
                sum_free += yg;
            }
        }
        let rho = if nr_free > 0 {
            sum_free / nr_free as f64
        } else {
            (ub + lb) / 2.0
        };
        -rho
    }
}

/// LRU cache of base-kernel rows.
struct RowCache {
    capacity: usize,
    stamp: u64,
    rows: HashMap<usize, (std::rc::Rc<Vec<f64>>, u64)>,
}

impl RowCache {
    fn new(capacity: usize) -> RowCache {
        RowCache {
            capacity: capacity.max(2),
            stamp: 0,
            rows: HashMap::new(),
        }
    }

    fn get<F: FnOnce() -> Vec<f64>>(&mut self, i: usize, compute: F) -> std::rc::Rc<Vec<f64>> {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some((row, s)) = self.rows.get_mut(&i) {
            *s = stamp;
            return row.clone();
        }
        if self.rows.len() >= self.capacity {
            if let Some((&oldest, _)) = self.rows.iter().min_by_key(|(_, (_, s))| *s) {
                self.rows.remove(&oldest);
            }
        }
        let row = std::rc::Rc::new(compute());
        self.rows.insert(i, (row.clone(), stamp));
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn linear_data(n: usize, noise: f64, seed: u64) -> Dataset {
        // y = 2 x0 - 3 x1 + 0.5 + noise
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let x0: f64 = rng.gen_range(0.0..1.0);
            let x1: f64 = rng.gen_range(0.0..1.0);
            let e: f64 = rng.gen_range(-noise..=noise);
            d.push(vec![x0, x1], 2.0 * x0 - 3.0 * x1 + 0.5 + e);
        }
        d
    }

    #[test]
    fn linear_svr_recovers_linear_function() {
        let data = linear_data(120, 0.0, 1);
        let params = SvrParams {
            epsilon: 0.01,
            ..SvrParams::paper_speedup()
        };
        let model = train_svr(&data, &params);
        // Predictions within the ε-tube (plus solver tolerance).
        for (x, y) in data.xs().iter().zip(data.ys()) {
            let p = model.predict(x);
            assert!((p - y).abs() < 0.05, "pred {p} vs {y}");
        }
    }

    #[test]
    fn rbf_svr_fits_nonlinear_function() {
        // y = sin(4 x) — linear models cannot fit this.
        let mut data = Dataset::new();
        for i in 0..100 {
            let x = i as f64 / 99.0;
            data.push(vec![x], (4.0 * x).sin());
        }
        let params = SvrParams {
            epsilon: 0.01,
            kernel: SvmKernel::Rbf { gamma: 10.0 },
            ..SvrParams::paper_energy()
        };
        let model = train_svr(&data, &params);
        for i in 0..100 {
            let x = i as f64 / 99.0;
            let p = model.predict(&[x]);
            assert!((p - (4.0 * x).sin()).abs() < 0.08, "at {x}: {p}");
        }
    }

    #[test]
    fn epsilon_tube_limits_support_vectors() {
        // With a wide tube, most points are inside it and few SVs remain.
        let data = linear_data(200, 0.01, 3);
        let narrow = train_svr(
            &data,
            &SvrParams {
                epsilon: 0.001,
                ..SvrParams::paper_speedup()
            },
        );
        let wide = train_svr(
            &data,
            &SvrParams {
                epsilon: 0.5,
                ..SvrParams::paper_speedup()
            },
        );
        assert!(wide.num_support_vectors() < narrow.num_support_vectors());
    }

    #[test]
    fn noisy_data_stays_within_epsilon_plus_noise() {
        let data = linear_data(150, 0.05, 7);
        let model = train_svr(
            &data,
            &SvrParams {
                epsilon: 0.1,
                ..SvrParams::paper_speedup()
            },
        );
        let preds = model.predict_batch(data.xs());
        let rmse = crate::metrics::rmse(data.ys(), &preds);
        assert!(rmse < 0.12, "rmse {rmse}");
    }

    #[test]
    fn constant_target_learns_bias() {
        let mut data = Dataset::new();
        for i in 0..20 {
            data.push(vec![i as f64 / 20.0], 3.5);
        }
        let model = train_svr(&data, &SvrParams::paper_speedup());
        assert!((model.predict(&[0.3]) - 3.5).abs() < 0.11); // within ε
    }

    #[test]
    fn single_sample_trains() {
        let mut data = Dataset::new();
        data.push(vec![1.0], 2.0);
        let model = train_svr(&data, &SvrParams::paper_speedup());
        assert!((model.predict(&[1.0]) - 2.0).abs() < 0.2);
    }

    #[test]
    fn deterministic_training() {
        let data = linear_data(80, 0.02, 11);
        let a = train_svr(&data, &SvrParams::paper_speedup());
        let b = train_svr(&data, &SvrParams::paper_speedup());
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_cache_still_converges() {
        let data = linear_data(60, 0.0, 13);
        let params = SvrParams {
            cache_rows: 2,
            epsilon: 0.01,
            ..SvrParams::paper_speedup()
        };
        let model = train_svr(&data, &params);
        for (x, y) in data.xs().iter().zip(data.ys()) {
            assert!((model.predict(x) - y).abs() < 0.05);
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        train_svr(&Dataset::new(), &SvrParams::paper_speedup());
    }
}
