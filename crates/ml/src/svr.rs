//! ε-support-vector regression trained with SMO.
//!
//! Implements the standard libsvm formulation: the ε-SVR dual is an
//! SVM-shaped problem over `2n` variables `(α, α*)` with labels
//! `y ∈ {+1, −1}`, solved by sequential minimal optimization with
//! second-order working-set selection and an LRU kernel-row cache.
//! The paper's hyper-parameters are `C = 1000`, `ε = 0.1` for both
//! models, a linear kernel for speedup and an RBF kernel with
//! `γ = 0.1` for normalized energy (§3.4).

use crate::dataset::Dataset;
use crate::kernel_fn::SvmKernel;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

const TAU: f64 = 1e-12;

/// Hyper-parameters of one ε-SVR training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvrParams {
    /// Box constraint `C`.
    pub c: f64,
    /// Tube width `ε`.
    pub epsilon: f64,
    /// Kernel function.
    pub kernel: SvmKernel,
    /// KKT violation tolerance for convergence.
    pub tol: f64,
    /// Hard iteration cap (0 = libsvm-style heuristic of
    /// `max(10^7, 100·n)`).
    pub max_iter: usize,
    /// Number of kernel rows kept in the LRU cache.
    pub cache_rows: usize,
}

impl SvrParams {
    /// The paper's speedup model: linear kernel, `C = 1000`.
    ///
    /// Two solver-level adaptations from the literal §3.4 values, both
    /// documented in DESIGN.md:
    /// * `ε = 0.01` rather than `0.1` — the tube is an *absolute* error
    ///   band, and our simulator's speedup targets reach down to ~0.1
    ///   (deep down-clocked configurations), where a 0.1 tube alone
    ///   permits 100% relative error. A 0.01 tube is the proportional
    ///   equivalent of the paper's setting on its own data scale.
    /// * `max_iter` is capped: with `C = 1000` full KKT convergence
    ///   needs tens of millions of SMO iterations for a negligible
    ///   objective improvement; libsvm guards its solver the same way.
    pub fn paper_speedup() -> SvrParams {
        SvrParams {
            c: 1000.0,
            epsilon: 0.01,
            kernel: SvmKernel::Linear,
            tol: 1e-3,
            max_iter: 800_000,
            cache_rows: 4240,
        }
    }

    /// The paper's normalized-energy model: RBF kernel with `γ = 0.1`,
    /// `C = 1000` (see [`SvrParams::paper_speedup`] on the `ε` and
    /// iteration-cap adaptations).
    pub fn paper_energy() -> SvrParams {
        SvrParams {
            c: 1000.0,
            epsilon: 0.01,
            kernel: SvmKernel::Rbf { gamma: 0.1 },
            tol: 1e-3,
            max_iter: 800_000,
            cache_rows: 4240,
        }
    }
}

/// A trained ε-SVR model: support vectors, their coefficients
/// `β = α − α*`, and the bias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvrModel {
    kernel: SvmKernel,
    support_x: Vec<Vec<f64>>,
    beta: Vec<f64>,
    bias: f64,
    iterations: usize,
}

impl SvrModel {
    /// Assemble a model directly from its parts: support vectors,
    /// their coefficients `β = α − α*`, and the bias. This is the
    /// inverse of what [`train_svr`] extracts from the solver, for
    /// callers that build models without training — hand-written
    /// regressors in tests, property-based harnesses, external
    /// artifact importers. The iteration count is recorded as zero.
    ///
    /// # Panics
    /// If `support_x` and `beta` disagree in length, or the support
    /// vectors are jagged.
    pub fn from_parts(
        kernel: SvmKernel,
        support_x: Vec<Vec<f64>>,
        beta: Vec<f64>,
        bias: f64,
    ) -> SvrModel {
        assert_eq!(
            support_x.len(),
            beta.len(),
            "one coefficient per support vector"
        );
        if let Some(first) = support_x.first() {
            assert!(
                support_x.iter().all(|sv| sv.len() == first.len()),
                "support vectors must share one width"
            );
        }
        SvrModel {
            kernel,
            support_x,
            beta,
            bias,
            iterations: 0,
        }
    }

    /// Predict the target for one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut acc = self.bias;
        for (sv, &b) in self.support_x.iter().zip(&self.beta) {
            acc += b * self.kernel.eval(sv, x);
        }
        acc
    }

    /// Predict a batch of rows.
    ///
    /// Accepts anything row-shaped — `&[Vec<f64>]`, `&[&[f64]]`,
    /// `&[[f64; N]]` — so callers holding borrowed rows don't rebuild
    /// an owned `Vec<Vec<f64>>` block just to satisfy the signature.
    pub fn predict_batch<R: AsRef<[f64]>>(&self, xs: &[R]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x.as_ref())).collect()
    }

    /// Build the precomputed scoring form of this model: the support
    /// vectors flattened into one row-major matrix with their norms
    /// cached. Build it once per model, score many candidate blocks —
    /// see [`ScoringPlan`] for the bit-identity contract.
    pub fn scoring_plan(&self) -> ScoringPlan {
        let dims = self.support_x.first().map_or(0, Vec::len);
        let mut sv = Vec::with_capacity(self.support_x.len() * dims);
        for row in &self.support_x {
            debug_assert_eq!(row.len(), dims, "support vectors share one width");
            sv.extend_from_slice(row);
        }
        let sv_norms = self
            .support_x
            .iter()
            .map(|row| row.iter().map(|v| v * v).sum())
            .collect();
        ScoringPlan {
            kernel: self.kernel,
            dims,
            sv,
            sv_norms,
            beta: self.beta.clone(),
            bias: self.bias,
        }
    }

    /// Number of support vectors retained.
    pub fn num_support_vectors(&self) -> usize {
        self.support_x.len()
    }

    /// SMO iterations used during training.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The kernel this model was trained with.
    pub fn kernel(&self) -> SvmKernel {
        self.kernel
    }
}

/// Train an ε-SVR on `data`.
///
/// # Panics
/// If the dataset is empty.
pub fn train_svr(data: &Dataset, params: &SvrParams) -> SvrModel {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let n = data.len();
    let mut solver = Solver::new(data, params);
    let iterations = solver.solve();
    let bias = solver.bias();
    // β_i = α_i − α*_i; keep only support vectors.
    let mut support_x = Vec::new();
    let mut beta = Vec::new();
    for i in 0..n {
        let b = solver.alpha[i] - solver.alpha[n + i];
        if b.abs() > 1e-12 {
            support_x.push(data.xs()[i].clone());
            beta.push(b);
        }
    }
    SvrModel {
        kernel: params.kernel,
        support_x,
        beta,
        bias,
        iterations,
    }
}

/// The precomputed scoring form of an [`SvrModel`]: support vectors
/// flattened into one row-major matrix, coefficients alongside, and
/// the support-vector norms `‖sv‖²` cached — built once per model
/// (via [`SvrModel::scoring_plan`]) and then scored against candidate
/// blocks without touching the `Vec<Vec<f64>>` representation again.
///
/// **Bit-identity contract.** [`score`](ScoringPlan::score) and
/// [`score_block_into`](ScoringPlan::score_block_into) return exactly
/// the bits [`SvrModel::predict`] returns: the accumulation order
/// (`acc = bias; acc += β_i · K(sv_i, x)` in support-vector order) and
/// the per-element kernel arithmetic are identical, only the storage
/// is flat. This is what lets the batched prediction pipeline replace
/// the scalar one underneath golden tests, determinism suites and
/// byte-replay contracts without re-blessing anything.
///
/// **Where the batched speed comes from.** Bit-identity pins each
/// candidate's *own* operation chain, but says nothing about
/// candidates relative to each other — they are independent
/// computations. [`score_block_into`](ScoringPlan::score_block_into)
/// therefore transposes the candidate block to column-major and sweeps
/// support vectors in the outer loop, accumulating every candidate's
/// dot product (or squared distance) in lock-step: the innermost loop
/// is a contiguous elementwise update across candidates with no
/// cross-lane reduction, which the compiler turns into SIMD. Each
/// lane still executes exactly the scalar chain (`0 + s₀·x₀ + s₁·x₁ +
/// …` in feature order, then `acc += β_i · K` in support-vector
/// order), so IEEE-754 determinism makes the lane-parallel sweep
/// return the scalar path's bits while running several candidates per
/// instruction.
///
/// **Why the RBF head is *not* evaluated via the norm expansion.**
/// The classic batched form `‖x−sv‖² = ‖x‖² + ‖sv‖² − 2⟨x, sv⟩`
/// (served by the cached norms) reassociates the floating-point sum —
/// its result differs from the direct `Σ (sv_j − x_j)²` sweep in the
/// last ulps, which would silently change every persisted prediction.
/// The expansion is therefore offered separately as
/// [`score_block_expanded_into`](ScoringPlan::score_block_expanded_into)
/// for callers that can tolerate approximate scores (and for the
/// kernels where it is exact), while the canonical entry points keep
/// the direct sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoringPlan {
    kernel: SvmKernel,
    dims: usize,
    /// Row-major `num_support_vectors × dims` support-vector matrix.
    sv: Vec<f64>,
    /// Cached `‖sv_i‖²`, in support-vector order.
    sv_norms: Vec<f64>,
    beta: Vec<f64>,
    bias: f64,
}

impl ScoringPlan {
    /// Feature width the plan scores (0 only for a model with no
    /// support vectors, which scores as its bias).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of support vectors in the plan.
    pub fn num_support_vectors(&self) -> usize {
        self.beta.len()
    }

    /// Score one row. Bit-identical to [`SvrModel::predict`].
    pub fn score(&self, x: &[f64]) -> f64 {
        let mut acc = self.bias;
        if self.dims == 0 {
            return acc;
        }
        debug_assert_eq!(x.len(), self.dims);
        for (sv, &b) in self.sv.chunks_exact(self.dims).zip(&self.beta) {
            acc += b * self.kernel.eval(sv, x);
        }
        acc
    }

    /// Score a row-major block of `block.len() / dims` candidate rows,
    /// appending one score per row to `out` (cleared first). Each row
    /// is bit-identical to [`SvrModel::predict`] on that row, but the
    /// block is evaluated lane-parallel: candidates ride SIMD lanes
    /// while every lane executes the scalar path's exact operation
    /// chain (see the type-level docs).
    ///
    /// # Panics
    /// If `block.len()` is not a multiple of [`dims`](ScoringPlan::dims).
    pub fn score_block_into(&self, block: &[f64], out: &mut Vec<f64>) {
        out.clear();
        if self.dims == 0 {
            return;
        }
        assert_eq!(
            block.len() % self.dims,
            0,
            "candidate block must be row-major with the plan's width"
        );
        self.score_transposed_into(&TransposedBlock::new(block, self.dims), out);
    }

    /// [`score_block_into`](ScoringPlan::score_block_into) over a block
    /// that is already in the transposed layout — callers scoring the
    /// same candidates against several same-width plans (a device
    /// head's speedup and energy models, say) transpose once and score
    /// many times.
    ///
    /// # Panics
    /// If the block's width differs from [`dims`](ScoringPlan::dims).
    pub fn score_transposed_into(&self, block: &TransposedBlock, out: &mut Vec<f64>) {
        out.clear();
        if self.dims == 0 {
            return;
        }
        assert_eq!(
            block.dims, self.dims,
            "transposed block width must match the plan"
        );
        let (n, np) = (block.n, block.np);
        out.resize(n, self.bias);
        if n == 0 {
            return;
        }
        // Tiny blocks lose more to lane padding than they gain from
        // the sweep: score their rows directly (same canonical
        // arithmetic, so the choice of path can never change a bit).
        if n < SCALAR_CUTOFF {
            let mut row = vec![0.0; self.dims];
            for (c, acc) in out.iter_mut().enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = block.xt[j * np + c];
                }
                *acc = self.score(&row);
            }
            return;
        }
        // Per-candidate partial (dot product or squared distance) for
        // the support vector currently being swept.
        let mut lane = vec![0.0; np];
        // The sweep is compiled once per SIMD tier; per-lane IEEE-754
        // mul/add/sub round identically at every width (and Rust never
        // contracts to FMA), so wider registers change throughput, not
        // bits.
        // Miri interprets MIR and does not implement vendor SIMD
        // intrinsics; under it the scalar body below is the whole
        // story, which is exactly the path worth checking for UB.
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: reached only when the CPU reports AVX-512F.
                return unsafe { self.sweep_avx512(&block.xt, np, &mut lane, out) };
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: reached only when the CPU reports AVX2.
                return unsafe { self.sweep_avx2(&block.xt, np, &mut lane, out) };
            }
        }
        self.sweep(&block.xt, np, &mut lane, out);
    }

    /// The lane-parallel sweep body over a transposed, padded block
    /// (`np` lanes, a multiple of [`LANE_BLOCK`]; `out.len()` real
    /// candidates). Marked `inline(always)` so the `target_feature`
    /// wrappers re-vectorize it at their ISA width.
    #[inline(always)]
    fn sweep(&self, xt: &[f64], np: usize, lane: &mut [f64], out: &mut [f64]) {
        match self.kernel {
            SvmKernel::Linear => {
                for (sv, &b) in self.sv.chunks_exact(self.dims).zip(&self.beta) {
                    dot_lanes(sv, xt, np, lane);
                    for (acc, &dot) in out.iter_mut().zip(&*lane) {
                        *acc += b * dot;
                    }
                }
            }
            SvmKernel::Rbf { gamma } => {
                for (sv, &b) in self.sv.chunks_exact(self.dims).zip(&self.beta) {
                    dist2_lanes(sv, xt, np, lane);
                    for (acc, &d2) in out.iter_mut().zip(&*lane) {
                        *acc += b * (-gamma * d2).exp();
                    }
                }
            }
            SvmKernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => {
                for (sv, &b) in self.sv.chunks_exact(self.dims).zip(&self.beta) {
                    dot_lanes(sv, xt, np, lane);
                    for (acc, &dot) in out.iter_mut().zip(&*lane) {
                        *acc += b * (gamma * dot + coef0).powi(degree as i32);
                    }
                }
            }
        }
    }

    /// [`sweep`](Self::sweep) compiled for AVX2 (4 f64 lanes).
    ///
    /// The body is safe code; `unsafe` is forced by `target_feature`
    /// alone.
    // SAFETY: callers must have verified AVX2 support (the dispatch in
    // `score_transposed_into` checks `is_x86_feature_detected!`), or
    // executing the AVX2-encoded body is UB on older CPUs.
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[target_feature(enable = "avx2")]
    unsafe fn sweep_avx2(&self, xt: &[f64], np: usize, lane: &mut [f64], out: &mut [f64]) {
        self.sweep(xt, np, lane, out);
    }

    /// [`sweep`](Self::sweep) compiled for AVX-512F (8 f64 lanes).
    ///
    /// The body is safe code; `unsafe` is forced by `target_feature`
    /// alone.
    // SAFETY: callers must have verified AVX-512F support (the dispatch
    // in `score_transposed_into` checks `is_x86_feature_detected!`), or
    // executing the AVX-512-encoded body is UB on older CPUs.
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[target_feature(enable = "avx512f")]
    unsafe fn sweep_avx512(&self, xt: &[f64], np: usize, lane: &mut [f64], out: &mut [f64]) {
        self.sweep(xt, np, lane, out);
    }
}

/// A candidate block in the column-major, block-padded layout the
/// lane-parallel sweep consumes: feature `j` of candidate `c` at
/// `xt[j*np + c]`, with the lane count `np` rounded up to whole
/// register blocks. Padding lanes hold zeros, cost a few spare flops,
/// and are never copied out — the scored output stays `n` long, so
/// padding cannot change a single result bit.
///
/// Build one per candidate block and score it against every same-width
/// [`ScoringPlan`] via
/// [`score_transposed_into`](ScoringPlan::score_transposed_into),
/// instead of paying the transpose once per plan.
#[derive(Debug, Clone)]
pub struct TransposedBlock {
    dims: usize,
    /// Real candidate count.
    n: usize,
    /// Lane count: `n` rounded up to a multiple of [`LANE_BLOCK`].
    np: usize,
    xt: Vec<f64>,
}

impl TransposedBlock {
    /// Transpose a row-major block of `block.len() / dims` candidate
    /// rows.
    ///
    /// # Panics
    /// If `dims` is zero or `block.len()` is not a multiple of it.
    pub fn new(block: &[f64], dims: usize) -> TransposedBlock {
        let mut this = TransposedBlock {
            dims,
            n: 0,
            np: 0,
            xt: Vec::new(),
        };
        this.fill_from(block);
        this
    }

    /// Reload from a new row-major block, reusing the buffer.
    ///
    /// # Panics
    /// If `block.len()` is not a multiple of the block's width.
    pub fn fill_from(&mut self, block: &[f64]) {
        assert!(self.dims > 0, "a transposed block needs a nonzero width");
        assert_eq!(
            block.len() % self.dims,
            0,
            "candidate block must be row-major with the declared width"
        );
        let n = block.len() / self.dims;
        let np = n.div_ceil(LANE_BLOCK) * LANE_BLOCK;
        self.n = n;
        self.np = np;
        self.xt.clear();
        self.xt.resize(self.dims * np, 0.0);
        for (c, row) in block.chunks_exact(self.dims).enumerate() {
            for (j, &v) in row.iter().enumerate() {
                self.xt[j * np + c] = v;
            }
        }
    }

    /// Number of candidate rows loaded.
    pub fn num_candidates(&self) -> usize {
        self.n
    }
}

/// Below this many candidates a block is scored row by row: the lane
/// sweep always pays for a whole [`LANE_BLOCK`]-wide pass, which a
/// near-empty block cannot amortize (measured crossover on the CI
/// hardware is around a third of the block width).
const SCALAR_CUTOFF: usize = 12;

/// Candidates per register block. The per-candidate accumulation is a
/// serial dependency chain (each `acc += term` must wait on the last),
/// so throughput comes from flying many *independent* candidate chains
/// at once: 32 lanes is four 512-bit (or eight 256-bit) accumulators,
/// enough chains to cover FP-add latency on the x86 tiers dispatched
/// to while keeping the pad-to-block waste small for head-sized
/// candidate counts (≈50–70). Measured on the CI hardware, 32 beats
/// both 16 (chain-starved) and 64 (pads a 71-candidate head to 128).
/// Blocks live entirely in registers across the feature loop instead
/// of round-tripping partials through memory once per feature.
const LANE_BLOCK: usize = 32;

/// `lane[c] = ⟨sv, x_c⟩` for every candidate column of `xt` (`np`
/// lanes, a multiple of [`LANE_BLOCK`]), each dot accumulated in
/// feature order exactly like the scalar kernel ([`SvmKernel::eval`]
/// folds `Σ sv_j·x_j` from zero in `j` order).
#[inline(always)]
fn dot_lanes(sv: &[f64], xt: &[f64], np: usize, lane: &mut [f64]) {
    for c in (0..np).step_by(LANE_BLOCK) {
        let mut acc = [0.0; LANE_BLOCK];
        for (j, &s) in sv.iter().enumerate() {
            let col: &[f64; LANE_BLOCK] = xt[j * np + c..j * np + c + LANE_BLOCK]
                .try_into()
                .expect("padded block");
            for k in 0..LANE_BLOCK {
                acc[k] += s * col[k];
            }
        }
        lane[c..c + LANE_BLOCK].copy_from_slice(&acc);
    }
}

/// `lane[c] = ‖sv − x_c‖²` over the same padded layout as
/// [`dot_lanes`], accumulated in feature order exactly like the scalar
/// kernel (`Σ (sv_j − x_j)²` folded from zero in `j` order).
#[inline(always)]
fn dist2_lanes(sv: &[f64], xt: &[f64], np: usize, lane: &mut [f64]) {
    for c in (0..np).step_by(LANE_BLOCK) {
        let mut acc = [0.0; LANE_BLOCK];
        for (j, &s) in sv.iter().enumerate() {
            let col: &[f64; LANE_BLOCK] = xt[j * np + c..j * np + c + LANE_BLOCK]
                .try_into()
                .expect("padded block");
            for k in 0..LANE_BLOCK {
                let d = s - col[k];
                acc[k] += d * d;
            }
        }
        lane[c..c + LANE_BLOCK].copy_from_slice(&acc);
    }
}

impl ScoringPlan {
    /// Score a row-major block via the `‖x‖² + ‖sv‖² − 2⟨x, sv⟩`
    /// expansion of the RBF distance, using the cached support-vector
    /// norms. For the linear and polynomial kernels this is the same
    /// dot-product sweep as [`score_block_into`](Self::score_block_into)
    /// and bit-identical to it; for the RBF kernel the reassociated
    /// sum agrees only to ~1 ulp per term and is **not** bit-identical
    /// to [`SvrModel::predict`] — use it only where approximate scores
    /// are acceptable (see the type-level docs for why the canonical
    /// path rejects it).
    pub fn score_block_expanded_into(&self, block: &[f64], out: &mut Vec<f64>) {
        out.clear();
        if self.dims == 0 {
            return;
        }
        assert_eq!(
            block.len() % self.dims,
            0,
            "candidate block must be row-major with the plan's width"
        );
        out.reserve(block.len() / self.dims);
        match self.kernel {
            SvmKernel::Rbf { gamma } => {
                for x in block.chunks_exact(self.dims) {
                    let x_norm: f64 = x.iter().map(|v| v * v).sum();
                    let mut acc = self.bias;
                    for ((sv, &b), &sv_norm) in self
                        .sv
                        .chunks_exact(self.dims)
                        .zip(&self.beta)
                        .zip(&self.sv_norms)
                    {
                        let dot: f64 = sv.iter().zip(x).map(|(s, v)| s * v).sum();
                        let d2 = (x_norm + sv_norm - 2.0 * dot).max(0.0);
                        acc += b * (-gamma * d2).exp();
                    }
                    out.push(acc);
                }
            }
            SvmKernel::Linear | SvmKernel::Polynomial { .. } => {
                for x in block.chunks_exact(self.dims) {
                    out.push(self.score(x));
                }
            }
        }
    }
}

/// SMO solver state over the extended `2n`-variable problem.
struct Solver<'a> {
    data: &'a Dataset,
    params: &'a SvrParams,
    n: usize,
    /// Extended labels: `+1` for the α block, `−1` for the α* block.
    y: Vec<f64>,
    /// Extended variables `(α, α*)`.
    alpha: Vec<f64>,
    /// Gradient of the dual objective.
    grad: Vec<f64>,
    /// Diagonal of the base kernel matrix.
    qd: Vec<f64>,
    cache: RowCache,
}

impl<'a> Solver<'a> {
    fn new(data: &'a Dataset, params: &'a SvrParams) -> Solver<'a> {
        let n = data.len();
        let mut y = vec![1.0; 2 * n];
        y[n..].fill(-1.0);
        // p_s = ε − y_s for the α block, ε + y_s for the α* block;
        // gradient starts at p because α = 0.
        let mut grad = vec![0.0; 2 * n];
        for i in 0..n {
            grad[i] = params.epsilon - data.ys()[i];
            grad[n + i] = params.epsilon + data.ys()[i];
        }
        let qd = (0..n)
            .map(|i| {
                params
                    .kernel
                    .eval(data.xs()[i].as_slice(), data.xs()[i].as_slice())
            })
            .collect();
        Solver {
            data,
            params,
            n,
            y,
            alpha: vec![0.0; 2 * n],
            grad,
            qd,
            cache: RowCache::new(params.cache_rows),
        }
    }

    /// Base-kernel row for extended index `s` (row of `K(x_{s mod n}, ·)`).
    fn row(&mut self, s: usize) -> std::rc::Rc<Vec<f64>> {
        let i = s % self.n;
        let kernel = self.params.kernel;
        let xs = self.data.xs();
        self.cache.get(i, || {
            (0..xs.len()).map(|j| kernel.eval(&xs[i], &xs[j])).collect()
        })
    }

    fn in_up(&self, s: usize) -> bool {
        (self.y[s] > 0.0 && self.alpha[s] < self.params.c)
            || (self.y[s] < 0.0 && self.alpha[s] > 0.0)
    }

    fn in_low(&self, s: usize) -> bool {
        (self.y[s] > 0.0 && self.alpha[s] > 0.0)
            || (self.y[s] < 0.0 && self.alpha[s] < self.params.c)
    }

    /// Second-order working-set selection (libsvm WSS3). Returns
    /// `None` when the KKT gap is below tolerance.
    fn select_working_set(&mut self) -> Option<(usize, usize)> {
        let two_n = 2 * self.n;
        let mut g_max = f64::NEG_INFINITY;
        let mut i = usize::MAX;
        for s in 0..two_n {
            if self.in_up(s) {
                let v = -self.y[s] * self.grad[s];
                if v >= g_max {
                    g_max = v;
                    i = s;
                }
            }
        }
        if i == usize::MAX {
            return None;
        }
        let row_i = self.row(i);
        let i_base = i % self.n;
        let y_i = self.y[i];
        let qd_i = self.qd[i_base];
        let mut g_max2 = f64::NEG_INFINITY;
        let mut j = usize::MAX;
        let mut obj_min = f64::INFINITY;
        // Split the extended space into the α block (y_s = +1, s < n)
        // and the α* block (y_s = −1) so the inner loop needs no modulo.
        for s in 0..two_n {
            let (s_base, y_s) = if s < self.n {
                (s, 1.0)
            } else {
                (s - self.n, -1.0)
            };
            let in_low = if y_s > 0.0 {
                self.alpha[s] > 0.0
            } else {
                self.alpha[s] < self.params.c
            };
            debug_assert_eq!(in_low, self.in_low(s));
            if !in_low {
                continue;
            }
            let yg = y_s * self.grad[s];
            g_max2 = g_max2.max(yg);
            let grad_diff = g_max + yg;
            if grad_diff > 0.0 {
                // Q_i[s] = y_i y_s K(i, s); quad coefficient of the
                // two-variable subproblem.
                let quad = qd_i + self.qd[s_base] - 2.0 * y_i * y_s * row_i[s_base];
                let quad = if quad > 0.0 { quad } else { TAU };
                let obj = -(grad_diff * grad_diff) / quad;
                if obj <= obj_min {
                    obj_min = obj;
                    j = s;
                }
            }
        }
        if g_max + g_max2 < self.params.tol || j == usize::MAX {
            return None;
        }
        Some((i, j))
    }

    /// Run SMO to convergence; returns the iteration count.
    fn solve(&mut self) -> usize {
        let max_iter = if self.params.max_iter == 0 {
            // libsvm heuristic: at least 10M, or 100 iterations per
            // variable for very large problems.
            (100 * 2 * self.n).max(10_000_000)
        } else {
            self.params.max_iter
        };
        let c = self.params.c;
        let mut it = 0;
        while it < max_iter {
            let Some((i, j)) = self.select_working_set() else {
                break;
            };
            it += 1;
            let i_base = i % self.n;
            let j_base = j % self.n;
            let row_i = self.row(i);
            let row_j = self.row(j);
            let k_ij = row_i[j_base];
            let (old_ai, old_aj) = (self.alpha[i], self.alpha[j]);
            if self.y[i] != self.y[j] {
                let quad = (self.qd[i_base] + self.qd[j_base] + 2.0 * k_ij).max(TAU);
                let delta = (-self.grad[i] - self.grad[j]) / quad;
                let diff = self.alpha[i] - self.alpha[j];
                self.alpha[i] += delta;
                self.alpha[j] += delta;
                if diff > 0.0 {
                    if self.alpha[j] < 0.0 {
                        self.alpha[j] = 0.0;
                        self.alpha[i] = diff;
                    }
                } else if self.alpha[i] < 0.0 {
                    self.alpha[i] = 0.0;
                    self.alpha[j] = -diff;
                }
                if diff > 0.0 {
                    if self.alpha[i] > c {
                        self.alpha[i] = c;
                        self.alpha[j] = c - diff;
                    }
                } else if self.alpha[j] > c {
                    self.alpha[j] = c;
                    self.alpha[i] = c + diff;
                }
            } else {
                let quad = (self.qd[i_base] + self.qd[j_base] - 2.0 * k_ij).max(TAU);
                let delta = (self.grad[i] - self.grad[j]) / quad;
                let sum = self.alpha[i] + self.alpha[j];
                self.alpha[i] -= delta;
                self.alpha[j] += delta;
                if sum > c {
                    if self.alpha[i] > c {
                        self.alpha[i] = c;
                        self.alpha[j] = sum - c;
                    }
                } else if self.alpha[j] < 0.0 {
                    self.alpha[j] = 0.0;
                    self.alpha[i] = sum;
                }
                if sum > c {
                    if self.alpha[j] > c {
                        self.alpha[j] = c;
                        self.alpha[i] = sum - c;
                    }
                } else if self.alpha[i] < 0.0 {
                    self.alpha[i] = 0.0;
                    self.alpha[j] = sum;
                }
            }
            // Gradient maintenance: G_t += Q_it Δα_i + Q_jt Δα_j, with
            // Q_st = y_s y_t K(s, t). The extended space splits into the
            // α block (y_t = +1) and the α* block (y_t = −1); writing
            // the two halves as separate tight loops avoids the
            // per-element modulo and lets the compiler vectorize.
            let d_i = self.alpha[i] - old_ai;
            let d_j = self.alpha[j] - old_aj;
            if d_i != 0.0 || d_j != 0.0 {
                let ci = self.y[i] * d_i;
                let cj = self.y[j] * d_j;
                let (lo, hi) = self.grad.split_at_mut(self.n);
                for t in 0..self.n {
                    let delta = row_i[t] * ci + row_j[t] * cj;
                    lo[t] += delta;
                    hi[t] -= delta;
                }
            }
        }
        it
    }

    /// Bias from the KKT conditions (libsvm `calculate_rho`, negated).
    fn bias(&self) -> f64 {
        let c = self.params.c;
        let mut ub = f64::INFINITY;
        let mut lb = f64::NEG_INFINITY;
        let mut sum_free = 0.0;
        let mut nr_free = 0usize;
        for s in 0..2 * self.n {
            let yg = self.y[s] * self.grad[s];
            if self.alpha[s] >= c {
                if self.y[s] < 0.0 {
                    ub = ub.min(yg);
                } else {
                    lb = lb.max(yg);
                }
            } else if self.alpha[s] <= 0.0 {
                if self.y[s] > 0.0 {
                    ub = ub.min(yg);
                } else {
                    lb = lb.max(yg);
                }
            } else {
                nr_free += 1;
                sum_free += yg;
            }
        }
        let rho = if nr_free > 0 {
            sum_free / nr_free as f64
        } else {
            (ub + lb) / 2.0
        };
        -rho
    }
}

/// LRU cache of base-kernel rows.
struct RowCache {
    capacity: usize,
    stamp: u64,
    rows: HashMap<usize, (std::rc::Rc<Vec<f64>>, u64)>,
}

impl RowCache {
    fn new(capacity: usize) -> RowCache {
        RowCache {
            capacity: capacity.max(2),
            stamp: 0,
            rows: HashMap::new(),
        }
    }

    fn get<F: FnOnce() -> Vec<f64>>(&mut self, i: usize, compute: F) -> std::rc::Rc<Vec<f64>> {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some((row, s)) = self.rows.get_mut(&i) {
            *s = stamp;
            return row.clone();
        }
        if self.rows.len() >= self.capacity {
            if let Some((&oldest, _)) = self.rows.iter().min_by_key(|(_, (_, s))| *s) {
                self.rows.remove(&oldest);
            }
        }
        let row = std::rc::Rc::new(compute());
        self.rows.insert(i, (row.clone(), stamp));
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn linear_data(n: usize, noise: f64, seed: u64) -> Dataset {
        // y = 2 x0 - 3 x1 + 0.5 + noise
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let x0: f64 = rng.gen_range(0.0..1.0);
            let x1: f64 = rng.gen_range(0.0..1.0);
            let e: f64 = rng.gen_range(-noise..=noise);
            d.push(vec![x0, x1], 2.0 * x0 - 3.0 * x1 + 0.5 + e);
        }
        d
    }

    #[test]
    fn linear_svr_recovers_linear_function() {
        let data = linear_data(120, 0.0, 1);
        let params = SvrParams {
            epsilon: 0.01,
            ..SvrParams::paper_speedup()
        };
        let model = train_svr(&data, &params);
        // Predictions within the ε-tube (plus solver tolerance).
        for (x, y) in data.xs().iter().zip(data.ys()) {
            let p = model.predict(x);
            assert!((p - y).abs() < 0.05, "pred {p} vs {y}");
        }
    }

    #[test]
    fn rbf_svr_fits_nonlinear_function() {
        // y = sin(4 x) — linear models cannot fit this.
        let mut data = Dataset::new();
        for i in 0..100 {
            let x = i as f64 / 99.0;
            data.push(vec![x], (4.0 * x).sin());
        }
        let params = SvrParams {
            epsilon: 0.01,
            kernel: SvmKernel::Rbf { gamma: 10.0 },
            ..SvrParams::paper_energy()
        };
        let model = train_svr(&data, &params);
        for i in 0..100 {
            let x = i as f64 / 99.0;
            let p = model.predict(&[x]);
            assert!((p - (4.0 * x).sin()).abs() < 0.08, "at {x}: {p}");
        }
    }

    #[test]
    fn epsilon_tube_limits_support_vectors() {
        // With a wide tube, most points are inside it and few SVs remain.
        let data = linear_data(200, 0.01, 3);
        let narrow = train_svr(
            &data,
            &SvrParams {
                epsilon: 0.001,
                ..SvrParams::paper_speedup()
            },
        );
        let wide = train_svr(
            &data,
            &SvrParams {
                epsilon: 0.5,
                ..SvrParams::paper_speedup()
            },
        );
        assert!(wide.num_support_vectors() < narrow.num_support_vectors());
    }

    #[test]
    fn noisy_data_stays_within_epsilon_plus_noise() {
        let data = linear_data(150, 0.05, 7);
        let model = train_svr(
            &data,
            &SvrParams {
                epsilon: 0.1,
                ..SvrParams::paper_speedup()
            },
        );
        let preds = model.predict_batch(data.xs());
        let rmse = crate::metrics::rmse(data.ys(), &preds);
        assert!(rmse < 0.12, "rmse {rmse}");
    }

    #[test]
    fn constant_target_learns_bias() {
        let mut data = Dataset::new();
        for i in 0..20 {
            data.push(vec![i as f64 / 20.0], 3.5);
        }
        let model = train_svr(&data, &SvrParams::paper_speedup());
        assert!((model.predict(&[0.3]) - 3.5).abs() < 0.11); // within ε
    }

    #[test]
    fn single_sample_trains() {
        let mut data = Dataset::new();
        data.push(vec![1.0], 2.0);
        let model = train_svr(&data, &SvrParams::paper_speedup());
        assert!((model.predict(&[1.0]) - 2.0).abs() < 0.2);
    }

    #[test]
    fn deterministic_training() {
        let data = linear_data(80, 0.02, 11);
        let a = train_svr(&data, &SvrParams::paper_speedup());
        let b = train_svr(&data, &SvrParams::paper_speedup());
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_cache_still_converges() {
        let data = linear_data(60, 0.0, 13);
        let params = SvrParams {
            cache_rows: 2,
            epsilon: 0.01,
            ..SvrParams::paper_speedup()
        };
        let model = train_svr(&data, &params);
        for (x, y) in data.xs().iter().zip(data.ys()) {
            assert!((model.predict(x) - y).abs() < 0.05);
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        train_svr(&Dataset::new(), &SvrParams::paper_speedup());
    }

    /// A trained model of each kernel family, for plan pinning.
    fn trained_models() -> Vec<SvrModel> {
        let data = linear_data(60, 0.02, 17);
        vec![
            train_svr(&data, &SvrParams::paper_speedup()),
            train_svr(&data, &SvrParams::paper_energy()),
            train_svr(
                &data,
                &SvrParams {
                    kernel: SvmKernel::Polynomial {
                        gamma: 0.5,
                        coef0: 1.0,
                        degree: 2,
                    },
                    ..SvrParams::paper_speedup()
                },
            ),
        ]
    }

    #[test]
    fn scoring_plan_is_bit_identical_to_predict() {
        let mut rng = SmallRng::seed_from_u64(23);
        for model in trained_models() {
            let plan = model.scoring_plan();
            assert_eq!(plan.num_support_vectors(), model.num_support_vectors());
            for _ in 0..50 {
                let x: Vec<f64> = (0..plan.dims()).map(|_| rng.gen_range(-2.0..2.0)).collect();
                assert_eq!(
                    plan.score(&x).to_bits(),
                    model.predict(&x).to_bits(),
                    "plan must reproduce predict exactly"
                );
            }
        }
    }

    #[test]
    fn score_block_matches_scalar_sweep() {
        let mut rng = SmallRng::seed_from_u64(29);
        for model in trained_models() {
            let plan = model.scoring_plan();
            let rows: Vec<Vec<f64>> = (0..13)
                .map(|_| (0..plan.dims()).map(|_| rng.gen_range(-2.0..2.0)).collect())
                .collect();
            let block: Vec<f64> = rows.iter().flatten().copied().collect();
            let mut out = Vec::new();
            plan.score_block_into(&block, &mut out);
            let scalar = model.predict_batch(&rows);
            assert_eq!(out.len(), rows.len());
            for (b, s) in out.iter().zip(&scalar) {
                assert_eq!(b.to_bits(), s.to_bits());
            }
        }
    }

    #[test]
    fn expanded_block_is_close_but_only_linear_is_exact() {
        let mut rng = SmallRng::seed_from_u64(31);
        for model in trained_models() {
            let plan = model.scoring_plan();
            let rows: Vec<Vec<f64>> = (0..9)
                .map(|_| (0..plan.dims()).map(|_| rng.gen_range(-2.0..2.0)).collect())
                .collect();
            let block: Vec<f64> = rows.iter().flatten().copied().collect();
            let (mut direct, mut expanded) = (Vec::new(), Vec::new());
            plan.score_block_into(&block, &mut direct);
            plan.score_block_expanded_into(&block, &mut expanded);
            for (d, e) in direct.iter().zip(&expanded) {
                // Same values to ~1e-9 relative everywhere…
                assert!((d - e).abs() <= 1e-9 * d.abs().max(1.0), "{d} vs {e}");
            }
            if !matches!(model.kernel(), SvmKernel::Rbf { .. }) {
                // …and bit-exact for the non-RBF kernels, which share
                // the canonical sweep.
                for (d, e) in direct.iter().zip(&expanded) {
                    assert_eq!(d.to_bits(), e.to_bits());
                }
            }
        }
    }

    #[test]
    fn empty_model_plan_scores_bias() {
        let model = SvrModel::from_parts(SvmKernel::Linear, Vec::new(), Vec::new(), 1.25);
        let plan = model.scoring_plan();
        assert_eq!(plan.dims(), 0);
        assert_eq!(plan.score(&[]).to_bits(), 1.25f64.to_bits());
    }

    #[test]
    fn predict_batch_accepts_slices_and_owned_rows() {
        let data = linear_data(40, 0.0, 37);
        let model = train_svr(&data, &SvrParams::paper_speedup());
        let owned: Vec<Vec<f64>> = data.xs().to_vec();
        let borrowed: Vec<&[f64]> = owned.iter().map(Vec::as_slice).collect();
        assert_eq!(model.predict_batch(&owned), model.predict_batch(&borrowed));
    }
}
