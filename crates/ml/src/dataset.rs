//! Training datasets: rows of feature vectors with scalar targets.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A supervised regression dataset.
///
/// Rows are stored as owned `Vec<f64>` feature vectors with one target
/// each; all rows must share the same dimensionality.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Build from parallel slices of rows and targets.
    ///
    /// # Panics
    /// If lengths differ or rows have inconsistent widths.
    pub fn from_rows(xs: Vec<Vec<f64>>, ys: Vec<f64>) -> Dataset {
        assert_eq!(xs.len(), ys.len(), "row/target count mismatch");
        if let Some(first) = xs.first() {
            let d = first.len();
            assert!(xs.iter().all(|r| r.len() == d), "inconsistent row widths");
        }
        Dataset { xs, ys }
    }

    /// Append one `(row, target)` sample.
    ///
    /// # Panics
    /// If the row width differs from existing rows.
    pub fn push(&mut self, x: Vec<f64>, y: f64) {
        if let Some(first) = self.xs.first() {
            assert_eq!(first.len(), x.len(), "inconsistent row width");
        }
        self.xs.push(x);
        self.ys.push(y);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Feature dimensionality (0 when empty).
    pub fn dims(&self) -> usize {
        self.xs.first().map_or(0, |r| r.len())
    }

    /// Feature rows.
    pub fn xs(&self) -> &[Vec<f64>] {
        &self.xs
    }

    /// Targets.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// One sample.
    pub fn sample(&self, i: usize) -> (&[f64], f64) {
        (&self.xs[i], self.ys[i])
    }

    /// Deterministically shuffle in place (Fisher–Yates with `seed`).
    pub fn shuffle(&mut self, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.xs.swap(i, j);
            self.ys.swap(i, j);
        }
    }

    /// Split into `(train, test)` with `train_fraction` of the samples
    /// in the first part (no shuffling — call [`Dataset::shuffle`]
    /// first if needed).
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_fraction));
        let k = (self.len() as f64 * train_fraction).round() as usize;
        let (xa, xb) = (self.xs[..k].to_vec(), self.xs[k..].to_vec());
        let (ya, yb) = (self.ys[..k].to_vec(), self.ys[k..].to_vec());
        (Dataset::from_rows(xa, ya), Dataset::from_rows(xb, yb))
    }

    /// Apply a row transformation (e.g. a fitted scaler) to every sample.
    pub fn map_rows<F: FnMut(&[f64]) -> Vec<f64>>(&self, mut f: F) -> Dataset {
        Dataset::from_rows(self.xs.iter().map(|r| f(r)).collect(), self.ys.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let ys: Vec<f64> = (0..n).map(|i| i as f64 * 3.0).collect();
        Dataset::from_rows(xs, ys)
    }

    #[test]
    fn construction_and_access() {
        let d = toy(5);
        assert_eq!(d.len(), 5);
        assert_eq!(d.dims(), 2);
        assert_eq!(d.sample(2), (&[2.0, 4.0][..], 6.0));
        assert!(!d.is_empty());
        assert!(Dataset::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "row/target count mismatch")]
    fn mismatched_lengths_panic() {
        Dataset::from_rows(vec![vec![1.0]], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent row width")]
    fn inconsistent_width_panics() {
        let mut d = toy(2);
        d.push(vec![1.0], 0.0);
    }

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let mut a = toy(32);
        let mut b = toy(32);
        a.shuffle(9);
        b.shuffle(9);
        assert_eq!(a, b);
        let mut ys = a.ys().to_vec();
        ys.sort_by(|p, q| p.partial_cmp(q).unwrap());
        let mut orig = toy(32).ys().to_vec();
        orig.sort_by(|p, q| p.partial_cmp(q).unwrap());
        assert_eq!(ys, orig, "shuffle must be a permutation");
        // Pairing preserved.
        for i in 0..a.len() {
            let (x, y) = a.sample(i);
            assert_eq!(x[0] * 3.0, y);
        }
    }

    #[test]
    fn split_fractions() {
        let d = toy(10);
        let (tr, te) = d.split(0.7);
        assert_eq!(tr.len(), 7);
        assert_eq!(te.len(), 3);
        let (all, none) = d.split(1.0);
        assert_eq!(all.len(), 10);
        assert!(none.is_empty());
    }

    #[test]
    fn map_rows_transforms() {
        let d = toy(3);
        let m = d.map_rows(|r| r.iter().map(|v| v * 2.0).collect());
        assert_eq!(m.sample(1).0, &[2.0, 2.0][..]);
        assert_eq!(m.ys(), d.ys());
    }
}
