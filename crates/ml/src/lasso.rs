//! LASSO regression by cyclic coordinate descent.
//!
//! One of the alternatives the paper evaluated for speedup modeling
//! (§3.4). The L1 penalty drives uninformative feature weights to
//! exactly zero, which also makes it a useful diagnostic for which of
//! the twelve features carry signal.

use crate::dataset::Dataset;
use crate::linear::LinearModel;

/// LASSO hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LassoParams {
    /// L1 penalty weight.
    pub lambda: f64,
    /// Convergence threshold on the largest coefficient change.
    pub tol: f64,
    /// Maximum coordinate-descent sweeps.
    pub max_sweeps: usize,
}

impl Default for LassoParams {
    fn default() -> Self {
        LassoParams {
            lambda: 0.01,
            tol: 1e-8,
            max_sweeps: 10_000,
        }
    }
}

/// Fit LASSO: minimize `(1/2n)‖Xw − y‖² + λ‖w‖₁` with an unpenalized
/// intercept, by cyclic coordinate descent with soft-thresholding.
///
/// # Panics
/// If the dataset is empty.
pub fn train_lasso(data: &Dataset, params: &LassoParams) -> LinearModel {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let n = data.len();
    let d = data.dims();
    let nf = n as f64;
    // Center targets and features so the intercept separates cleanly.
    let x_mean: Vec<f64> = (0..d)
        .map(|j| data.xs().iter().map(|r| r[j]).sum::<f64>() / nf)
        .collect();
    let y_mean = data.ys().iter().sum::<f64>() / nf;
    let xc: Vec<Vec<f64>> = data
        .xs()
        .iter()
        .map(|r| r.iter().zip(&x_mean).map(|(v, m)| v - m).collect())
        .collect();
    let yc: Vec<f64> = data.ys().iter().map(|y| y - y_mean).collect();
    // Per-feature squared norms (coordinate update denominators).
    let col_sq: Vec<f64> = (0..d)
        .map(|j| xc.iter().map(|r| r[j] * r[j]).sum::<f64>() / nf)
        .collect();

    let mut w = vec![0.0f64; d];
    let mut residual = yc.clone(); // r = y − Xw, maintained incrementally
    for _ in 0..params.max_sweeps {
        let mut max_delta = 0.0f64;
        for j in 0..d {
            if col_sq[j] == 0.0 {
                continue; // constant (centered-to-zero) feature
            }
            // rho = (1/n) Σ x_ij (r_i + x_ij w_j)
            let mut rho = 0.0;
            for i in 0..n {
                rho += xc[i][j] * (residual[i] + xc[i][j] * w[j]);
            }
            rho /= nf;
            let new_w = soft_threshold(rho, params.lambda) / col_sq[j];
            let delta = new_w - w[j];
            if delta != 0.0 {
                for i in 0..n {
                    residual[i] -= xc[i][j] * delta;
                }
                w[j] = new_w;
                max_delta = max_delta.max(delta.abs());
            }
        }
        if max_delta < params.tol {
            break;
        }
    }
    let bias = y_mean - w.iter().zip(&x_mean).map(|(wj, m)| wj * m).sum::<f64>();
    LinearModel { weights: w, bias }
}

fn soft_threshold(x: f64, lambda: f64) -> f64 {
    if x > lambda {
        x - lambda
    } else if x < -lambda {
        x + lambda
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_linear(n: usize) -> Dataset {
        // y depends only on x0 and x2; x1 and x3 are noise carriers.
        let mut d = Dataset::new();
        for i in 0..n {
            let x0 = (i % 13) as f64 / 13.0;
            let x1 = ((i * 5) % 7) as f64 / 7.0;
            let x2 = ((i * 3) % 11) as f64 / 11.0;
            let x3 = ((i * 11) % 5) as f64 / 5.0;
            d.push(vec![x0, x1, x2, x3], 4.0 * x0 - 2.5 * x2 + 1.0);
        }
        d
    }

    #[test]
    fn near_zero_lambda_matches_ols() {
        let data = sparse_linear(60);
        let lasso = train_lasso(
            &data,
            &LassoParams {
                lambda: 1e-9,
                ..Default::default()
            },
        );
        assert!(
            (lasso.weights[0] - 4.0).abs() < 1e-3,
            "w0 {}",
            lasso.weights[0]
        );
        assert!((lasso.weights[2] + 2.5).abs() < 1e-3);
        assert!(lasso.weights[1].abs() < 1e-3);
        assert!(lasso.weights[3].abs() < 1e-3);
    }

    #[test]
    fn l1_penalty_produces_exact_zeros() {
        let data = sparse_linear(60);
        let lasso = train_lasso(
            &data,
            &LassoParams {
                lambda: 0.05,
                ..Default::default()
            },
        );
        assert_eq!(lasso.weights[1], 0.0);
        assert_eq!(lasso.weights[3], 0.0);
        assert!(lasso.weights[0] > 1.0, "informative weight survives");
    }

    #[test]
    fn huge_lambda_kills_all_weights() {
        let data = sparse_linear(40);
        let lasso = train_lasso(
            &data,
            &LassoParams {
                lambda: 1e6,
                ..Default::default()
            },
        );
        assert!(lasso.weights.iter().all(|&w| w == 0.0));
        // The intercept absorbs the mean.
        let y_mean = data.ys().iter().sum::<f64>() / data.len() as f64;
        assert!((lasso.bias - y_mean).abs() < 1e-9);
    }

    #[test]
    fn shrinkage_is_monotone_in_lambda() {
        let data = sparse_linear(60);
        let small = train_lasso(
            &data,
            &LassoParams {
                lambda: 0.01,
                ..Default::default()
            },
        );
        let large = train_lasso(
            &data,
            &LassoParams {
                lambda: 0.2,
                ..Default::default()
            },
        );
        assert!(large.weights[0].abs() <= small.weights[0].abs());
    }

    #[test]
    fn constant_feature_is_ignored() {
        let mut d = Dataset::new();
        for i in 0..30 {
            let x = i as f64 / 30.0;
            d.push(vec![x, 1.0], 2.0 * x);
        }
        let lasso = train_lasso(
            &d,
            &LassoParams {
                lambda: 1e-9,
                ..Default::default()
            },
        );
        assert!((lasso.weights[0] - 2.0).abs() < 1e-3);
        assert_eq!(lasso.weights[1], 0.0);
    }
}
