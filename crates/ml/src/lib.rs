//! `gpufreq-ml` — the regression substrate of the `gpufreq`
//! reproduction of *Predictable GPUs Frequency Scaling for Energy and
//! Performance* (Fan, Cosenza, Juurlink — ICPP 2019).
//!
//! Everything is implemented from scratch:
//!
//! * [`svr`] — ε-support-vector regression trained by SMO with
//!   second-order working-set selection and an LRU kernel-row cache
//!   (the paper's model class: linear kernel for speedup, RBF with
//!   `γ = 0.1` for normalized energy, both at `C = 1000`, `ε = 0.1`);
//! * [`linear`] — OLS / ridge via pivoted Gaussian elimination,
//!   [`lasso`] — coordinate descent, [`poly`] — degree-2 polynomial
//!   ridge: the alternatives §3.4 reports comparing against;
//! * [`dataset`] — seeded shuffling/splitting, [`scale`] — the min-max
//!   feature scaler of §3.2;
//! * [`metrics`] — RMSE%, signed percentage errors and box-plot
//!   statistics exactly as reported in Figs. 6–7.
//!
//! # Example
//!
//! ```
//! use gpufreq_ml::{Dataset, SvrParams, train_svr};
//!
//! let mut data = Dataset::new();
//! for i in 0..50 {
//!     let x = i as f64 / 49.0;
//!     data.push(vec![x], 2.0 * x + 1.0);
//! }
//! let model = train_svr(&data, &SvrParams::paper_speedup());
//! assert!((model.predict(&[0.5]) - 2.0).abs() < 0.15);
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod kernel_fn;
pub mod lasso;
pub mod linear;
pub mod metrics;
pub mod poly;
pub mod scale;
pub mod svr;

pub use dataset::Dataset;
pub use kernel_fn::SvmKernel;
pub use lasso::{train_lasso, LassoParams};
pub use linear::{solve_linear_system, train_ols, train_ridge, LinearModel};
pub use metrics::{mae, percent_errors, r2, rmse, rmse_percent, BoxStats};
pub use poly::{expand, train_poly, PolyModel};
pub use scale::MinMaxScaler;
pub use svr::{train_svr, ScoringPlan, SvrModel, SvrParams, TransposedBlock};
