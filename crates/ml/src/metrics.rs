//! Regression error metrics and box-plot statistics.
//!
//! Provides exactly the quantities the paper's evaluation reports:
//! per-group RMSE in percent (Figs. 6–7 captions) and the
//! min / 25th / median / 75th / max error distributions drawn as
//! box-plots.

use serde::{Deserialize, Serialize};

/// Root mean squared error.
///
/// # Panics
/// If inputs differ in length or are empty.
pub fn rmse(truth: &[f64], pred: &[f64]) -> f64 {
    check(truth, pred);
    let sq: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p) * (t - p)).sum();
    (sq / truth.len() as f64).sqrt()
}

/// Mean absolute error.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    check(truth, pred);
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// Signed relative errors in percent: `(pred − truth) / truth · 100`.
/// Positive = over-approximation (the convention of Figs. 6–7).
pub fn percent_errors(truth: &[f64], pred: &[f64]) -> Vec<f64> {
    check(truth, pred);
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| {
            assert!(*t != 0.0, "relative error undefined for zero truth");
            (p - t) / t * 100.0
        })
        .collect()
}

/// RMSE of the relative errors, in percent — the per-memory-domain
/// figure the paper prints next to each box-plot (e.g. "RMSE = 6.68%").
pub fn rmse_percent(truth: &[f64], pred: &[f64]) -> f64 {
    let errs = percent_errors(truth, pred);
    (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt()
}

/// Coefficient of determination R².
pub fn r2(truth: &[f64], pred: &[f64]) -> f64 {
    check(truth, pred);
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p) * (t - p)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

fn check(truth: &[f64], pred: &[f64]) {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "metrics need at least one sample");
}

/// Five-number summary for box-plots: min, lower quartile, median,
/// upper quartile, max.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxStats {
    /// Compute the summary of `values` (linear-interpolated quantiles).
    ///
    /// # Panics
    /// If `values` is empty.
    pub fn from_values(values: &[f64]) -> BoxStats {
        assert!(!values.is_empty(), "box stats need at least one value");
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in metrics"));
        BoxStats {
            min: v[0],
            q25: quantile(&v, 0.25),
            median: quantile(&v, 0.5),
            q75: quantile(&v, 0.75),
            max: v[v.len() - 1],
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q75 - self.q25
    }
}

/// Linear-interpolated quantile of an already-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_perfect_is_zero() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        // Errors 3 and 4 -> sqrt((9+16)/2) = 3.5355...
        let r = rmse(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((r - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mae_known_value() {
        assert_eq!(mae(&[0.0, 0.0], &[3.0, -4.0]), 3.5);
    }

    #[test]
    fn percent_errors_signed() {
        let e = percent_errors(&[2.0, 4.0], &[2.2, 3.0]);
        assert!((e[0] - 10.0).abs() < 1e-12);
        assert!((e[1] + 25.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_percent_known() {
        let r = rmse_percent(&[1.0, 1.0], &[1.1, 0.9]);
        assert!((r - 10.0).abs() < 1e-9);
    }

    #[test]
    fn r2_perfect_and_mean_model() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(r2(&truth, &truth), 1.0);
        let mean = [2.5, 2.5, 2.5, 2.5];
        assert!(r2(&truth, &mean).abs() < 1e-12);
    }

    #[test]
    fn box_stats_of_known_sequence() {
        let b = BoxStats::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.q25, 2.0);
        assert_eq!(b.q75, 4.0);
        assert_eq!(b.iqr(), 2.0);
    }

    #[test]
    fn box_stats_single_value() {
        let b = BoxStats::from_values(&[7.0]);
        assert_eq!((b.min, b.median, b.max), (7.0, 7.0, 7.0));
    }

    #[test]
    fn box_stats_unsorted_input() {
        let b = BoxStats::from_values(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(b.median, 3.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "zero truth")]
    fn zero_truth_relative_error_panics() {
        percent_errors(&[0.0], &[1.0]);
    }
}
