//! Polynomial regression: degree-2 feature expansion over ridge.
//!
//! The alternative the paper evaluated for the normalized-energy model
//! before selecting RBF SVR (§3.4) — energy is parabolic in the core
//! frequency, so a quadratic expansion is the natural classical
//! baseline.

use crate::dataset::Dataset;
use crate::linear::{train_ridge, LinearModel};
use serde::{Deserialize, Serialize};

/// A polynomial model: degree-2 expansion (all squares and pairwise
/// interactions) feeding a linear model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolyModel {
    dims: usize,
    linear: LinearModel,
}

impl PolyModel {
    /// Predict one row (of the *original* dimensionality).
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dims);
        self.linear.predict(&expand(x))
    }

    /// Predict a batch of rows.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Width of the expanded feature space.
    pub fn expanded_dims(&self) -> usize {
        self.linear.weights.len()
    }
}

/// Degree-2 expansion: `x` followed by all `x_i · x_j` for `i ≤ j`.
pub fn expand(x: &[f64]) -> Vec<f64> {
    let d = x.len();
    let mut out = Vec::with_capacity(d + d * (d + 1) / 2);
    out.extend_from_slice(x);
    for i in 0..d {
        for j in i..d {
            out.push(x[i] * x[j]);
        }
    }
    out
}

/// Fit a degree-2 polynomial model with ridge penalty `lambda`.
///
/// # Panics
/// If the dataset is empty.
pub fn train_poly(data: &Dataset, lambda: f64) -> PolyModel {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let dims = data.dims();
    let expanded = data.map_rows(expand);
    PolyModel {
        dims,
        linear: train_ridge(&expanded, lambda),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_width() {
        assert_eq!(expand(&[1.0, 2.0]).len(), 2 + 3);
        assert_eq!(expand(&[1.0, 2.0, 3.0]).len(), 3 + 6);
        assert_eq!(expand(&[2.0, 3.0]), vec![2.0, 3.0, 4.0, 6.0, 9.0]);
    }

    #[test]
    fn fits_a_parabola_exactly() {
        // y = (x - 0.6)^2 + 0.2 — the energy-curve shape.
        let mut d = Dataset::new();
        for i in 0..40 {
            let x = i as f64 / 39.0;
            d.push(vec![x], (x - 0.6) * (x - 0.6) + 0.2);
        }
        let model = train_poly(&d, 1e-9);
        for i in 0..40 {
            let x = i as f64 / 39.0;
            let want = (x - 0.6) * (x - 0.6) + 0.2;
            assert!((model.predict(&[x]) - want).abs() < 1e-5);
        }
    }

    #[test]
    fn fits_interaction_terms() {
        // y = x0 * x1.
        let mut d = Dataset::new();
        for i in 0..8 {
            for j in 0..8 {
                let (a, b) = (i as f64 / 7.0, j as f64 / 7.0);
                d.push(vec![a, b], a * b);
            }
        }
        let model = train_poly(&d, 1e-9);
        assert!((model.predict(&[0.5, 0.4]) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn linear_functions_are_a_special_case() {
        let mut d = Dataset::new();
        for i in 0..20 {
            let x = i as f64 / 19.0;
            d.push(vec![x], 3.0 * x - 1.0);
        }
        let model = train_poly(&d, 1e-9);
        assert!((model.predict(&[0.25]) - (-0.25)).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn wrong_input_width_panics() {
        let mut d = Dataset::new();
        d.push(vec![1.0, 2.0], 3.0);
        let model = train_poly(&d, 1e-6);
        model.predict(&[1.0]);
    }
}
