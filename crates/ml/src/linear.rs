//! Ordinary least squares and ridge regression.
//!
//! These are the simpler alternatives the paper reports evaluating for
//! the speedup model before selecting linear SVR (§3.4); they are kept
//! as ablation baselines (`ablation_models` bench).

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// A linear model `y = w · x + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
}

impl LinearModel {
    /// Predict one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.weights.len());
        self.bias + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }

    /// Predict a batch of rows.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// Fit OLS via the normal equations (`λ = 0`) — see [`train_ridge`].
pub fn train_ols(data: &Dataset) -> LinearModel {
    train_ridge(data, 0.0)
}

/// Fit ridge regression: minimize `‖Xw − y‖² + λ‖w‖²` (the intercept is
/// not penalized). Solved by Gaussian elimination with partial pivoting
/// on the regularized normal equations.
///
/// # Panics
/// If the dataset is empty or the (regularized) system is singular.
pub fn train_ridge(data: &Dataset, lambda: f64) -> LinearModel {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert!(lambda >= 0.0);
    let n = data.len();
    let d = data.dims();
    let m = d + 1; // trailing column is the intercept
                   // Normal equations A = X'X + λI, rhs = X'y, with the intercept as
                   // an extra all-ones feature (unpenalized).
    let mut a = vec![vec![0.0f64; m]; m];
    let mut rhs = vec![0.0f64; m];
    for i in 0..n {
        let (x, y) = data.sample(i);
        for r in 0..m {
            let xr = if r < d { x[r] } else { 1.0 };
            rhs[r] += xr * y;
            for c in 0..m {
                let xc = if c < d { x[c] } else { 1.0 };
                a[r][c] += xr * xc;
            }
        }
    }
    for (j, row) in a.iter_mut().enumerate().take(d) {
        row[j] += lambda;
    }
    // Tiny jitter keeps OLS solvable on rank-deficient designs
    // (duplicate or constant columns), matching common library behaviour.
    for (j, row) in a.iter_mut().enumerate() {
        row[j] += 1e-10;
    }
    let sol = solve_linear_system(a, rhs);
    LinearModel {
        weights: sol[..d].to_vec(),
        bias: sol[d],
    }
}

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
///
/// # Panics
/// If `A` is singular to working precision.
pub fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let m = a.len();
    assert!(a.iter().all(|r| r.len() == m), "matrix must be square");
    assert_eq!(b.len(), m);
    for col in 0..m {
        // Partial pivoting.
        let pivot = (col..m)
            .max_by(|&r1, &r2| a[r1][col].abs().partial_cmp(&a[r2][col].abs()).unwrap())
            .expect("non-empty column");
        assert!(a[pivot][col].abs() > 1e-300, "singular system");
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..m {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            let (upper, lower) = a.split_at_mut(row);
            let pivot_row = &upper[col];
            for (lhs, rhs) in lower[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *lhs -= factor * rhs;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; m];
    for row in (0..m).rev() {
        let mut acc = b[row];
        for k in row + 1..m {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_linear(n: usize) -> Dataset {
        // y = 1.5 x0 - 2 x1 + 4
        let mut d = Dataset::new();
        for i in 0..n {
            let x0 = i as f64 / n as f64;
            let x1 = ((i * 7) % n) as f64 / n as f64;
            d.push(vec![x0, x1], 1.5 * x0 - 2.0 * x1 + 4.0);
        }
        d
    }

    #[test]
    fn ols_recovers_exact_coefficients() {
        let model = train_ols(&exact_linear(50));
        assert!((model.weights[0] - 1.5).abs() < 1e-6);
        assert!((model.weights[1] + 2.0).abs() < 1e-6);
        assert!((model.bias - 4.0).abs() < 1e-6);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let data = exact_linear(50);
        let ols = train_ols(&data);
        let ridge = train_ridge(&data, 100.0);
        assert!(ridge.weights[0].abs() < ols.weights[0].abs());
        assert!(ridge.weights[1].abs() < ols.weights[1].abs());
    }

    #[test]
    fn solve_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_linear_system(a, vec![3.0, -2.0]);
        assert_eq!(x, vec![3.0, -2.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![2.0, 1.0]];
        let x = solve_linear_system(a, vec![1.0, 4.0]);
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "singular system")]
    fn singular_system_panics() {
        let a = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        solve_linear_system(a, vec![1.0, 2.0]);
    }

    #[test]
    fn rank_deficient_design_still_fits() {
        // Duplicate column: jitter keeps the system solvable and
        // predictions exact even though weights are not unique.
        let mut d = Dataset::new();
        for i in 0..20 {
            let x = i as f64;
            d.push(vec![x, x], 3.0 * x + 1.0);
        }
        let model = train_ols(&d);
        for i in 0..20 {
            let x = i as f64;
            assert!((model.predict(&[x, x]) - (3.0 * x + 1.0)).abs() < 1e-4);
        }
    }

    #[test]
    fn predict_batch_matches_predict() {
        let data = exact_linear(10);
        let model = train_ols(&data);
        let batch = model.predict_batch(data.xs());
        for (i, p) in batch.iter().enumerate() {
            assert_eq!(*p, model.predict(data.sample(i).0));
        }
    }
}
