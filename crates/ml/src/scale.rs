//! Min-max feature scaling.
//!
//! §3.2 requires every feature to be mapped into `[0, 1]` so each
//! contributes proportionately to the kernel functions. The scaler is
//! fit on the training set and applied unchanged to new codes — test
//! features may therefore fall slightly outside `[0, 1]`, which is
//! correct behaviour (clamping would distort the geometry).

use serde::{Deserialize, Serialize};

/// Per-dimension min-max scaler: `x' = (x - lo) / (hi - lo)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl MinMaxScaler {
    /// Fit the scaler on `rows`.
    ///
    /// Constant dimensions (`hi == lo`) are passed through unscaled so
    /// they stay finite.
    ///
    /// # Panics
    /// If `rows` is empty or rows have inconsistent widths.
    pub fn fit(rows: &[Vec<f64>]) -> MinMaxScaler {
        let d = rows.first().expect("cannot fit a scaler on no rows").len();
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for r in rows {
            assert_eq!(r.len(), d, "inconsistent row widths");
            for (j, &v) in r.iter().enumerate() {
                lo[j] = lo[j].min(v);
                hi[j] = hi[j].max(v);
            }
        }
        MinMaxScaler { lo, hi }
    }

    /// Identity scaler of width `d` (useful as a neutral default).
    pub fn identity(d: usize) -> MinMaxScaler {
        MinMaxScaler {
            lo: vec![0.0; d],
            hi: vec![1.0; d],
        }
    }

    /// Feature width this scaler was fit on.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Scale one row.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; row.len()];
        self.transform_into(row, &mut out);
        out
    }

    /// Scale one row into a caller-owned buffer — the allocation-free
    /// twin of [`MinMaxScaler::transform`], bit-identical to it (same
    /// per-dimension expression, including the constant-dimension
    /// passthrough). Hot scoring paths reuse one stack buffer per
    /// candidate instead of allocating a `Vec` per transform.
    ///
    /// # Panics
    /// If `row` or `out` width differs from [`MinMaxScaler::dims`].
    pub fn transform_into(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(row.len(), self.dims());
        assert_eq!(out.len(), self.dims());
        for (j, (&v, slot)) in row.iter().zip(out.iter_mut()).enumerate() {
            let range = self.hi[j] - self.lo[j];
            *slot = if range == 0.0 {
                v
            } else {
                (v - self.lo[j]) / range
            };
        }
    }

    /// Invert [`MinMaxScaler::transform`].
    pub fn inverse(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.dims());
        row.iter()
            .enumerate()
            .map(|(j, &v)| {
                let range = self.hi[j] - self.lo[j];
                if range == 0.0 {
                    v
                } else {
                    v * range + self.lo[j]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_training_data_to_unit_cube() {
        let rows = vec![vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 15.0]];
        let s = MinMaxScaler::fit(&rows);
        for r in &rows {
            for v in s.transform(r) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        assert_eq!(s.transform(&rows[0]), vec![0.0, 0.0]);
        assert_eq!(s.transform(&[10.0, 20.0]), vec![1.0, 1.0]);
    }

    #[test]
    fn out_of_range_test_data_extrapolates() {
        let s = MinMaxScaler::fit(&[vec![0.0], vec![10.0]]);
        assert_eq!(s.transform(&[20.0]), vec![2.0]);
        assert_eq!(s.transform(&[-10.0]), vec![-1.0]);
    }

    #[test]
    fn constant_dimension_passthrough() {
        let s = MinMaxScaler::fit(&[vec![7.0, 1.0], vec![7.0, 2.0]]);
        let t = s.transform(&[7.0, 1.5]);
        assert_eq!(t[0], 7.0);
        assert_eq!(t[1], 0.5);
    }

    #[test]
    fn inverse_round_trips() {
        let rows = vec![
            vec![1.0, -3.0, 8.0],
            vec![4.0, 5.0, -2.0],
            vec![0.5, 0.0, 3.0],
        ];
        let s = MinMaxScaler::fit(&rows);
        for r in &rows {
            let back = s.inverse(&s.transform(r));
            for (a, b) in r.iter().zip(back) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn identity_is_noop() {
        let s = MinMaxScaler::identity(2);
        assert_eq!(s.transform(&[3.0, 4.0]), vec![3.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn wrong_width_panics() {
        let s = MinMaxScaler::fit(&[vec![1.0, 2.0]]);
        s.transform(&[1.0]);
    }
}
