//! Cross-model integration tests: all regressors on shared synthetic
//! tasks, mirroring the paper's model-selection study (§3.4).

use gpufreq_ml::{
    rmse, train_lasso, train_ols, train_poly, train_ridge, train_svr, Dataset, LassoParams,
    MinMaxScaler, SvmKernel, SvrParams,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `y = 1.2·x0 − 0.7·x1 + 0.3 + noise` — the "speedup-like" task
/// (globally linear).
fn linear_task(n: usize, noise: f64, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut d = Dataset::new();
    for _ in 0..n {
        let x0: f64 = rng.gen_range(0.0..1.0);
        let x1: f64 = rng.gen_range(0.0..1.0);
        let e: f64 = rng.gen_range(-noise..=noise);
        d.push(vec![x0, x1], 1.2 * x0 - 0.7 * x1 + 0.3 + e);
    }
    d
}

/// `y = (x0 − 0.55)² · 2 + 0.8 + 0.2·x1` — the "energy-like" task
/// (parabola with an interior minimum, §1.1).
fn parabola_task(n: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut d = Dataset::new();
    for _ in 0..n {
        let x0: f64 = rng.gen_range(0.0..1.0);
        let x1: f64 = rng.gen_range(0.0..1.0);
        d.push(
            vec![x0, x1],
            (x0 - 0.55) * (x0 - 0.55) * 2.0 + 0.8 + 0.2 * x1,
        );
    }
    d
}

fn split(mut d: Dataset, seed: u64) -> (Dataset, Dataset) {
    d.shuffle(seed);
    d.split(0.8)
}

#[test]
fn on_linear_tasks_all_linear_models_agree() {
    let (train, test) = split(linear_task(300, 0.02, 7), 1);
    let ols = train_ols(&train);
    let ridge = train_ridge(&train, 1e-6);
    let lasso = train_lasso(
        &train,
        &LassoParams {
            lambda: 1e-8,
            ..Default::default()
        },
    );
    let svr = train_svr(
        &train,
        &SvrParams {
            c: 100.0,
            epsilon: 0.01,
            ..SvrParams::paper_speedup()
        },
    );
    for model_preds in [
        ols.predict_batch(test.xs()),
        ridge.predict_batch(test.xs()),
        lasso.predict_batch(test.xs()),
        svr.predict_batch(test.xs()),
    ] {
        let e = rmse(test.ys(), &model_preds);
        assert!(e < 0.03, "rmse {e}");
    }
}

#[test]
fn linear_models_fail_on_the_parabola_where_rbf_and_poly_succeed() {
    // The paper's justification for RBF on normalized energy: the
    // relation "is not linear ... parabolic behavior with a minimum".
    let (train, test) = split(parabola_task(300, 9), 2);
    let ols = train_ols(&train);
    let ols_rmse = rmse(test.ys(), &ols.predict_batch(test.xs()));
    let poly = train_poly(&train, 1e-9);
    let poly_rmse = rmse(test.ys(), &poly.predict_batch(test.xs()));
    let rbf = train_svr(
        &train,
        &SvrParams {
            c: 100.0,
            epsilon: 0.005,
            kernel: SvmKernel::Rbf { gamma: 2.0 },
            ..SvrParams::paper_energy()
        },
    );
    let rbf_rmse = rmse(test.ys(), &rbf.predict_batch(test.xs()));
    assert!(
        poly_rmse < ols_rmse / 3.0,
        "poly {poly_rmse} vs ols {ols_rmse}"
    );
    assert!(
        rbf_rmse < ols_rmse / 3.0,
        "rbf {rbf_rmse} vs ols {ols_rmse}"
    );
}

#[test]
fn scaling_pipeline_preserves_model_quality() {
    // Fit scaler on train only, apply to both — no leakage, no loss.
    let (train, test) = split(linear_task(200, 0.01, 3), 5);
    let scaler = MinMaxScaler::fit(train.xs());
    let train_s = train.map_rows(|r| scaler.transform(r));
    let test_s = test.map_rows(|r| scaler.transform(r));
    let svr = train_svr(
        &train_s,
        &SvrParams {
            c: 100.0,
            epsilon: 0.01,
            ..SvrParams::paper_speedup()
        },
    );
    let e = rmse(test_s.ys(), &svr.predict_batch(test_s.xs()));
    assert!(e < 0.03, "rmse {e}");
}

#[test]
fn epsilon_bounds_training_residuals() {
    // Converged ε-SVR leaves every non-support residual within the tube.
    let data = linear_task(150, 0.0, 11);
    for eps in [0.2, 0.05, 0.01] {
        let model = train_svr(
            &data,
            &SvrParams {
                c: 1000.0,
                epsilon: eps,
                max_iter: 0,
                ..SvrParams::paper_speedup()
            },
        );
        let worst = data
            .xs()
            .iter()
            .zip(data.ys())
            .map(|(x, y)| (model.predict(x) - y).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < eps + 0.01, "eps {eps}: worst residual {worst}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// OLS on exactly-linear data recovers predictions regardless of
    /// the coefficient scale.
    #[test]
    fn ols_scale_invariance(a in -5.0f64..5.0, b in -5.0f64..5.0, c in -5.0f64..5.0) {
        let mut d = Dataset::new();
        for i in 0..40 {
            let x0 = i as f64 / 40.0;
            let x1 = ((i * 13) % 40) as f64 / 40.0;
            d.push(vec![x0, x1], a * x0 + b * x1 + c);
        }
        let m = train_ols(&d);
        for i in 0..40 {
            let (x, y) = d.sample(i);
            prop_assert!((m.predict(x) - y).abs() < 1e-6);
        }
    }

    /// SVR predictions are permutation-invariant in the training order.
    #[test]
    fn svr_order_invariance(seed in 0u64..100) {
        let base = linear_task(60, 0.01, 42);
        let mut shuffled = base.clone();
        shuffled.shuffle(seed);
        let p = SvrParams { c: 50.0, epsilon: 0.01, ..SvrParams::paper_speedup() };
        let m1 = train_svr(&base, &p);
        let m2 = train_svr(&shuffled, &p);
        for i in 0..10 {
            let x = [i as f64 / 10.0, 0.5];
            prop_assert!((m1.predict(&x) - m2.predict(&x)).abs() < 0.02);
        }
    }
}
