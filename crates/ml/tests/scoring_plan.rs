//! Property pin: the batched [`ScoringPlan`] is bit-for-bit identical
//! to the scalar [`SvrModel::predict`] path it replaced.
//!
//! The hot predict pipeline swapped its inner loop from per-point
//! scalar evaluation to the flattened scoring plan on the promise that
//! no persisted prediction changes — this suite holds that promise
//! against *random* models (every kernel family, arbitrary support
//! vectors and coefficients via [`SvrModel::from_parts`]), not just the
//! trained models the unit tests happen to produce.

use gpufreq_ml::{SvmKernel, SvrModel};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random model with `n_sv` support vectors of width `dims`.
fn random_model(kernel: SvmKernel, dims: usize, n_sv: usize, seed: u64) -> SvrModel {
    let mut rng = SmallRng::seed_from_u64(seed);
    let support_x: Vec<Vec<f64>> = (0..n_sv)
        .map(|_| (0..dims).map(|_| rng.gen_range(-3.0..3.0)).collect())
        .collect();
    let beta: Vec<f64> = (0..n_sv).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let bias = rng.gen_range(-1.0..1.0);
    SvrModel::from_parts(kernel, support_x, beta, bias)
}

fn random_rows(dims: usize, n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dims).map(|_| rng.gen_range(-5.0..5.0)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `ScoringPlan::score` and `score_block_into` reproduce
    /// `SvrModel::predict` to the bit on every kernel family.
    #[test]
    fn plan_is_bitwise_identical_to_predict(
        seed in 0u64..100_000,
        dims in 1usize..12,
        n_sv in 1usize..24,
        gamma in 0.01f64..3.0,
        coef0 in -1.0f64..1.0,
    ) {
        let kernels = [
            SvmKernel::Linear,
            SvmKernel::Rbf { gamma },
            SvmKernel::Polynomial { gamma, coef0, degree: 3 },
        ];
        for kernel in kernels {
            let model = random_model(kernel, dims, n_sv, seed);
            let plan = model.scoring_plan();
            let rows = random_rows(dims, 8, seed ^ 0x5eed);
            // Single-row entry point.
            for row in &rows {
                prop_assert_eq!(plan.score(row).to_bits(), model.predict(row).to_bits());
            }
            // Row-major block entry point.
            let block: Vec<f64> = rows.iter().flatten().copied().collect();
            let mut out = Vec::new();
            plan.score_block_into(&block, &mut out);
            prop_assert_eq!(out.len(), rows.len());
            for (row, got) in rows.iter().zip(&out) {
                prop_assert_eq!(got.to_bits(), model.predict(row).to_bits());
            }
        }
    }

    /// The generic `predict_batch` gives the same bits for owned and
    /// borrowed row representations.
    #[test]
    fn predict_batch_is_representation_independent(
        seed in 0u64..100_000,
        dims in 1usize..8,
        n_sv in 1usize..16,
    ) {
        let model = random_model(SvmKernel::Rbf { gamma: 0.5 }, dims, n_sv, seed);
        let owned = random_rows(dims, 6, seed ^ 0xb10c);
        let borrowed: Vec<&[f64]> = owned.iter().map(Vec::as_slice).collect();
        let a = model.predict_batch(&owned);
        let b = model.predict_batch(&borrowed);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
