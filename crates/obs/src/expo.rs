//! Prometheus-style text exposition: a builder for the `/metrics`
//! responses and a validating parser for tests, `loadgen --trace`,
//! and the CI smoke jobs.
//!
//! The builder emits the classic text format — `# HELP` / `# TYPE`
//! headers, `name{label="value"} 123` samples, histograms as
//! cumulative `_bucket{le="..."}` series ending in `+Inf` plus
//! `_count` and `_sum`. Only the slice of the format this workspace
//! emits is implemented (integer-valued counters/gauges, µs-bucketed
//! histograms, no timestamps, no escaping beyond label values) — and
//! the parser checks exactly that slice, strictly: unknown sample
//! names, non-monotone cumulative buckets, or a `_count`/`+Inf`
//! mismatch are errors, so a drifting emitter fails loudly.

use crate::spans::{bucket_upper_bound_us, HistogramSnapshot};

/// Builder for one exposition document.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                // Label values here are ids/paths; escape the three
                // characters the format reserves.
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        _ => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// A monotonically increasing counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, &[], value);
    }

    /// A point-in-time gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// An info-style gauge: constant 1 with identifying labels (the
    /// `build_info` idiom).
    pub fn info(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) {
        self.header(name, help, "gauge");
        self.sample(name, labels, 1);
    }

    /// One labeled gauge sample under an already-emitted or new
    /// family; emits the header only when `help` is `Some`.
    pub fn labeled_gauge(
        &mut self,
        name: &str,
        help: Option<&str>,
        labels: &[(&str, &str)],
        value: u64,
    ) {
        if let Some(help) = help {
            self.header(name, help, "gauge");
        }
        self.sample(name, labels, value);
    }

    /// A histogram family from a snapshot: cumulative power-of-two
    /// `_bucket{le="..."}` series (empty buckets above the last
    /// occupied one are folded into `+Inf` to keep documents short),
    /// then `_count` and `_sum`.
    pub fn histogram_us(&mut self, name: &str, help: &str, snap: &HistogramSnapshot) {
        self.header(name, help, "histogram");
        let last_occupied = snap
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |i| i + 1);
        let mut cumulative = 0u64;
        for (i, n) in snap.buckets.iter().take(last_occupied).enumerate() {
            cumulative += n;
            let le = bucket_upper_bound_us(i).to_string();
            self.sample(&format!("{name}_bucket"), &[("le", &le)], cumulative);
        }
        self.sample(&format!("{name}_bucket"), &[("le", "+Inf")], snap.count);
        self.sample(&format!("{name}_count"), &[], snap.count);
        self.sample(&format!("{name}_sum"), &[], snap.sum_us);
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// One parsed sample: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The sample name (family name plus `_bucket`/`_count`/`_sum`
    /// suffix for histograms).
    pub name: String,
    /// Label pairs in document order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// One parsed metric family.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Family name from the `# TYPE` line.
    pub name: String,
    /// `counter`, `gauge`, or `histogram`.
    pub kind: String,
    /// Samples belonging to this family, in document order.
    pub samples: Vec<Sample>,
}

impl Family {
    /// The value of the first sample with no labels (counters/gauges).
    pub fn value(&self) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.labels.is_empty())
            .map(|s| s.value)
    }

    /// For a histogram family: the `_count` sample's value.
    pub fn count(&self) -> Option<u64> {
        self.samples
            .iter()
            .find(|s| s.name == format!("{}_count", self.name))
            .map(|s| s.value as u64)
    }

    /// For a histogram family: `(le_upper_bound_us, cumulative_count)`
    /// pairs excluding `+Inf`, in document order.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        let bucket_name = format!("{}_bucket", self.name);
        self.samples
            .iter()
            .filter(|s| s.name == bucket_name)
            .filter_map(|s| {
                let le = s.labels.iter().find(|(k, _)| k == "le")?;
                le.1.parse::<u64>().ok().map(|b| (b, s.value as u64))
            })
            .collect()
    }
}

/// Parse and validate an exposition document. Errors name the first
/// offending line. Validation covers the slice [`Exposition`] emits:
/// every sample must belong to the most recent `# TYPE` family,
/// histogram buckets must be cumulative (non-decreasing) and agree
/// with `_count` at `+Inf`, and every histogram must carry `_count`
/// and `_sum`.
pub fn parse(text: &str) -> Result<Vec<Family>, String> {
    let mut families: Vec<Family> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {line}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or("").to_string();
            let kind = it.next().ok_or_else(|| err("missing TYPE kind"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(err("unknown TYPE kind"));
            }
            if name.is_empty() {
                return Err(err("empty TYPE name"));
            }
            families.push(Family {
                name,
                kind: kind.to_string(),
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP and comments
        }
        let sample = parse_sample(line).map_err(|m| err(&m))?;
        let family = families
            .last_mut()
            .ok_or_else(|| err("sample before any # TYPE header"))?;
        let belongs = sample.name == family.name
            || (family.kind == "histogram"
                && [
                    format!("{}_bucket", family.name),
                    format!("{}_count", family.name),
                    format!("{}_sum", family.name),
                ]
                .contains(&sample.name));
        if !belongs {
            return Err(err("sample does not belong to the preceding family"));
        }
        family.samples.push(sample);
    }
    for family in &families {
        if family.kind == "histogram" {
            validate_histogram(family)?;
        } else if family.samples.is_empty() {
            return Err(format!("family {} has no samples", family.name));
        }
    }
    Ok(families)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_labels, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| "sample missing value".to_string())?;
    let value: f64 = value
        .parse()
        .map_err(|_| "unparseable sample value".to_string())?;
    let (name, labels) = match name_labels.split_once('{') {
        None => (name_labels.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| "unterminated label set".to_string())?;
            let mut labels = Vec::new();
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair
                    .split_once("=\"")
                    .ok_or_else(|| "malformed label".to_string())?;
                let v = v
                    .strip_suffix('"')
                    .ok_or_else(|| "unterminated label value".to_string())?;
                labels.push((k.to_string(), v.replace("\\\"", "\"").replace("\\\\", "\\")));
            }
            (name.to_string(), labels)
        }
    };
    if name.is_empty() {
        return Err("empty sample name".to_string());
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn validate_histogram(family: &Family) -> Result<(), String> {
    let name = &family.name;
    let mut last = 0u64;
    for (le, cumulative) in family.buckets() {
        if cumulative < last {
            return Err(format!(
                "{name}: cumulative bucket le=\"{le}\" decreases ({cumulative} < {last})"
            ));
        }
        last = cumulative;
    }
    let inf = family
        .samples
        .iter()
        .find(|s| {
            s.name == format!("{name}_bucket")
                && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
        })
        .ok_or_else(|| format!("{name}: histogram missing +Inf bucket"))?
        .value as u64;
    let count = family
        .count()
        .ok_or_else(|| format!("{name}: histogram missing _count"))?;
    if inf != count || inf < last {
        return Err(format!(
            "{name}: +Inf bucket {inf} disagrees with _count {count} / last bucket {last}"
        ));
    }
    if !family
        .samples
        .iter()
        .any(|s| s.name == format!("{name}_sum"))
    {
        return Err(format!("{name}: histogram missing _sum"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::Histogram;

    #[test]
    fn counters_gauges_and_info_round_trip() {
        let mut expo = Exposition::new();
        expo.counter("gpufreq_requests_total", "Requests answered.", 42);
        expo.gauge("gpufreq_queue_depth", "Jobs waiting.", 3);
        expo.info(
            "gpufreq_build_info",
            "Build metadata.",
            &[("rev", "abc123"), ("crate", "serve")],
        );
        let text = expo.finish();
        let families = parse(&text).expect("parses");
        assert_eq!(families.len(), 3);
        assert_eq!(families[0].value(), Some(42.0));
        assert_eq!(families[1].value(), Some(3.0));
        assert_eq!(
            families[2].samples[0].labels,
            vec![
                ("rev".to_string(), "abc123".to_string()),
                ("crate".to_string(), "serve".to_string())
            ]
        );
    }

    #[test]
    fn histograms_expose_cumulative_buckets_and_round_trip() {
        let h = Histogram::new();
        for us in [1, 1, 8, 4096] {
            h.observe_us(us);
        }
        let mut expo = Exposition::new();
        expo.histogram_us("gpufreq_stage_score_us", "Score stage.", &h.snapshot());
        let text = expo.finish();
        let families = parse(&text).expect("parses");
        assert_eq!(families.len(), 1);
        let f = &families[0];
        assert_eq!(f.kind, "histogram");
        assert_eq!(f.count(), Some(4));
        let buckets = f.buckets();
        // Cumulative: the le="1" bucket holds 2, the le="15" bucket
        // (8µs) 3, the le="8191" bucket all 4.
        assert_eq!(buckets.first(), Some(&(1, 2)));
        assert!(buckets.contains(&(15, 3)), "{buckets:?}");
        assert_eq!(buckets.last(), Some(&(8191, 4)));
        assert!(text.contains("gpufreq_stage_score_us_sum 4106"), "{text}");
    }

    #[test]
    fn empty_histograms_still_parse() {
        let mut expo = Exposition::new();
        expo.histogram_us("empty_us", "Nothing yet.", &Histogram::new().snapshot());
        let text = expo.finish();
        let families = parse(&text).expect("parses");
        assert_eq!(families[0].count(), Some(0));
        assert!(families[0].buckets().is_empty());
    }

    #[test]
    fn parser_rejects_drifting_documents() {
        assert!(parse("orphan_sample 1").is_err(), "sample before TYPE");
        assert!(
            parse("# TYPE a counter\nb 1").is_err(),
            "foreign sample under a family"
        );
        assert!(parse("# TYPE a weird\na 1").is_err(), "unknown family kind");
        let shrinking = "# TYPE h histogram\n\
                         h_bucket{le=\"1\"} 5\n\
                         h_bucket{le=\"3\"} 2\n\
                         h_bucket{le=\"+Inf\"} 5\n\
                         h_count 5\nh_sum 9\n";
        assert!(parse(shrinking).is_err(), "non-monotone buckets");
        let mismatched = "# TYPE h histogram\n\
                          h_bucket{le=\"+Inf\"} 4\n\
                          h_count 5\nh_sum 9\n";
        assert!(parse(mismatched).is_err(), "+Inf != _count");
        assert!(
            parse("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 0\nh_count 0\n").is_err(),
            "missing _sum"
        );
        assert!(parse("# TYPE a counter\na one").is_err(), "bad value");
    }
}
