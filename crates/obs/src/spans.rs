//! Per-stage latency spans: monotonic-clock timers feeding lock-free
//! power-of-two histograms.
//!
//! The bucket layout matches the serve daemon's whole-request
//! histogram (bucket *i* covers `[2^i, 2^(i+1))` µs, with bucket 0
//! absorbing sub-µs observations and the last bucket open-ended), so
//! per-stage and whole-request quantiles read on the same scale.
//! Recording is wait-free (`Relaxed` counter bumps); snapshots are
//! advisory, like every other metrics read in the workspace.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of power-of-two buckets: covers 1µs .. ~2^39µs (~6 days)
/// before the open-ended overflow bucket.
pub const BUCKETS: usize = 40;

/// The histogram bucket for a duration of `us` microseconds.
fn bucket_index(us: u64) -> usize {
    ((63 - us.max(1).leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound (µs) of bucket `i` — the value quantiles
/// report. The last bucket is open-ended.
pub fn bucket_upper_bound_us(i: usize) -> u64 {
    (1u64 << (i + 1)) - 1
}

/// The `q`-quantile (as a bucket upper bound, µs) of `counts`, or 0
/// for an empty histogram.
pub fn quantile_from_counts(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, n) in counts.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return bucket_upper_bound_us(i);
        }
    }
    bucket_upper_bound_us(BUCKETS - 1)
}

/// A lock-free power-of-two latency histogram with count, sum, and
/// max side-cars — enough to render a Prometheus histogram family.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        // ordering: Relaxed — independent statistical counters; no
        // other memory is published through them and snapshots are
        // advisory.
        self.count.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — see above.
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        // ordering: Relaxed — see above.
        self.max_us.fetch_max(us, Ordering::Relaxed);
        // ordering: Relaxed — see above.
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            // ordering: Relaxed — advisory snapshot of independent
            // counters; exactness across fields is not required.
            count: self.count.load(Ordering::Relaxed),
            // ordering: Relaxed — see above.
            sum_us: self.sum_us.load(Ordering::Relaxed),
            // ordering: Relaxed — see above.
            max_us: self.max_us.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                // ordering: Relaxed — see above.
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed durations (µs).
    pub sum_us: u64,
    /// Largest observed duration (µs).
    pub max_us: u64,
    /// Per-bucket counts (power-of-two layout, [`BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (bucket upper bound, µs); 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        quantile_from_counts(&self.buckets, q)
    }
}

/// A named group of stage histograms — one per pipeline stage.
/// Stage names are fixed at construction; recording against an
/// unknown name is silently dropped (telemetry must never fail a
/// request).
#[derive(Debug)]
pub struct StageSet {
    stages: Vec<(&'static str, Histogram)>,
}

impl StageSet {
    /// A set with one empty histogram per name, in the given order
    /// (the order exposition and logs render in).
    pub fn new(names: &[&'static str]) -> StageSet {
        StageSet {
            stages: names.iter().map(|n| (*n, Histogram::new())).collect(),
        }
    }

    /// Record `us` against stage `name` (unknown names are dropped).
    pub fn observe_us(&self, name: &str, us: u64) {
        if let Some((_, h)) = self.stages.iter().find(|(n, _)| *n == name) {
            h.observe_us(us);
        }
    }

    /// Fold a recorder's spans into the per-stage histograms.
    pub fn absorb(&self, recorder: &SpanRecorder) {
        for (name, us) in recorder.spans() {
            self.observe_us(name, *us);
        }
    }

    /// Iterate `(name, histogram)` in construction order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.stages.iter().map(|(n, h)| (*n, h))
    }
}

/// Per-request span collection: a monotonic start instant plus the
/// `(stage, µs)` pairs measured so far, in recording order. Cheap
/// enough to build per request; fold into a [`StageSet`] at the end
/// and hand to the slow log if the request qualifies.
#[derive(Debug)]
pub struct SpanRecorder {
    started: Instant,
    spans: Vec<(&'static str, u64)>,
}

impl Default for SpanRecorder {
    fn default() -> SpanRecorder {
        SpanRecorder::start()
    }
}

impl SpanRecorder {
    /// Start the whole-request clock.
    pub fn start() -> SpanRecorder {
        SpanRecorder {
            started: Instant::now(),
            spans: Vec::new(),
        }
    }

    /// Record a stage measured externally.
    pub fn record_us(&mut self, name: &'static str, us: u64) {
        self.spans.push((name, us));
    }

    /// Time `f` and record it as stage `name`.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record_us(name, t0.elapsed().as_micros() as u64);
        out
    }

    /// Microseconds since [`SpanRecorder::start`].
    pub fn total_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// The `(stage, µs)` pairs recorded so far.
    pub fn spans(&self) -> &[(&'static str, u64)] {
        &self.spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile_us(0.5), 0);
        assert_eq!(snap.quantile_us(0.99), 0);
        assert_eq!(snap.max_us, 0);
        assert_eq!(quantile_from_counts(&[], 0.5), 0);
    }

    #[test]
    fn observations_land_in_power_of_two_buckets() {
        let h = Histogram::new();
        h.observe_us(0); // clamps to bucket 0
        h.observe_us(1);
        h.observe_us(8);
        h.observe_us(4096);
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum_us, 1 + 8 + 4096);
        assert_eq!(snap.max_us, 4096);
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[3], 1); // 8µs → [8,16)
        assert_eq!(snap.buckets[12], 1); // 4096µs → [4096,8192)
        assert_eq!(snap.quantile_us(0.5), 1);
        assert_eq!(snap.quantile_us(1.0), 8191);
    }

    #[test]
    fn overflow_bucket_absorbs_absurd_durations() {
        let h = Histogram::new();
        h.observe_us(u64::MAX);
        h.observe_us(1u64 << 45);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[BUCKETS - 1], 2);
        assert_eq!(snap.quantile_us(0.5), bucket_upper_bound_us(BUCKETS - 1));
    }

    #[test]
    fn stage_set_routes_by_name_and_drops_unknowns() {
        let set = StageSet::new(&["parse", "score"]);
        set.observe_us("parse", 10);
        set.observe_us("score", 100);
        set.observe_us("nonexistent", 5);
        let counts: Vec<(&str, u64)> = set.iter().map(|(n, h)| (n, h.snapshot().count)).collect();
        assert_eq!(counts, vec![("parse", 1), ("score", 1)]);
    }

    #[test]
    fn recorder_times_stages_and_folds_into_a_set() {
        let mut rec = SpanRecorder::start();
        let v = rec.time("work", || 41 + 1);
        assert_eq!(v, 42);
        rec.record_us("queue_wait", 7);
        assert_eq!(rec.spans().len(), 2);
        assert_eq!(rec.spans()[1], ("queue_wait", 7));
        let set = StageSet::new(&["work", "queue_wait"]);
        set.absorb(&rec);
        for (_, h) in set.iter() {
            assert_eq!(h.snapshot().count, 1);
        }
        assert!(rec.total_us() < 60_000_000, "monotonic total");
    }
}
