//! Compact request trace ids and the raw-JSON plumbing that carries
//! them.
//!
//! A trace id is 1–64 characters of `[0-9a-zA-Z_-]` — minted ids are
//! 16 lowercase hex chars. Ids travel as an optional top-level
//! `"trace"` field on request and response lines (and as the
//! `x-gpufreq-trace` HTTP header); the helpers here read and write
//! that field *structurally*, on the raw bytes, so attaching a trace
//! never re-serializes a body and an untraced exchange is byte-for-byte
//! what it was before tracing existed.

use std::sync::atomic::{AtomicU64, Ordering};

/// The longest id accepted off the wire — anything longer is treated
/// as absent rather than echoed back at unbounded length.
pub const MAX_ID_LEN: usize = 64;

/// Process-wide mint counter: guarantees distinct ids within a process
/// even if two mints land on the same clock tick.
static MINT_COUNTER: AtomicU64 = AtomicU64::new(0);

/// splitmix64 — a tiny, well-mixed 64-bit permutation (public-domain
/// constants from Vigna's reference implementation).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mint a fresh 16-hex-char trace id: the wall clock, a process-wide
/// counter, and a per-process ASLR-derived salt mixed through
/// splitmix64. Uniqueness within a process is guaranteed by the
/// counter; the clock+salt make cross-process collisions unlikely
/// enough for log correlation (ids are diagnostics, not security
/// tokens).
pub fn mint() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ (d.as_secs() << 32))
        .unwrap_or(0);
    // ordering: Relaxed — the counter only needs to hand out distinct
    // values; no other memory is published through it.
    let count = MINT_COUNTER.fetch_add(1, Ordering::Relaxed);
    let salt = &MINT_COUNTER as *const AtomicU64 as u64;
    let mixed = splitmix64(nanos ^ salt).wrapping_add(splitmix64(count));
    format!("{mixed:016x}")
}

/// Whether `id` is a well-formed trace id: non-empty, at most
/// [`MAX_ID_LEN`] bytes, all `[0-9a-zA-Z_-]`.
pub fn is_valid(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_ID_LEN
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// Extract the top-level `"trace"` string field from a raw JSON object
/// line, if present and [valid](is_valid). Purely structural (string
/// and nesting aware) — the line is never fully parsed, malformed
/// input simply yields `None`, and a `"trace"` key nested inside
/// another object or inside a string literal is ignored.
pub fn extract(line: &str) -> Option<&str> {
    let bytes = line.trim().as_bytes();
    if bytes.first() != Some(&b'{') {
        return None;
    }
    let mut depth = 0usize;
    let mut i = 0usize;
    // The key we saw last at depth 1, pending its `:` + value.
    let mut pending_trace_key = false;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                let start = i + 1;
                let end = scan_string(bytes, start)?;
                let s = &line.trim()[start..end];
                i = end + 1;
                if depth == 1 {
                    if pending_trace_key {
                        // This string is the value of a `"trace"` key.
                        return if is_valid(s) { Some(s) } else { None };
                    }
                    // Key position iff the next non-space byte is ':'.
                    let mut j = i;
                    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b':') {
                        pending_trace_key = s == "trace";
                        i = j + 1;
                    }
                } else if pending_trace_key {
                    // `"trace"` had a non-scalar value; treat as absent.
                    return None;
                }
            }
            b'{' | b'[' => {
                if depth == 1 && pending_trace_key {
                    return None;
                }
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth = depth.checked_sub(1)?;
                i += 1;
            }
            _ => {
                if depth == 1 && pending_trace_key && !bytes[i].is_ascii_whitespace() {
                    // A number/bool/null value under `"trace"`.
                    return None;
                }
                i += 1;
            }
        }
    }
    None
}

/// Find the closing quote of the string starting at `start` (the byte
/// after the opening `"`), honoring backslash escapes. Returns the
/// index of the closing quote.
fn scan_string(bytes: &[u8], start: usize) -> Option<usize> {
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

/// Append `,"trace":"<id>"` inside the trailing `}` of a serialized
/// JSON object. The body is spliced, not re-serialized, so the bytes
/// before the insertion point are untouched; a body that is not an
/// object (or an empty object, which gets the field without the
/// leading comma) is returned unchanged.
pub fn attach(body: &str, id: &str) -> String {
    let trimmed = body.trim_end();
    if !trimmed.ends_with('}') || !is_valid(id) {
        return body.to_string();
    }
    let head = &trimmed[..trimmed.len() - 1];
    let sep = if head.trim_end().ends_with('{') {
        ""
    } else {
        ","
    };
    format!("{head}{sep}\"trace\":\"{id}\"}}")
}

/// Remove a trailing `,"trace":"<id>"` field previously spliced by
/// [`attach`], restoring the pre-attach bytes. Returns the restored
/// body and the id, or `None` if the body does not end with an
/// attach-shaped trace field.
pub fn detach(body: &str) -> Option<(String, &str)> {
    let id = extract(body)?;
    let head = body
        .trim_end()
        .strip_suffix(&format!(",\"trace\":\"{id}\"}}"))?;
    Some((format!("{head}}}"), id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_distinct_valid_hex() {
        let a = mint();
        let b = mint();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 16, "{id}");
            assert!(id.bytes().all(|b| b.is_ascii_hexdigit()), "{id}");
            assert!(is_valid(id));
        }
    }

    #[test]
    fn extract_finds_only_top_level_valid_ids() {
        assert_eq!(
            extract("{\"op\":\"predict\",\"trace\":\"abc-123\"}"),
            Some("abc-123")
        );
        assert_eq!(extract("{\"trace\":\"t1\",\"op\":\"stats\"}"), Some("t1"));
        // Absent, nested, in-string, non-string, invalid charset,
        // oversized, malformed: all None.
        assert_eq!(extract("{\"op\":\"stats\"}"), None);
        assert_eq!(extract("{\"a\":{\"trace\":\"t1\"}}"), None);
        assert_eq!(extract("{\"source\":\"x \\\"trace\\\": y\"}"), None);
        assert_eq!(extract("{\"trace\":7}"), None);
        assert_eq!(extract("{\"trace\":{\"id\":\"t\"}}"), None);
        assert_eq!(extract("{\"trace\":\"has space\"}"), None);
        assert_eq!(
            extract(&format!("{{\"trace\":\"{}\"}}", "a".repeat(65))),
            None
        );
        assert_eq!(extract("not json"), None);
        assert_eq!(extract("{\"trace\":\"unterminated"), None);
    }

    #[test]
    fn extract_skips_string_values_that_look_like_keys() {
        // A value string "trace" must not arm the key state.
        assert_eq!(extract("{\"op\":\"trace\",\"x\":1}"), None);
        assert_eq!(extract("{\"op\":\"trace\",\"trace\":\"id9\"}"), Some("id9"));
    }

    #[test]
    fn attach_splices_before_the_trailing_brace() {
        assert_eq!(
            attach("{\"ok\":\"shutdown\"}", "deadbeef"),
            "{\"ok\":\"shutdown\",\"trace\":\"deadbeef\"}"
        );
        assert_eq!(attach("{}", "t"), "{\"trace\":\"t\"}");
        // Non-object bodies and invalid ids pass through unchanged.
        assert_eq!(attach("plain text", "t"), "plain text");
        assert_eq!(attach("{\"a\":1}", "bad id"), "{\"a\":1}");
        // Round trip: an attached id extracts back out.
        let traced = attach("{\"ok\":\"predict\",\"device\":\"titan-x\"}", "f00d");
        assert_eq!(extract(&traced), Some("f00d"));
    }

    #[test]
    fn detach_restores_the_pre_attach_bytes() {
        let body = "{\"ok\":\"predict_batch\",\"device\":\"titan-x\",\"results\":[{\"x\":1}]}";
        let traced = attach(body, "cafe1234");
        let (restored, id) = detach(&traced).unwrap();
        assert_eq!(restored, body);
        assert_eq!(id, "cafe1234");
        // Untraced bodies and mid-object trace fields are left alone.
        assert_eq!(detach(body), None);
        assert_eq!(detach("{\"trace\":\"t1\",\"op\":\"stats\"}"), None);
    }
}
