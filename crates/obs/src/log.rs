//! The structured slow-request/error log: sampled, rate-limited JSON
//! lines carrying a trace id and the per-stage latency breakdown.
//!
//! One record per qualifying request — total latency at or above the
//! configured threshold, or a typed error — written as a single line
//! so the log is greppable by trace id and parseable offline. A
//! token-bucket rate limiter bounds the write amplification a
//! pathological workload can cause (dropped records are counted and
//! surfaced in `/metrics`); telemetry never fails a request, so every
//! I/O error here is swallowed after bumping the drop counter.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::spans::SpanRecorder;

/// Sustained records per second the limiter admits.
const RATE_PER_SEC: f64 = 64.0;

/// Burst headroom: how many records a quiet log can absorb at once.
const BURST: f64 = 256.0;

/// One qualifying request, as logged.
#[derive(Debug)]
pub struct TraceRecord<'a> {
    /// Which process wrote the record (`"serve"` or `"router"`).
    pub component: &'a str,
    /// The request's trace id (minted locally if the client sent none).
    pub trace: &'a str,
    /// The request's wire op (or route), e.g. `"predict"`.
    pub op: &'a str,
    /// Whole-request latency in microseconds.
    pub total_us: u64,
    /// Per-stage breakdown, in recording order.
    pub stages: &'a [(&'static str, u64)],
    /// The typed error code, when the response was an error.
    pub error: Option<&'a str>,
    /// The peer address, when the request arrived over a socket.
    pub peer: Option<&'a str>,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl TraceRecord<'_> {
    /// Render the record as one JSON line (no trailing newline), with
    /// a stable field order: `ts_ms`, `component`, `trace`, `op`,
    /// `total_us`, then optional `error`/`peer`, then `stages`.
    pub fn to_json(&self) -> String {
        let ts_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut out = String::with_capacity(160);
        out.push_str("{\"ts_ms\":");
        out.push_str(&ts_ms.to_string());
        out.push_str(",\"component\":\"");
        escape_into(&mut out, self.component);
        out.push_str("\",\"trace\":\"");
        escape_into(&mut out, self.trace);
        out.push_str("\",\"op\":\"");
        escape_into(&mut out, self.op);
        out.push_str("\",\"total_us\":");
        out.push_str(&self.total_us.to_string());
        if let Some(error) = self.error {
            out.push_str(",\"error\":\"");
            escape_into(&mut out, error);
            out.push('"');
        }
        if let Some(peer) = self.peer {
            out.push_str(",\"peer\":\"");
            escape_into(&mut out, peer);
            out.push('"');
        }
        out.push_str(",\"stages\":{");
        for (i, (name, us)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, name);
            out.push_str("\":");
            out.push_str(&us.to_string());
        }
        out.push_str("}}");
        out
    }
}

struct Limiter {
    tokens: f64,
    last: Instant,
}

struct Sink {
    writer: Box<dyn Write + Send>,
    limiter: Limiter,
}

/// The shared log handle: a sink (file or stderr) behind a mutex, the
/// slow threshold, and drop accounting.
pub struct TraceLog {
    sink: Mutex<Sink>,
    slow_threshold_us: u64,
    written: AtomicU64,
    dropped: AtomicU64,
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLog")
            .field("slow_threshold_us", &self.slow_threshold_us)
            .finish_non_exhaustive()
    }
}

impl TraceLog {
    /// Open a log writing to `spec` — the literal `stderr`, or a file
    /// path (created eagerly and appended to, so a log target exists
    /// even if nothing ever qualifies). Requests slower than
    /// `slow_threshold_us` — and every error — are logged; a
    /// threshold of 0 logs everything the rate limiter admits.
    pub fn open(spec: &str, slow_threshold_us: u64) -> std::io::Result<TraceLog> {
        let writer: Box<dyn Write + Send> = if spec == "stderr" {
            Box::new(std::io::stderr())
        } else {
            Box::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(spec)?,
            )
        };
        Ok(TraceLog {
            sink: Mutex::new(Sink {
                writer,
                limiter: Limiter {
                    tokens: BURST,
                    last: Instant::now(),
                },
            }),
            slow_threshold_us,
            written: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// The configured slow threshold (µs).
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us
    }

    /// Whether a request with this latency/error outcome qualifies for
    /// a record (before rate limiting).
    pub fn qualifies(&self, total_us: u64, is_error: bool) -> bool {
        is_error || total_us >= self.slow_threshold_us
    }

    /// Write one record if the rate limiter admits it; otherwise count
    /// the drop. I/O errors are swallowed (and counted) — the log must
    /// never take a request down with it.
    pub fn write(&self, record: &TraceRecord<'_>) {
        let line = record.to_json();
        let Ok(mut sink) = self.sink.lock() else {
            // A panicked holder poisoned the lock; telemetry just
            // stops rather than propagating.
            // ordering: Relaxed — statistical counter, publishes nothing.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let now = Instant::now();
        let elapsed = now.duration_since(sink.limiter.last).as_secs_f64();
        sink.limiter.tokens = (sink.limiter.tokens + elapsed * RATE_PER_SEC).min(BURST);
        sink.limiter.last = now;
        if sink.limiter.tokens < 1.0 {
            // ordering: Relaxed — statistical counter, publishes nothing.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        sink.limiter.tokens -= 1.0;
        match writeln!(sink.writer, "{line}").and_then(|()| sink.writer.flush()) {
            Ok(()) => {
                // ordering: Relaxed — statistical counter, publishes nothing.
                self.written.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // ordering: Relaxed — statistical counter, publishes nothing.
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Convenience: build the record from a [`SpanRecorder`] and write
    /// it if the outcome [qualifies](TraceLog::qualifies).
    #[allow(clippy::too_many_arguments)]
    pub fn maybe_write(
        &self,
        component: &str,
        trace: &str,
        op: &str,
        recorder: &SpanRecorder,
        total_us: u64,
        error: Option<&str>,
        peer: Option<&str>,
    ) {
        if !self.qualifies(total_us, error.is_some()) {
            return;
        }
        self.write(&TraceRecord {
            component,
            trace,
            op,
            total_us,
            stages: recorder.spans(),
            error,
            peer,
        });
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        // ordering: Relaxed — advisory read of a statistical counter.
        self.written.load(Ordering::Relaxed)
    }

    /// Records dropped by the rate limiter or I/O errors.
    pub fn dropped(&self) -> u64 {
        // ordering: Relaxed — advisory read of a statistical counter.
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gpufreq-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn records_render_stable_parseable_json_lines() {
        let record = TraceRecord {
            component: "serve",
            trace: "deadbeefcafef00d",
            op: "predict",
            total_us: 1234,
            stages: &[("queue_wait", 10), ("score", 1200)],
            error: None,
            peer: Some("127.0.0.1:9"),
        };
        let line = record.to_json();
        assert!(line.starts_with("{\"ts_ms\":"), "{line}");
        assert!(line.contains("\"trace\":\"deadbeefcafef00d\""), "{line}");
        assert!(line.contains("\"op\":\"predict\""), "{line}");
        assert!(line.contains("\"total_us\":1234"), "{line}");
        assert!(
            line.ends_with("\"stages\":{\"queue_wait\":10,\"score\":1200}}"),
            "{line}"
        );
        assert!(!line.contains("\"error\""), "{line}");
        // Escaping: quotes and newlines in an error message stay one
        // line.
        let record = TraceRecord {
            component: "serve",
            trace: "t",
            op: "predict",
            total_us: 5,
            stages: &[],
            error: Some("bad \"kernel\"\nline 2"),
            peer: None,
        };
        let line = record.to_json();
        assert!(!line.contains('\n'), "{line}");
        assert!(line.contains("bad \\\"kernel\\\"\\nline 2"), "{line}");
    }

    #[test]
    fn file_sink_is_created_eagerly_and_appended() {
        let path = temp_path("eager.jsonl");
        std::fs::remove_file(&path).ok();
        let log = TraceLog::open(path.to_str().unwrap(), 1_000_000).unwrap();
        assert!(path.exists(), "sink created before any record");
        assert!(!log.qualifies(10, false), "fast + ok: no record");
        assert!(log.qualifies(10, true), "errors always qualify");
        assert!(log.qualifies(2_000_000, false), "slow qualifies");
        log.write(&TraceRecord {
            component: "serve",
            trace: "t1",
            op: "stats",
            total_us: 2_000_000,
            stages: &[("write", 3)],
            error: None,
            peer: None,
        });
        assert_eq!(log.written(), 1);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 1);
        assert!(contents.contains("\"trace\":\"t1\""), "{contents}");
    }

    #[test]
    fn rate_limiter_drops_past_the_burst() {
        let path = temp_path("burst.jsonl");
        std::fs::remove_file(&path).ok();
        let log = TraceLog::open(path.to_str().unwrap(), 0).unwrap();
        let record = TraceRecord {
            component: "router",
            trace: "t",
            op: "predict",
            total_us: 1,
            stages: &[],
            error: None,
            peer: None,
        };
        for _ in 0..(BURST as usize + 50) {
            log.write(&record);
        }
        assert!(log.written() >= BURST as u64, "burst admitted");
        assert!(log.dropped() > 0, "past-burst records dropped");
        let lines = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(lines as u64, log.written());
    }

    #[test]
    fn maybe_write_threads_the_recorder_spans_through() {
        let path = temp_path("maybe.jsonl");
        std::fs::remove_file(&path).ok();
        let log = TraceLog::open(path.to_str().unwrap(), 0).unwrap();
        let mut rec = SpanRecorder::start();
        rec.record_us("admission", 2);
        rec.record_us("score", 900);
        log.maybe_write("serve", "abc", "predict", &rec, 950, None, Some("peer"));
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(
            contents.contains("\"stages\":{\"admission\":2,\"score\":900}"),
            "{contents}"
        );
    }
}
