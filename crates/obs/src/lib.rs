//! `gpufreq-obs`: dependency-free observability primitives for the
//! serving tier.
//!
//! Four small modules, each usable on its own:
//!
//! * [`trace`] — compact hex trace ids, plus structural helpers to
//!   extract an optional `"trace"` field from a raw JSON request line
//!   and to append one to a response body without re-serializing it.
//! * [`spans`] — monotonic-clock per-stage timers ([`SpanRecorder`])
//!   feeding lock-free power-of-two latency histograms grouped into a
//!   named [`StageSet`].
//! * [`expo`] — a Prometheus-style text exposition builder (counters,
//!   gauges, histograms with cumulative buckets) and a validating
//!   parser for it, shared by tests, `loadgen --trace`, and CI.
//! * [`log`] — a sampled, rate-limited JSON-lines slow-request/error
//!   log whose records carry the trace id and per-stage breakdown.
//!
//! Everything here is deliberately decoupled from the wire protocol:
//! the serve and router crates own *what* they measure; this crate
//! owns the clocks, buckets, and formats.

#![deny(missing_docs)]

pub mod expo;
pub mod log;
pub mod spans;
pub mod trace;

pub use expo::{parse as parse_exposition, Exposition};
pub use log::{TraceLog, TraceRecord};
pub use spans::{Histogram, HistogramSnapshot, SpanRecorder, StageSet};
