//! Token-level scanner for Rust source, in the style of the OpenCL
//! lexer in `gpufreq-kernel`: a single forward pass producing
//! positioned tokens, with comments collected per line instead of
//! discarded (the lints read justification markers and
//! `analyze:allow` suppressions out of them).
//!
//! This is deliberately *not* a full Rust lexer — it only needs to be
//! exact about the things that would make a naive `grep` lie:
//!
//! * string/char/byte/raw-string literals (an `unsafe` inside a string
//!   is not an unsafe block);
//! * line and nested block comments (an `Ordering::Relaxed` in a doc
//!   example is not an atomic site);
//! * lifetimes vs. char literals (`'a` must not swallow the rest of
//!   the file looking for a closing quote).
//!
//! Everything else (numbers, punctuation) is tokenized loosely; the
//! lints match identifier sequences, not grammar.

use std::collections::{BTreeMap, BTreeSet};

/// What a scanned token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `Ordering`, `unwrap`, ...).
    Ident,
    /// String literal of any flavor (`"..."`, `r#"..."#`, `b"..."`);
    /// the token text is the *unquoted* content.
    Str,
    /// Char literal (`'x'`, `'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Lifetime,
    /// A single punctuation character (`.`, `:`, `{`, `!`, ...).
    Punct(char),
}

/// One non-comment token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (unquoted for string literals).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A scanned source file: the code token stream plus the per-line
/// comment text and the set of lines carrying code.
#[derive(Debug, Default)]
pub struct Scanned {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comment text by line (line `//` and block `/* */` alike,
    /// markers stripped, same-line fragments joined by a space). A
    /// block comment contributes to every line it touches.
    pub comments: BTreeMap<u32, String>,
    /// Lines that carry at least one code (non-comment) token.
    pub code_lines: BTreeSet<u32>,
    /// Total line count of the file.
    pub line_count: u32,
}

impl Scanned {
    /// Comment text attached to `line`, if any.
    pub fn comment(&self, line: u32) -> Option<&str> {
        self.comments.get(&line).map(|s| s.as_str())
    }

    /// The first line after `line` that carries code, if any.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        self.code_lines.range(line + 1..).next().copied()
    }

    /// Whether a justification marker (e.g. `SAFETY:`, `ordering:`)
    /// covers the code at `line`: the marker may appear in a trailing
    /// comment on the line itself or anywhere in the contiguous run of
    /// comment-only / attribute-only lines directly above it.
    pub fn has_marker_above(&self, line: u32, marker: &str) -> bool {
        self.find_marker_above(line, marker).is_some()
    }

    /// [`has_marker_above`](Scanned::has_marker_above), returning the
    /// comment text from the marker line to the end of its comment
    /// block (for the census report — multi-line justifications are
    /// reported whole, not cut at the first line).
    pub fn find_marker_above(&self, line: u32, marker: &str) -> Option<String> {
        let holds = |l: u32| self.comment(l).is_some_and(|text| text.contains(marker));
        let found = if holds(line) {
            line
        } else {
            let mut l = line;
            loop {
                if l <= 1 {
                    return None;
                }
                l -= 1;
                if self.code_lines.contains(&l) && !self.is_attribute_line(l) {
                    return None;
                }
                if holds(l) {
                    break l;
                }
                // A blank line (no code, no comment) ends the block.
                if !self.code_lines.contains(&l) && self.comment(l).is_none() {
                    return None;
                }
            }
        };
        // Join the marker line with the comment lines that continue it,
        // stopping at the trigger line or the first non-comment line.
        let mut text = self.comment(found)?.to_string();
        for l in found + 1..line {
            match self.comment(l) {
                Some(more) if !self.code_lines.contains(&l) => {
                    text.push(' ');
                    text.push_str(more);
                }
                _ => break,
            }
        }
        Some(text)
    }

    /// Whether the code on `line` starts with `#` — an attribute line
    /// (`#[target_feature(...)]`, `#[cfg(...)]`), which a
    /// justification-comment search walks straight through.
    fn is_attribute_line(&self, line: u32) -> bool {
        self.tokens
            .iter()
            .find(|t| t.line == line)
            .is_some_and(|t| t.is_punct('#'))
    }
}

/// Scan `source` into tokens + comments. Never fails: anything the
/// scanner does not recognize is emitted as single-character
/// punctuation, which no lint matches.
pub fn scan(source: &str) -> Scanned {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Scanned::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();
    let push_comment = |comments: &mut BTreeMap<u32, String>, l: u32, text: &str| {
        let text = text.trim();
        if text.is_empty() {
            return;
        }
        let slot = comments.entry(l).or_default();
        if !slot.is_empty() {
            slot.push(' ');
        }
        slot.push_str(text);
    };
    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            // Line comment (also doc comments `///`, `//!`).
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let text = text.trim_start_matches(['/', '!']);
                push_comment(&mut out.comments, line, text);
            }
            // Block comment, nested as in Rust.
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                i += 2;
                let mut depth = 1usize;
                let mut frag = String::new();
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            push_comment(&mut out.comments, line, frag.trim_matches('*'));
                            frag.clear();
                            line += 1;
                        } else {
                            frag.push(chars[i]);
                        }
                        i += 1;
                    }
                }
                push_comment(&mut out.comments, line, frag.trim_matches('*'));
            }
            // Raw strings and raw identifiers: r"...", r#"..."#, r#ident.
            'r' | 'b' if starts_raw_string(&chars, i) => {
                let (text, end_i, end_line) = take_raw_string(&chars, i, line);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                out.code_lines.insert(line);
                i = end_i;
                line = end_line;
            }
            // Ordinary (possibly byte-) string literal.
            '"' => {
                let (text, end_i, end_line) = take_string(&chars, i, line);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                out.code_lines.insert(line);
                i = end_i;
                line = end_line;
            }
            'b' if i + 1 < n && chars[i + 1] == '"' => {
                let (text, end_i, end_line) = take_string(&chars, i + 1, line);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                out.code_lines.insert(line);
                i = end_i;
                line = end_line;
            }
            // Lifetime or char literal.
            '\'' => {
                let (tok, end_i) = take_char_or_lifetime(&chars, i, line);
                out.tokens.push(tok);
                out.code_lines.insert(line);
                i = end_i;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
                out.code_lines.insert(line);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n {
                    let d = chars[i];
                    let digit_follows = i + 1 < n && chars[i + 1].is_ascii_digit();
                    let continues = d.is_alphanumeric()
                        || d == '_'
                        || (d == '.' && digit_follows)
                        || ((d == '+' || d == '-')
                            && matches!(chars[i - 1], 'e' | 'E')
                            && digit_follows);
                    if !continues {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Num,
                    text: chars[start..i].iter().collect(),
                    line,
                });
                out.code_lines.insert(line);
            }
            other => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct(other),
                    text: other.to_string(),
                    line,
                });
                out.code_lines.insert(line);
                i += 1;
            }
        }
    }
    out.line_count = line;
    out
}

/// Whether position `i` starts a raw string (`r"`, `r#"`, `br"`,
/// `br#"`). A raw *identifier* (`r#ident`) is not a raw string.
fn starts_raw_string(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if j >= chars.len() || chars[j] != 'r' {
            return false;
        }
    }
    if chars[j] != 'r' {
        return false;
    }
    j += 1;
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    j < chars.len() && chars[j] == '"'
}

/// Consume a raw string starting at `i`; returns (content, next
/// index, line after).
fn take_raw_string(chars: &[char], mut i: usize, mut line: u32) -> (String, usize, u32) {
    if chars[i] == 'b' {
        i += 1;
    }
    i += 1; // 'r'
    let mut hashes = 0usize;
    while i < chars.len() && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    let mut text = String::new();
    while i < chars.len() {
        if chars[i] == '"' {
            // Check for `"` followed by `hashes` `#`s.
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < chars.len() && chars[j] == '#' && seen < hashes {
                j += 1;
                seen += 1;
            }
            if seen == hashes {
                return (text, j, line);
            }
        }
        if chars[i] == '\n' {
            line += 1;
        }
        text.push(chars[i]);
        i += 1;
    }
    (text, i, line)
}

/// Consume an escaped string literal whose opening quote is at `i`.
fn take_string(chars: &[char], mut i: usize, mut line: u32) -> (String, usize, u32) {
    i += 1; // opening quote
    let mut text = String::new();
    while i < chars.len() {
        match chars[i] {
            '"' => return (text, i + 1, line),
            '\\' if i + 1 < chars.len() => {
                text.push(chars[i]);
                text.push(chars[i + 1]);
                if chars[i + 1] == '\n' {
                    line += 1;
                }
                i += 2;
            }
            c => {
                if c == '\n' {
                    line += 1;
                }
                text.push(c);
                i += 1;
            }
        }
    }
    (text, i, line)
}

/// Disambiguate `'a` (lifetime) from `'x'` (char literal) at `i`.
fn take_char_or_lifetime(chars: &[char], i: usize, line: u32) -> (Tok, usize) {
    let n = chars.len();
    // Lifetime: quote, ident-start, and the char after the ident run
    // is NOT a closing quote.
    if i + 1 < n && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_') {
        let mut j = i + 2;
        while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        if j >= n || chars[j] != '\'' {
            return (
                Tok {
                    kind: TokKind::Lifetime,
                    text: chars[i + 1..j].iter().collect(),
                    line,
                },
                j,
            );
        }
    }
    // Char literal: consume to the closing quote, honoring escapes.
    let mut j = i + 1;
    let mut text = String::new();
    while j < n {
        match chars[j] {
            '\'' => {
                j += 1;
                break;
            }
            '\\' if j + 1 < n => {
                text.push(chars[j]);
                text.push(chars[j + 1]);
                j += 2;
            }
            c => {
                text.push(c);
                j += 1;
            }
        }
    }
    (
        Tok {
            kind: TokKind::Char,
            text,
            line,
        },
        j,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_strings_and_comments_are_separated() {
        let s = scan("let x = \"unsafe in a string\"; // unsafe in a comment\nunsafe { }\n");
        let unsafe_idents: Vec<&Tok> = s.tokens.iter().filter(|t| t.is_ident("unsafe")).collect();
        assert_eq!(unsafe_idents.len(), 1, "only the real keyword counts");
        assert_eq!(unsafe_idents[0].line, 2);
        assert!(s.comment(1).unwrap().contains("unsafe in a comment"));
        assert!(s
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("unsafe")));
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let s = scan("/* outer /* inner */ SAFETY: fine */\nlet r = r#\"Ordering::SeqCst\"#;\n");
        assert!(s.comment(1).unwrap().contains("SAFETY: fine"));
        assert!(
            !s.tokens.iter().any(|t| t.is_ident("Ordering")),
            "raw string content is not code"
        );
        assert!(s
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "Ordering::SeqCst"));
    }

    #[test]
    fn lifetimes_do_not_eat_the_file() {
        let s = scan("fn f<'a>(x: &'a str) -> char { 'x' }\nunsafe {}\n");
        assert!(s.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(s
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "x"));
        assert!(s.tokens.iter().any(|t| t.is_ident("unsafe")));
    }

    #[test]
    fn marker_search_walks_comments_and_attributes() {
        let src = "\
// SAFETY: the caller checked the CPU feature.
#[target_feature(enable = \"avx2\")]
unsafe fn f() {}

unsafe fn g() {}
";
        let s = scan(src);
        assert!(s.has_marker_above(3, "SAFETY:"), "through the attribute");
        assert!(!s.has_marker_above(5, "SAFETY:"), "blank line breaks it");
    }

    #[test]
    fn multiline_strings_keep_line_numbers_straight() {
        let s = scan("let x = \"a\nb\nc\";\nunsafe {}\n");
        let u = s.tokens.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert_eq!(u.line, 4);
    }
}
