//! The lint registry and the opening lint set.
//!
//! Every lint targets one of the repo's *real* invariants (see the
//! crate docs for the catalog). Lints run over the
//! [`Scanned`] token stream of one file at a
//! time; findings carry a stable lint id, the repo-relative path, a
//! 1-based line, and a human-readable message.

use crate::scan::{Scanned, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Stable identifier of one lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// An `unsafe` block/fn/impl without a `SAFETY:` comment.
    UndocumentedUnsafe,
    /// An atomic `Ordering::*` site without an `ordering:`
    /// justification, or a store/load pair whose orderings cannot
    /// synchronize.
    UnjustifiedAtomicOrdering,
    /// `HashMap`/`HashSet` in a module that produces artifact, report,
    /// or wire bytes (iteration order would leak into serialized
    /// output).
    NondeterministicIteration,
    /// `SystemTime::now`/`Instant::now` in a module that produces
    /// serialized bytes.
    WallclockInSerializedOutput,
    /// `unwrap`/`expect`/`panic!`-family calls in the serve request
    /// path (a panic kills a worker thread).
    PanicInRequestPath,
    /// Protocol op/error-code string literals drifting from the
    /// checked-in wire inventory.
    WireStringDrift,
    /// A malformed, unknown, or stale `analyze:allow` suppression.
    InvalidSuppression,
}

impl Lint {
    /// Every lint, in report order.
    pub const ALL: [Lint; 7] = [
        Lint::UndocumentedUnsafe,
        Lint::UnjustifiedAtomicOrdering,
        Lint::NondeterministicIteration,
        Lint::WallclockInSerializedOutput,
        Lint::PanicInRequestPath,
        Lint::WireStringDrift,
        Lint::InvalidSuppression,
    ];

    /// The stable kebab-case id used in output and in
    /// `analyze:allow(...)` suppressions.
    pub const fn id(self) -> &'static str {
        match self {
            Lint::UndocumentedUnsafe => "undocumented-unsafe",
            Lint::UnjustifiedAtomicOrdering => "unjustified-atomic-ordering",
            Lint::NondeterministicIteration => "nondeterministic-iteration",
            Lint::WallclockInSerializedOutput => "wallclock-in-serialized-output",
            Lint::PanicInRequestPath => "panic-in-request-path",
            Lint::WireStringDrift => "wire-string-drift",
            Lint::InvalidSuppression => "invalid-suppression",
        }
    }

    /// Parse a lint id (the reverse of [`id`](Lint::id)).
    pub fn from_id(s: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.id() == s)
    }

    /// One-line description for the lint catalog.
    pub const fn description(self) -> &'static str {
        match self {
            Lint::UndocumentedUnsafe => {
                "every `unsafe` block, fn, or impl needs a `// SAFETY:` comment stating \
                 the invariant that makes it sound"
            }
            Lint::UnjustifiedAtomicOrdering => {
                "every atomic `Ordering::*` site needs a `// ordering:` justification; \
                 store/load pairs whose orderings cannot synchronize are flagged outright"
            }
            Lint::NondeterministicIteration => {
                "no `HashMap`/`HashSet` in artifact-, report-, or wire-serialization \
                 modules — iteration order would leak into serialized bytes"
            }
            Lint::WallclockInSerializedOutput => {
                "no `SystemTime::now`/`Instant::now` in serialization modules — wall \
                 clock readings would leak into serialized bytes"
            }
            Lint::PanicInRequestPath => {
                "no `unwrap`/`expect`/`panic!` in non-test `crates/serve` or \
                 `crates/router` library code — a panic kills a worker thread"
            }
            Lint::WireStringDrift => {
                "protocol op/error-code literals must match the checked-in wire \
                 inventory, so renames break `analyze` before they break clients"
            }
            Lint::InvalidSuppression => {
                "`analyze:allow` suppressions must name a known lint, carry a reason, \
                 and actually suppress something"
            }
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line of the trigger.
    pub line: u32,
    /// What is wrong and how to fix it.
    pub message: String,
    /// Whether a valid `analyze:allow` covers this finding.
    pub suppressed: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}{}",
            self.path,
            self.line,
            self.lint,
            self.message,
            if self.suppressed { " (suppressed)" } else { "" }
        )
    }
}

/// One `unsafe` site, for the census.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    /// Repo-relative path.
    pub path: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// What the keyword introduces (`fn`, `block`, `impl`, `trait`).
    pub kind: String,
    /// The `SAFETY:` comment line, when present.
    pub safety: Option<String>,
}

/// One atomic `Ordering::*` site, for the census.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicSite {
    /// Repo-relative path.
    pub path: String,
    /// 1-based line of the `Ordering::` token.
    pub line: u32,
    /// The ordering variant (`Relaxed`, `SeqCst`, ...).
    pub ordering: String,
    /// The `ordering:` justification line, when present.
    pub justification: Option<String>,
}

/// One parsed `analyze:allow` suppression, for the census.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Repo-relative path.
    pub path: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// The suppressed lint.
    pub lint: Lint,
    /// The mandatory reason.
    pub reason: String,
}

/// Memory orderings the atomics lint recognizes.
const MEMORY_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Path fragments (forward-slash form) of modules whose output is
/// serialized — where hash-iteration order and wall-clock reads are
/// forbidden. Matches artifact persistence, the reproduction report
/// renderers, prediction serialization, and the wire protocol.
const SERIALIZED_MODULES: [&str; 6] = [
    "core/src/artifact.rs",
    "core/src/report.rs",
    "core/src/predict.rs",
    "bench/src/report/",
    "serve/src/protocol.rs",
    "analyze/src/report.rs",
];

/// Path fragments of the request-path crates the panic lint guards:
/// the daemon and the router both run requests on worker/connection
/// threads a panic would kill.
const REQUEST_PATHS: [&str; 2] = ["serve/src/", "router/src/"];

/// Path fragments of the wire-protocol modules, each with the
/// inventory kinds it declares. One shared inventory pins all of
/// them: ops and error codes belong to the line protocol, HTTP route
/// paths to the gateway, circuit-breaker state names to the router.
const WIRE_MODULES: [(&str, &[WireKind]); 3] = [
    ("serve/src/protocol.rs", &[WireKind::Op, WireKind::Error]),
    ("serve/src/http.rs", &[WireKind::Route]),
    ("router/src/wire.rs", &[WireKind::State]),
];

/// Functions in the wire modules whose string literals *are* the wire
/// protocol.
const WIRE_FNS: [&str; 2] = ["op", "as_str"];

/// Everything the per-file pass produced.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Findings, suppression already applied.
    pub findings: Vec<Finding>,
    /// Census: unsafe sites.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Census: atomic ordering sites.
    pub atomic_sites: Vec<AtomicSite>,
    /// Census: valid suppressions.
    pub suppressions: Vec<Suppression>,
}

/// Run every applicable lint over one scanned file.
///
/// `path` must be repo-relative with forward slashes (it selects
/// module-scoped lints). `wire_inventory` is the parsed inventory the
/// wire lint compares against (`None` = not loaded; the wire lint
/// then reports that the inventory is missing when it scans the wire
/// module).
pub fn lint_file(
    path: &str,
    scanned: &Scanned,
    wire_inventory: Option<&[WireEntry]>,
) -> FileAnalysis {
    let mut out = FileAnalysis::default();
    let test_lines = test_mod_lines(scanned);
    let allows = parse_allows(path, scanned, &mut out.findings);

    lint_unsafe(path, scanned, &test_lines, &mut out);
    lint_atomics(path, scanned, &test_lines, &mut out);
    lint_serialized_modules(path, scanned, &mut out);
    lint_panics(path, scanned, &test_lines, &mut out);
    lint_wire(path, scanned, wire_inventory, &mut out);

    apply_allows(path, allows, &mut out);
    out.findings.sort_by(|a, b| {
        (a.line, a.lint, a.message.as_str()).cmp(&(b.line, b.lint, b.message.as_str()))
    });
    out
}

// ----------------------------------------------------------------------
// Suppressions
// ----------------------------------------------------------------------

/// A parsed allow comment and the lines it covers.
#[derive(Debug)]
struct Allow {
    line: u32,
    lint: Lint,
    reason: String,
    /// Lines the allow covers: its own line and the next code line.
    covers: BTreeSet<u32>,
}

/// Parse every `analyze:allow(<lint>, reason = "...")` comment,
/// reporting malformed ones as findings immediately.
///
/// A suppression must start the comment (prose that merely *mentions*
/// the syntax mid-sentence, like this doc comment, is not a
/// suppression); several can be chained in one comment.
fn parse_allows(path: &str, scanned: &Scanned, findings: &mut Vec<Finding>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (&line, text) in &scanned.comments {
        let mut rest = text.trim_start();
        while let Some(tail) = rest.strip_prefix("analyze:allow") {
            rest = tail;
            let bad = |findings: &mut Vec<Finding>, message: String| {
                findings.push(Finding {
                    lint: Lint::InvalidSuppression,
                    path: path.to_string(),
                    line,
                    message,
                    suppressed: false,
                });
            };
            let Some(open) = rest.find('(') else {
                bad(
                    findings,
                    "malformed suppression: expected `analyze:allow(<lint>, reason = \"...\")`"
                        .to_string(),
                );
                continue;
            };
            let Some(close) = rest[open..].find(')') else {
                bad(findings, "malformed suppression: missing `)`".to_string());
                continue;
            };
            let inner = &rest[open + 1..open + close];
            rest = rest[open + close + 1..].trim_start();
            let (lint_id, reason_part) = match inner.split_once(',') {
                Some((l, r)) => (l.trim(), r.trim()),
                None => (inner.trim(), ""),
            };
            let Some(lint) = Lint::from_id(lint_id) else {
                bad(findings, format!("unknown lint `{lint_id}` in suppression"));
                continue;
            };
            let reason = reason_part
                .strip_prefix("reason")
                .map(|r| r.trim_start().trim_start_matches('=').trim())
                .map(|r| r.trim_matches('"').trim())
                .unwrap_or("");
            if reason.is_empty() {
                bad(
                    findings,
                    format!(
                        "suppression of `{}` without a reason — every allow must say why",
                        lint
                    ),
                );
                continue;
            }
            if lint == Lint::InvalidSuppression {
                bad(
                    findings,
                    "`invalid-suppression` cannot itself be suppressed".to_string(),
                );
                continue;
            }
            let mut covers = BTreeSet::from([line]);
            if let Some(next) = scanned.next_code_line(line) {
                covers.insert(next);
            }
            // A trailing allow sits on a code line already; a
            // standalone one covers the next code line.
            allows.push(Allow {
                line,
                lint,
                reason: reason.to_string(),
                covers,
            });
        }
    }
    allows
}

/// Mark findings covered by a valid allow as suppressed; report stale
/// allows (covering no finding) so the annotation set cannot rot.
fn apply_allows(path: &str, allows: Vec<Allow>, out: &mut FileAnalysis) {
    for allow in allows {
        let mut hit = false;
        for finding in &mut out.findings {
            if !finding.suppressed
                && finding.lint == allow.lint
                && allow.covers.contains(&finding.line)
            {
                finding.suppressed = true;
                hit = true;
            }
        }
        if hit {
            out.suppressions.push(Suppression {
                path: path.to_string(),
                line: allow.line,
                lint: allow.lint,
                reason: allow.reason,
            });
        } else {
            out.findings.push(Finding {
                lint: Lint::InvalidSuppression,
                path: path.to_string(),
                line: allow.line,
                message: format!(
                    "stale suppression: no `{}` finding on the covered line(s) — \
                     remove the allow",
                    allow.lint
                ),
                suppressed: false,
            });
        }
    }
}

// ----------------------------------------------------------------------
// cfg(test) tracking
// ----------------------------------------------------------------------

/// Line ranges covered by test-gated items — `#[cfg(test)]` followed
/// by any braced item (`mod tests { }`, a test-only `fn`, ...). The
/// request-path panic lint skips them (tests may unwrap freely).
fn test_mod_lines(scanned: &Scanned) -> BTreeSet<u32> {
    let toks = &scanned.tokens;
    let mut lines = BTreeSet::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_cfg_test_at(toks, i) {
            // Skip over any further attributes to the item itself.
            let mut j = i;
            while j < toks.len() && toks[j].is_punct('#') {
                j = skip_attribute(toks, j);
            }
            // Find the item's body brace (a `;` first means a bodyless
            // item like `use` — nothing to cover).
            let mut k = j;
            let mut item = false;
            while k < toks.len() && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
                item |=
                    toks[k].is_ident("mod") || toks[k].is_ident("fn") || toks[k].is_ident("impl");
                k += 1;
            }
            if item && k < toks.len() && toks[k].is_punct('{') {
                let end = matching_brace(toks, k);
                let start_line = toks[i].line;
                let end_line = toks.get(end).map_or(scanned.line_count, |t| t.line);
                lines.extend(start_line..=end_line);
                i = end;
                continue;
            }
        }
        i += 1;
    }
    lines
}

/// Whether tokens at `i` spell `#[cfg(test)]` (allowing extra args
/// like `#[cfg(all(test, ...))]` to count as test-gated too).
fn is_cfg_test_at(toks: &[Tok], i: usize) -> bool {
    if !toks[i].is_punct('#') || i + 1 >= toks.len() || !toks[i + 1].is_punct('[') {
        return false;
    }
    let end = skip_attribute(toks, i);
    let inner = &toks[i + 2..end.min(toks.len()).saturating_sub(1)];
    inner.first().is_some_and(|t| t.is_ident("cfg")) && inner.iter().any(|t| t.is_ident("test"))
}

/// Index just past an attribute starting at `#` (balanced brackets).
fn skip_attribute(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1;
    if j >= toks.len() || !toks[j].is_punct('[') {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct('{') {
            depth += 1;
        } else if toks[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

// ----------------------------------------------------------------------
// undocumented-unsafe
// ----------------------------------------------------------------------

fn lint_unsafe(path: &str, scanned: &Scanned, test_lines: &BTreeSet<u32>, out: &mut FileAnalysis) {
    let toks = &scanned.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if !tok.is_ident("unsafe") {
            continue;
        }
        let kind = match toks.get(i + 1) {
            Some(t) if t.is_ident("fn") => "fn",
            Some(t) if t.is_ident("impl") => "impl",
            Some(t) if t.is_ident("trait") => "trait",
            Some(t) if t.is_ident("extern") => "extern",
            _ => "block",
        };
        let safety = scanned.find_marker_above(tok.line, "SAFETY:");
        out.unsafe_sites.push(UnsafeSite {
            path: path.to_string(),
            line: tok.line,
            kind: kind.to_string(),
            safety: safety.clone(),
        });
        if safety.is_none() && !test_lines.contains(&tok.line) {
            out.findings.push(Finding {
                lint: Lint::UndocumentedUnsafe,
                path: path.to_string(),
                line: tok.line,
                message: format!(
                    "`unsafe {kind}` without a `// SAFETY:` comment stating why it is sound"
                ),
                suppressed: false,
            });
        }
    }
}

// ----------------------------------------------------------------------
// unjustified-atomic-ordering
// ----------------------------------------------------------------------

fn lint_atomics(path: &str, scanned: &Scanned, test_lines: &BTreeSet<u32>, out: &mut FileAnalysis) {
    let toks = &scanned.tokens;
    // Per atomic-field name: orderings seen at store and load sites,
    // with a representative line — the pair heuristic below flags
    // acquire/release halves whose counterpart is Relaxed-only.
    let mut stores: BTreeMap<String, (BTreeSet<String>, u32)> = BTreeMap::new();
    let mut loads: BTreeMap<String, (BTreeSet<String>, u32)> = BTreeMap::new();

    for i in 0..toks.len() {
        // Match `Ordering :: <variant>`.
        if !toks[i].is_ident("Ordering") {
            continue;
        }
        let Some(variant) = path_segment_after(toks, i) else {
            continue;
        };
        if !MEMORY_ORDERINGS.contains(&variant.text.as_str()) {
            continue;
        }
        let line = toks[i].line;
        let justification = scanned.find_marker_above(line, "ordering:");
        out.atomic_sites.push(AtomicSite {
            path: path.to_string(),
            line,
            ordering: variant.text.clone(),
            justification: justification.clone(),
        });
        if justification.is_none() && !test_lines.contains(&line) {
            out.findings.push(Finding {
                lint: Lint::UnjustifiedAtomicOrdering,
                path: path.to_string(),
                line,
                message: format!(
                    "`Ordering::{}` without a `// ordering:` justification",
                    variant.text
                ),
                suppressed: false,
            });
        }
        // Attribute the site to `<field>.store(...)` / `<field>.load(...)`
        // when the call shape is visible in the preceding tokens.
        if let Some((field, op)) = enclosing_atomic_call(toks, i) {
            let slot = if op == "store" {
                &mut stores
            } else {
                &mut loads
            };
            let entry = slot.entry(field).or_insert_with(|| (BTreeSet::new(), line));
            entry.0.insert(variant.text.clone());
        }
    }

    // Pair heuristic: an Acquire load whose field is only ever stored
    // Relaxed (or a Release store only ever loaded Relaxed) cannot
    // synchronize with anything — one half of the handshake is
    // missing.
    for (field, (load_ords, line)) in &loads {
        if load_ords.contains("Acquire") || load_ords.contains("SeqCst") {
            if let Some((store_ords, _)) = stores.get(field) {
                let store_publishes = store_ords
                    .iter()
                    .any(|o| matches!(o.as_str(), "Release" | "SeqCst" | "AcqRel"));
                if !store_publishes && !test_lines.contains(line) {
                    out.findings.push(Finding {
                        lint: Lint::UnjustifiedAtomicOrdering,
                        path: path.to_string(),
                        line: *line,
                        message: format!(
                            "acquiring load of `{field}` but every store is Relaxed — \
                             the pair cannot synchronize; make the store Release (or both \
                             Relaxed if no data is published)"
                        ),
                        suppressed: false,
                    });
                }
            }
        }
    }
    for (field, (store_ords, line)) in &stores {
        if store_ords.contains("Release")
            && !store_ords.contains("SeqCst")
            && loads.get(field).is_some_and(|(load_ords, _)| {
                !load_ords
                    .iter()
                    .any(|o| matches!(o.as_str(), "Acquire" | "SeqCst" | "AcqRel"))
            })
            && !test_lines.contains(line)
        {
            out.findings.push(Finding {
                lint: Lint::UnjustifiedAtomicOrdering,
                path: path.to_string(),
                line: *line,
                message: format!(
                    "releasing store of `{field}` but every load is Relaxed — the pair \
                     cannot synchronize; make the load Acquire (or both Relaxed if no \
                     data is published)"
                ),
                suppressed: false,
            });
        }
    }
}

/// The path segment after `X ::` at token `i`, if the next tokens are
/// `:` `:` ident.
fn path_segment_after(toks: &[Tok], i: usize) -> Option<&Tok> {
    if toks.get(i + 1)?.is_punct(':') && toks.get(i + 2)?.is_punct(':') {
        let t = toks.get(i + 3)?;
        (t.kind == TokKind::Ident).then_some(t)
    } else {
        None
    }
}

/// When token `i` (the `Ordering` of an ordering argument) sits inside
/// `<field> . store ( ... Ordering :: X` or `... . load ( ...`,
/// return the field name and the operation.
fn enclosing_atomic_call(toks: &[Tok], i: usize) -> Option<(String, String)> {
    // Walk backwards to the nearest unbalanced `(`.
    let mut depth = 0i32;
    let mut j = i;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        if toks[j].is_punct(')') {
            depth += 1;
        } else if toks[j].is_punct('(') {
            if depth == 0 {
                break;
            }
            depth -= 1;
        }
    }
    // Expect `<field> . <op> (` — field may be `self . name`.
    let op = toks.get(j.checked_sub(1)?)?;
    if !(op.is_ident("store") || op.is_ident("load")) {
        return None;
    }
    if !toks.get(j.checked_sub(2)?)?.is_punct('.') {
        return None;
    }
    let field = toks.get(j.checked_sub(3)?)?;
    if field.kind != TokKind::Ident {
        return None;
    }
    Some((field.text.clone(), op.text.clone()))
}

// ----------------------------------------------------------------------
// nondeterministic-iteration + wallclock-in-serialized-output
// ----------------------------------------------------------------------

fn lint_serialized_modules(path: &str, scanned: &Scanned, out: &mut FileAnalysis) {
    if !SERIALIZED_MODULES.iter().any(|m| path.contains(m)) {
        return;
    }
    let toks = &scanned.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.is_ident("HashMap") || tok.is_ident("HashSet") {
            out.findings.push(Finding {
                lint: Lint::NondeterministicIteration,
                path: path.to_string(),
                line: tok.line,
                message: format!(
                    "`{}` in a serialization module — iteration order is nondeterministic \
                     and would leak into serialized bytes; use `BTreeMap`/`BTreeSet` or a \
                     sorted `Vec`",
                    tok.text
                ),
                suppressed: false,
            });
        }
        if (tok.is_ident("SystemTime") || tok.is_ident("Instant"))
            && path_segment_after(toks, i).is_some_and(|t| t.is_ident("now"))
        {
            out.findings.push(Finding {
                lint: Lint::WallclockInSerializedOutput,
                path: path.to_string(),
                line: tok.line,
                message: format!(
                    "`{}::now()` in a serialization module — wall-clock readings make \
                     serialized output non-reproducible; inject timestamps from the caller",
                    tok.text
                ),
                suppressed: false,
            });
        }
    }
}

// ----------------------------------------------------------------------
// panic-in-request-path
// ----------------------------------------------------------------------

fn lint_panics(path: &str, scanned: &Scanned, test_lines: &BTreeSet<u32>, out: &mut FileAnalysis) {
    if !REQUEST_PATHS.iter().any(|p| path.contains(p)) {
        return;
    }
    let toks = &scanned.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if test_lines.contains(&tok.line) {
            continue;
        }
        let mut flag = |what: &str| {
            out.findings.push(Finding {
                lint: Lint::PanicInRequestPath,
                path: path.to_string(),
                line: tok.line,
                message: format!(
                    "`{what}` in the serve request path — a panic kills a worker thread; \
                     return a typed error (or suppress with a reason if provably unreachable)"
                ),
                suppressed: false,
            });
        };
        // `.unwrap()` / `.expect(` — method position only.
        if (tok.is_ident("unwrap") || tok.is_ident("expect"))
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            flag(&format!(".{}()", tok.text));
        }
        // `panic!` family — macro position only.
        if matches!(
            tok.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && tok.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            flag(&format!("{}!", tok.text));
        }
    }
}

// ----------------------------------------------------------------------
// wire-string-drift
// ----------------------------------------------------------------------

fn lint_wire(
    path: &str,
    scanned: &Scanned,
    wire_inventory: Option<&[WireEntry]>,
    out: &mut FileAnalysis,
) {
    let Some((_, kinds)) = WIRE_MODULES.iter().find(|(m, _)| path.contains(m)) else {
        return;
    };
    let Some(inventory) = wire_inventory else {
        out.findings.push(Finding {
            lint: Lint::WireStringDrift,
            path: path.to_string(),
            line: 1,
            message: "wire inventory not found (expected crates/serve/wire_inventory.txt) — \
                      the protocol's op/error-code strings are unpinned"
                .to_string(),
            suppressed: false,
        });
        return;
    };
    // Collect the string literals inside `fn op` / `fn as_str` bodies
    // — those literals *are* the wire protocol.
    let toks = &scanned.tokens;
    let mut in_wire_fn: Vec<(String, u32)> = Vec::new(); // (literal, line)
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn")
            && toks
                .get(i + 1)
                .is_some_and(|t| WIRE_FNS.contains(&t.text.as_str()))
        {
            // Find the body braces and harvest string literals.
            let mut k = i;
            while k < toks.len() && !toks[k].is_punct('{') {
                k += 1;
            }
            if k < toks.len() {
                let end = matching_brace(toks, k);
                for t in &toks[k..=end.min(toks.len() - 1)] {
                    if t.kind == TokKind::Str {
                        in_wire_fn.push((t.text.clone(), t.line));
                    }
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
    let declared: BTreeSet<&str> = in_wire_fn.iter().map(|(s, _)| s.as_str()).collect();
    let pinned: BTreeSet<&str> = inventory
        .iter()
        .filter(|e| kinds.contains(&e.kind))
        .map(|e| e.name.as_str())
        .collect();
    for (literal, line) in &in_wire_fn {
        if !pinned.contains(literal.as_str()) {
            out.findings.push(Finding {
                lint: Lint::WireStringDrift,
                path: path.to_string(),
                line: *line,
                message: format!(
                    "wire string \"{literal}\" is not in the inventory — if this rename is \
                     intentional, update crates/serve/wire_inventory.txt (and every client)"
                ),
                suppressed: false,
            });
        }
    }
    for missing in pinned.difference(&declared) {
        out.findings.push(Finding {
            lint: Lint::WireStringDrift,
            path: path.to_string(),
            line: 1,
            message: format!(
                "inventory wire string \"{missing}\" no longer appears in the protocol's \
                 op()/as_str() tables — a rename here breaks deployed clients"
            ),
            suppressed: false,
        });
    }
}

/// The kind of one wire inventory entry, named by its line prefix.
/// Kinds route each entry to the wire module that must declare it
/// (see `WIRE_MODULES`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WireKind {
    /// A line-protocol request tag (`op ` prefix, or no prefix).
    Op,
    /// A typed error-code spelling (`error ` prefix).
    Error,
    /// An HTTP gateway route path (`route ` prefix).
    Route,
    /// A router circuit-breaker state name (`state ` prefix).
    State,
}

/// One parsed wire-inventory entry: a pinned wire string and the kind
/// its line prefix declared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEntry {
    /// Which protocol surface the string belongs to.
    pub kind: WireKind,
    /// The pinned wire string itself.
    pub name: String,
}

/// Parse the wire inventory file format: one wire string per line,
/// `#` comments and blank lines ignored, an `op `/`error `/`route `/
/// `state ` prefix naming the kind (no prefix = an op, the original
/// format).
pub fn parse_wire_inventory(content: &str) -> Vec<WireEntry> {
    content
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (kind, rest) = if let Some(r) = l.strip_prefix("op ") {
                (WireKind::Op, r)
            } else if let Some(r) = l.strip_prefix("error ") {
                (WireKind::Error, r)
            } else if let Some(r) = l.strip_prefix("route ") {
                (WireKind::Route, r)
            } else if let Some(r) = l.strip_prefix("state ") {
                (WireKind::State, r)
            } else {
                (WireKind::Op, l)
            };
            WireEntry {
                kind,
                name: rest.trim().to_string(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn findings_of(path: &str, src: &str) -> Vec<Finding> {
        lint_file(path, &scan(src), None)
            .findings
            .into_iter()
            .filter(|f| !f.suppressed)
            .collect()
    }

    #[test]
    fn undocumented_unsafe_fires_and_safety_comment_clears() {
        let bad = findings_of("crates/x/src/lib.rs", "unsafe fn f() {}\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].lint, Lint::UndocumentedUnsafe);
        let good = findings_of(
            "crates/x/src/lib.rs",
            "// SAFETY: no preconditions.\nunsafe fn f() {}\n",
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn atomics_need_ordering_justification() {
        let src = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n";
        let bad = findings_of("crates/x/src/lib.rs", src);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].lint, Lint::UnjustifiedAtomicOrdering);
        let src =
            "// ordering: telemetry only.\nfn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n";
        assert!(findings_of("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn relaxed_store_acquire_load_pair_is_flagged() {
        let src = "\
// ordering: flag publish.
fn set(f: &AtomicBool) { f.store(true, Ordering::Relaxed); }
// ordering: flag read.
fn get(f: &AtomicBool) -> bool { f.load(Ordering::Acquire) }
";
        let bad = findings_of("crates/x/src/lib.rs", src);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].message.contains("cannot synchronize"), "{bad:?}");
    }

    #[test]
    fn allow_with_reason_suppresses_and_stale_allow_is_flagged() {
        let src = "\
// analyze:allow(undocumented-unsafe, reason = \"demo\")
unsafe fn f() {}
";
        let all = lint_file("crates/x/src/lib.rs", &scan(src), None);
        assert!(all.findings.iter().all(|f| f.suppressed), "{all:?}");
        assert_eq!(all.suppressions.len(), 1);
        // Reason required.
        let src = "// analyze:allow(undocumented-unsafe)\nunsafe fn f() {}\n";
        let bad = findings_of("crates/x/src/lib.rs", src);
        assert!(
            bad.iter()
                .any(|f| f.lint == Lint::InvalidSuppression
                    && f.message.contains("without a reason")),
            "{bad:?}"
        );
        // Stale allow: nothing to suppress.
        let src = "// analyze:allow(undocumented-unsafe, reason = \"stale\")\nfn f() {}\n";
        let bad = findings_of("crates/x/src/lib.rs", src);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].message.contains("stale"), "{bad:?}");
    }

    #[test]
    fn serialization_module_lints_are_path_scoped() {
        let src = "use std::collections::HashMap;\nfn t() { let _ = SystemTime::now(); }\n";
        assert!(
            findings_of("crates/x/src/lib.rs", src).is_empty(),
            "outside serialization modules these are fine"
        );
        let bad = findings_of("crates/core/src/artifact.rs", src);
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert!(bad
            .iter()
            .any(|f| f.lint == Lint::NondeterministicIteration));
        assert!(bad
            .iter()
            .any(|f| f.lint == Lint::WallclockInSerializedOutput));
    }

    #[test]
    fn panic_lint_covers_serve_only_and_skips_tests() {
        let src = "\
fn f(x: Option<u32>) -> u32 { x.unwrap() }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { None::<u32>.unwrap(); }
}
";
        assert!(findings_of("crates/core/src/lib.rs", src).is_empty());
        let bad = findings_of("crates/serve/src/server.rs", src);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].lint, Lint::PanicInRequestPath);
        assert_eq!(bad[0].line, 1);
    }

    #[test]
    fn wire_drift_catches_renames_both_ways() {
        let src = "\
impl Request {
    pub fn op(&self) -> &'static str {
        match self { Request::Predict { .. } => \"predict\" }
    }
}
";
        let inv = parse_wire_inventory("op predict\nop shutdown\n");
        let out = lint_file("crates/serve/src/protocol.rs", &scan(src), Some(&inv));
        let drift: Vec<&Finding> = out
            .findings
            .iter()
            .filter(|f| f.lint == Lint::WireStringDrift)
            .collect();
        assert_eq!(drift.len(), 1, "{drift:?}");
        assert!(drift[0].message.contains("shutdown"), "missing op reported");
        // A literal not in the inventory is drift too.
        let out = lint_file(
            "crates/serve/src/protocol.rs",
            &scan(src),
            Some(&parse_wire_inventory("op predict_v2\n")),
        );
        assert!(
            out.findings
                .iter()
                .any(|f| f.message.contains("\"predict\" is not in the inventory")),
            "{:?}",
            out.findings
        );
    }

    #[test]
    fn inventory_parser_assigns_kinds_from_prefixes() {
        let inv = parse_wire_inventory(
            "# ops\nop predict\nerror bad_request\nroute /predict\nstate open\n\nshutdown\n",
        );
        let expect = |kind, name: &str| WireEntry {
            kind,
            name: name.to_string(),
        };
        assert_eq!(
            inv,
            vec![
                expect(WireKind::Op, "predict"),
                expect(WireKind::Error, "bad_request"),
                expect(WireKind::Route, "/predict"),
                expect(WireKind::State, "open"),
                expect(WireKind::Op, "shutdown"),
            ]
        );
    }

    #[test]
    fn wire_inventory_is_partitioned_between_protocol_and_gateway() {
        let inv = parse_wire_inventory("op predict\nroute /predict\nroute /stats\n");
        // The gateway module answers only for the route slice: the
        // `predict` op is protocol.rs's business, but the missing
        // `/stats` route is drift here.
        let http_src = "\
impl Route {
    pub const fn as_str(self) -> &'static str {
        match self { Route::Predict => \"/predict\" }
    }
}
";
        let out = lint_file("crates/serve/src/http.rs", &scan(http_src), Some(&inv));
        let drift: Vec<&Finding> = out
            .findings
            .iter()
            .filter(|f| f.lint == Lint::WireStringDrift)
            .collect();
        assert_eq!(drift.len(), 1, "{drift:?}");
        assert!(drift[0].message.contains("/stats"), "{drift:?}");
        // And the protocol module ignores the route slice entirely.
        let proto_src = "\
impl Request {
    pub fn op(&self) -> &'static str {
        match self { Request::Predict { .. } => \"predict\" }
    }
}
";
        let out = lint_file("crates/serve/src/protocol.rs", &scan(proto_src), Some(&inv));
        assert!(
            out.findings.iter().all(|f| f.lint != Lint::WireStringDrift),
            "{:?}",
            out.findings
        );
    }

    #[test]
    fn router_wire_module_answers_for_the_state_slice() {
        let inv = parse_wire_inventory("op predict\nstate closed\nstate open\n");
        let src = "\
impl CircuitState {
    pub const fn as_str(self) -> &'static str {
        match self { CircuitState::Closed => \"closed\" }
    }
}
";
        // `open` is pinned but no longer declared; the op slice is not
        // this module's business.
        let out = lint_file("crates/router/src/wire.rs", &scan(src), Some(&inv));
        let drift: Vec<&Finding> = out
            .findings
            .iter()
            .filter(|f| f.lint == Lint::WireStringDrift)
            .collect();
        assert_eq!(drift.len(), 1, "{drift:?}");
        assert!(drift[0].message.contains("open"), "{drift:?}");
    }

    #[test]
    fn panic_lint_covers_the_router_request_path() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let bad = findings_of("crates/router/src/server.rs", src);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].lint, Lint::PanicInRequestPath);
    }
}
