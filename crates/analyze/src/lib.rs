//! `gpufreq-analyze`: in-repo static analysis for the gpufreq workspace.
//!
//! The repo's headline guarantees — byte-identical artifacts at any
//! `--jobs` count, bit-for-bit batched==scalar SVR scoring, and a
//! reject-don't-block serve path — are enforced dynamically by golden
//! tests. This crate adds the static half: a token-level Rust source
//! scanner (built in the style of the OpenCL lexer in
//! `crates/kernel`, and like it dependency-free) plus a small lint
//! registry that makes the invariants *checkable before the tests
//! run*.
//!
//! # Lint catalog
//!
//! | id | enforces |
//! |---|---|
//! | `undocumented-unsafe` | every `unsafe` block/fn/impl carries a `// SAFETY:` comment |
//! | `unjustified-atomic-ordering` | every `Ordering::*` site carries a `// ordering:` justification; store/load pairs that cannot synchronize are flagged |
//! | `nondeterministic-iteration` | no `HashMap`/`HashSet` in serialization modules |
//! | `wallclock-in-serialized-output` | no `SystemTime::now`/`Instant::now` in serialization modules |
//! | `panic-in-request-path` | no `unwrap`/`expect`/`panic!` in non-test `crates/serve` or `crates/router` library code |
//! | `wire-string-drift` | protocol op/error-code/route/state literals match `crates/serve/wire_inventory.txt` |
//! | `invalid-suppression` | `analyze:allow` comments are well-formed, reasoned, and not stale |
//!
//! # Suppressions
//!
//! A finding is silenced with an inline comment on, or directly
//! above, the triggering line:
//!
//! ```text
//! // analyze:allow(panic-in-request-path, reason = "mutex poisoning is unrecoverable here")
//! let q = self.inner.lock().expect("queue poisoned");
//! ```
//!
//! The reason is mandatory, the lint id must exist, and an allow that
//! no longer suppresses anything is itself reported
//! (`invalid-suppression`) so the annotation set cannot rot.
//!
//! # Outputs
//!
//! [`analyze_files`] drives the scan; [`report::render_markdown`]
//! renders the checked-in `ANALYSIS.md` census and
//! [`Analysis::to_json`] the machine-readable form. All three are
//! deterministic — same tree in, same bytes out.

pub mod lints;
pub mod report;
pub mod scan;

pub use lints::{AtomicSite, Finding, Lint, Suppression, UnsafeSite, WireEntry, WireKind};

use std::io;
use std::path::{Path, PathBuf};

/// Aggregated result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Repo-relative paths scanned, sorted.
    pub files: Vec<String>,
    /// All findings across all files, sorted by (path, line, lint).
    pub findings: Vec<Finding>,
    /// Census: every `unsafe` site.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Census: every atomic `Ordering::*` site.
    pub atomic_sites: Vec<AtomicSite>,
    /// Census: every suppression that is actually in force.
    pub suppressions: Vec<Suppression>,
}

impl Analysis {
    /// Findings not covered by a suppression — the ones that fail
    /// `--check`.
    pub fn active_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// Machine-readable JSON (hand-rolled: this crate is
    /// dependency-free by design).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"files\":{},", self.files.len()));
        out.push_str(&format!("\"active\":{},", self.active_findings().count()));
        out.push_str(&format!(
            "\"suppressed\":{},",
            self.findings.len() - self.active_findings().count()
        ));
        out.push_str(&format!("\"unsafe_sites\":{},", self.unsafe_sites.len()));
        out.push_str(&format!("\"atomic_sites\":{},", self.atomic_sites.len()));
        out.push_str("\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"lint\":{},\"path\":{},\"line\":{},\"message\":{},\"suppressed\":{}}}",
                json_str(f.lint.id()),
                json_str(&f.path),
                f.line,
                json_str(&f.message),
                f.suppressed
            ));
        }
        out.push_str("]}");
        out
    }
}

/// JSON string literal with escaping (the only JSON feature this
/// crate needs; serde stays out of the analyzer on purpose).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Analyze already-loaded sources: `(repo-relative path, contents)`
/// pairs. The pure core of the crate — everything (CLI, tests,
/// fixtures) funnels through here.
pub fn analyze_sources(
    sources: &[(String, String)],
    wire_inventory: Option<&[WireEntry]>,
) -> Analysis {
    let mut ordered: Vec<&(String, String)> = sources.iter().collect();
    ordered.sort_by(|a, b| a.0.cmp(&b.0));
    let mut analysis = Analysis::default();
    for (path, contents) in ordered {
        analysis.files.push(path.clone());
        let scanned = scan::scan(contents);
        let file = lints::lint_file(path, &scanned, wire_inventory);
        analysis.findings.extend(file.findings);
        analysis.unsafe_sites.extend(file.unsafe_sites);
        analysis.atomic_sites.extend(file.atomic_sites);
        analysis.suppressions.extend(file.suppressions);
    }
    analysis
}

/// The default scan set: every `.rs` file under `crates/*/src` plus
/// the root facade's `src/`, sorted. Vendored dependencies, build
/// output, and test fixtures live outside those trees and are never
/// scanned by default.
pub fn default_file_set(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs(&facade, &mut files)?;
    }
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Repo-relative forward-slash form of `path` for findings/census.
pub fn repo_relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Where the wire inventory lives, relative to the repo root.
pub const WIRE_INVENTORY_PATH: &str = "crates/serve/wire_inventory.txt";

/// Load files from disk and analyze them. `root` anchors
/// repo-relative paths and the wire-inventory lookup.
pub fn analyze_files(root: &Path, files: &[PathBuf]) -> io::Result<Analysis> {
    let inventory = std::fs::read_to_string(root.join(WIRE_INVENTORY_PATH))
        .ok()
        .map(|s| lints::parse_wire_inventory(&s));
    let mut sources = Vec::with_capacity(files.len());
    for file in files {
        let contents = std::fs::read_to_string(file)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", file.display())))?;
        sources.push((repo_relative(root, file), contents));
    }
    Ok(analyze_sources(&sources, inventory.as_deref()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let sources = vec![(
            "crates/x/src/lib.rs".to_string(),
            "unsafe fn f() { /* \"quoted\" */ }\n".to_string(),
        )];
        let a = analyze_sources(&sources, None);
        let json = a.to_json();
        assert!(json.starts_with("{\"files\":1,\"active\":1,"), "{json}");
        assert!(json.contains("\"lint\":\"undocumented-unsafe\""), "{json}");
    }

    #[test]
    fn sources_are_sorted_regardless_of_input_order() {
        let sources = vec![
            (
                "crates/b/src/lib.rs".to_string(),
                "unsafe fn f() {}\n".to_string(),
            ),
            (
                "crates/a/src/lib.rs".to_string(),
                "unsafe fn g() {}\n".to_string(),
            ),
        ];
        let a = analyze_sources(&sources, None);
        assert_eq!(a.files, vec!["crates/a/src/lib.rs", "crates/b/src/lib.rs"]);
        assert!(a.findings[0].path < a.findings[1].path);
    }
}
