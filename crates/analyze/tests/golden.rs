//! Golden test for the checked-in `ANALYSIS.md`: regenerating the
//! report over the real tree must reproduce the committed bytes, and
//! the tree itself must be analyze-clean. Together with the CI
//! `analyze` job this makes the census un-rottable — touch an
//! `unsafe` block or an `Ordering::*` site without updating the
//! report and this test names the drift.
//!
//! To regenerate after an *intentional* change:
//!
//! ```sh
//! GPUFREQ_BLESS=1 cargo test -p gpufreq-analyze --test golden
//! ```
//!
//! (equivalently: `cargo run -p gpufreq-cli -- analyze --report ANALYSIS.md`)
//! and commit the rewritten `ANALYSIS.md` with the change that moved it.

use std::path::{Path, PathBuf};

use gpufreq_analyze::{analyze_files, default_file_set, report::render_markdown, Analysis};

fn repo_root() -> PathBuf {
    // crates/analyze -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze has a grandparent")
        .to_path_buf()
}

fn analyze_repo() -> Analysis {
    let root = repo_root();
    let files = default_file_set(&root).expect("walk crates/*/src");
    let files: Vec<String> = files
        .iter()
        .map(|f| gpufreq_analyze::repo_relative(&root, f))
        .collect();
    let paths: Vec<PathBuf> = files.iter().map(|f| root.join(f)).collect();
    analyze_files(&root, &paths).expect("read workspace sources")
}

#[test]
fn the_tree_is_analyze_clean() {
    let analysis = analyze_repo();
    let active: Vec<String> = analysis.active_findings().map(|f| f.to_string()).collect();
    assert!(
        active.is_empty(),
        "unsuppressed findings in the tree:\n{}",
        active.join("\n")
    );
}

#[test]
fn analysis_md_matches_the_tree() {
    let analysis = analyze_repo();
    let rendered = render_markdown(&analysis);
    let path = repo_root().join("ANALYSIS.md");
    if std::env::var_os("GPUFREQ_BLESS").is_some() {
        std::fs::write(&path, &rendered).expect("write ANALYSIS.md");
        eprintln!("[golden] blessed {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing {} ({e}); run with GPUFREQ_BLESS=1 to create it",
            path.display()
        )
    });
    assert!(
        committed == rendered,
        "ANALYSIS.md is stale; regenerate with `cargo run -p gpufreq-cli -- \
         analyze --report ANALYSIS.md` (or GPUFREQ_BLESS=1 on this test) \
         and commit it"
    );
}

#[test]
fn the_report_is_deterministic() {
    let a = render_markdown(&analyze_repo());
    let b = render_markdown(&analyze_repo());
    assert_eq!(a, b);
}
