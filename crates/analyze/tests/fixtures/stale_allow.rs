// Known-bad fixture: an allow that no longer suppresses anything.
// Expected finding: invalid-suppression (stale) at line 4.

// analyze:allow(undocumented-unsafe, reason = "nothing here is unsafe, so this allow is stale")
pub fn perfectly_safe() {}
