// Known-bad fixture: panics in the serve request path. The path
// mirrors `serve/src/` so panic-in-request-path fires. Expected
// findings at lines 6 and 8; the `#[cfg(test)]` module is exempt.

pub fn handle(request: Option<&str>) -> String {
    let body = request.unwrap();
    if body.is_empty() {
        panic!("empty request");
    }
    body.to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::handle(Some("x")), "x");
        let _ = None::<u32>.unwrap_or_default();
    }
}
