// Known-bad fixture: a wire op literal that drifted from the checked-in
// inventory (`predict_v2` is not pinned; everything pinned is missing
// from this table). The path mirrors `serve/src/protocol.rs` so
// wire-string-drift fires.

pub enum Request {
    Predict,
}

impl Request {
    pub fn op(&self) -> &'static str {
        match self {
            Request::Predict => "predict_v2",
        }
    }
}
