// Known-bad fixture: hash-iteration order and a wall-clock reading
// feeding serialized bytes. The path mirrors `core/src/artifact.rs`
// so the module-scoped lints fire. Expected findings:
// nondeterministic-iteration at lines 7 and 9,
// wallclock-in-serialized-output at line 14.

use std::collections::HashMap;

pub fn serialize(map: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in map {
        out.push_str(&format!("{k}={v};"));
    }
    out.push_str(&format!("at={:?}", std::time::SystemTime::now()));
    out
}
