// Known-bad fixture: atomic orderings with no `ordering:`
// justification, and a store/load pair that cannot synchronize (the
// Acquire load pairs with a Relaxed-only store). Expected findings:
// unjustified-atomic-ordering at lines 10 and 14, plus the pair
// heuristic at line 14.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::Relaxed);
}

pub fn consume(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}
