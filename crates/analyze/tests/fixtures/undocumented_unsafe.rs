// Known-bad fixture: `unsafe` without a `SAFETY:` comment, as a fn
// and as a block. Expected findings: undocumented-unsafe at lines 5
// and 10.

pub unsafe fn no_safety_comment(ptr: *const u8) -> u8 {
    *ptr
}

pub fn caller(ptr: *const u8) -> u8 {
    unsafe { no_safety_comment(ptr) }
}
