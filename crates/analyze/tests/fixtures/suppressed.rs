// Clean fixture: the one finding is covered by a reasoned allow, so
// `gpufreq analyze --check` over this file alone must exit 0.

// analyze:allow(undocumented-unsafe, reason = "fixture demonstrating the suppression syntax")
pub unsafe fn documented_by_allow() {}
