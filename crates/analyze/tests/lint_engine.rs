//! Fixture-driven tests for the lint engine: each known-bad snippet
//! under `tests/fixtures/` must produce exactly the findings its
//! header comment promises — same lint, same line — and nothing else.
//!
//! Fixtures are loaded with their fixture-relative path (e.g.
//! `serve/src/server.rs`) so the path-fragment module scoping behaves
//! exactly as it does over the real tree.

use std::path::Path;

use gpufreq_analyze::{analyze_sources, Analysis, Lint, WireEntry};

fn analyze_fixture(rel: &str, inventory: Option<&[WireEntry]>) -> Analysis {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    let contents =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    analyze_sources(&[(rel.to_string(), contents)], inventory)
}

/// (lint id, line) pairs for every *active* finding, sorted.
fn active(analysis: &Analysis) -> Vec<(String, u32)> {
    analysis
        .active_findings()
        .map(|f| (f.lint.id().to_string(), f.line))
        .collect()
}

fn pairs(expected: &[(&str, u32)]) -> Vec<(String, u32)> {
    expected.iter().map(|(l, n)| (l.to_string(), *n)).collect()
}

#[test]
fn undocumented_unsafe_fires_on_fn_and_block() {
    let a = analyze_fixture("undocumented_unsafe.rs", None);
    assert_eq!(
        active(&a),
        pairs(&[("undocumented-unsafe", 5), ("undocumented-unsafe", 10)])
    );
    // Both sites still land in the census, with no SAFETY text.
    assert_eq!(a.unsafe_sites.len(), 2);
    assert!(a.unsafe_sites.iter().all(|s| s.safety.is_none()));
    assert_eq!(a.unsafe_sites[0].kind, "fn");
    assert_eq!(a.unsafe_sites[1].kind, "block");
}

#[test]
fn unjustified_atomics_and_the_pair_heuristic() {
    let a = analyze_fixture("unjustified_atomic.rs", None);
    assert_eq!(
        active(&a),
        pairs(&[
            ("unjustified-atomic-ordering", 10),
            ("unjustified-atomic-ordering", 14),
            // The Acquire load whose only store is Relaxed — flagged a
            // second time by the pair heuristic.
            ("unjustified-atomic-ordering", 14),
        ])
    );
    assert_eq!(a.atomic_sites.len(), 2);
    assert!(a.atomic_sites.iter().all(|s| s.justification.is_none()));
}

#[test]
fn serialization_module_rejects_hash_iteration_and_wallclock() {
    let a = analyze_fixture("core/src/artifact.rs", None);
    assert_eq!(
        active(&a),
        pairs(&[
            ("nondeterministic-iteration", 7),
            ("nondeterministic-iteration", 9),
            ("wallclock-in-serialized-output", 14),
        ])
    );
}

#[test]
fn the_same_code_outside_a_serialized_module_is_clean() {
    // Identical contents, non-serialized path: the module-scoped lints
    // must stay quiet.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/core/src/artifact.rs");
    let contents = std::fs::read_to_string(path).unwrap();
    let a = analyze_sources(
        &[("crates/tools/src/scratch.rs".to_string(), contents)],
        None,
    );
    assert_eq!(active(&a), Vec::<(String, u32)>::new());
}

#[test]
fn panics_in_the_request_path_but_not_in_test_modules() {
    let a = analyze_fixture("serve/src/server.rs", None);
    assert_eq!(
        active(&a),
        pairs(&[("panic-in-request-path", 6), ("panic-in-request-path", 8)])
    );
}

#[test]
fn wire_drift_is_flagged_in_both_directions() {
    let inventory = gpufreq_analyze::lints::parse_wire_inventory("op predict\n");
    let a = analyze_fixture("serve/src/protocol.rs", Some(&inventory));
    let found = active(&a);
    // "predict_v2" is in the module but not pinned; "predict" is
    // pinned but absent from the module (reported at line 1).
    assert_eq!(
        found,
        pairs(&[("wire-string-drift", 1), ("wire-string-drift", 13)])
    );
    let messages: Vec<&str> = a.active_findings().map(|f| f.message.as_str()).collect();
    assert!(
        messages.iter().any(|m| m.contains("predict_v2")),
        "{messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("\"predict\"")),
        "{messages:?}"
    );
}

#[test]
fn a_missing_inventory_is_itself_a_finding() {
    let a = analyze_fixture("serve/src/protocol.rs", None);
    assert_eq!(active(&a), pairs(&[("wire-string-drift", 1)]));
}

#[test]
fn a_reasoned_allow_suppresses_and_is_recorded() {
    let a = analyze_fixture("suppressed.rs", None);
    assert_eq!(active(&a), Vec::<(String, u32)>::new());
    // The finding still exists, marked suppressed.
    assert_eq!(a.findings.len(), 1);
    assert!(a.findings[0].suppressed);
    assert_eq!(a.findings[0].lint, Lint::UndocumentedUnsafe);
    // And the suppression is in the census with its reason.
    assert_eq!(a.suppressions.len(), 1);
    assert_eq!(a.suppressions[0].line, 4);
    assert!(a.suppressions[0]
        .reason
        .contains("demonstrating the suppression syntax"));
}

#[test]
fn a_stale_allow_is_a_finding_in_its_own_right() {
    let a = analyze_fixture("stale_allow.rs", None);
    assert_eq!(active(&a), pairs(&[("invalid-suppression", 4)]));
    assert!(a.suppressions.is_empty());
}

#[test]
fn every_fixture_header_matches_reality() {
    // Guard against the fixtures and their "Expected findings" prose
    // drifting apart: known-bad fixtures must have at least one active
    // finding, the clean one none.
    for (rel, want_active) in [
        ("undocumented_unsafe.rs", true),
        ("unjustified_atomic.rs", true),
        ("core/src/artifact.rs", true),
        ("serve/src/server.rs", true),
        ("serve/src/protocol.rs", true),
        ("stale_allow.rs", true),
        ("suppressed.rs", false),
    ] {
        let a = analyze_fixture(rel, None);
        assert_eq!(
            a.active_findings().count() > 0,
            want_active,
            "fixture {rel} disagrees with its header"
        );
    }
}
