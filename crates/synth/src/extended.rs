//! Extended training corpus: seeded random mixed-feature kernels.
//!
//! The paper fixes its corpus at 106 codes; this module generates
//! *additional* mixes on demand for the corpus-coverage ablation
//! (how does training-set coverage of the feature simplex affect
//! prediction accuracy?). Each extra benchmark draws 2–5 active
//! instruction classes and per-class repetition counts from a seeded
//! RNG, then reuses the mixed-kernel skeleton, so the codes are real
//! parseable kernels just like the base corpus.

use crate::mixed::mix_body_line;
use crate::patterns::PatternKind;
use crate::MicroBenchmark;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Generate `count` extra mixed benchmarks from `seed`, deterministic
/// per `(count, seed)`.
pub fn generate_extended(count: usize, seed: u64) -> Vec<MicroBenchmark> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let spec = random_components(&mut rng);
            MicroBenchmark {
                name: format!("b-ext-{i}"),
                source: extended_kernel_source(i, &spec),
            }
        })
        .collect()
}

fn random_components(rng: &mut SmallRng) -> Vec<(PatternKind, u32)> {
    let num_classes = rng.gen_range(2..=5usize);
    let mut classes = PatternKind::ALL.to_vec();
    // Partial Fisher-Yates to pick `num_classes` distinct classes.
    for i in 0..num_classes {
        let j = rng.gen_range(i..classes.len());
        classes.swap(i, j);
    }
    classes
        .into_iter()
        .take(num_classes)
        .map(|p| {
            // Log-uniform repetition counts: small kernels are common,
            // heavy ones appear but do not dominate.
            let exp = rng.gen_range(0..=6u32);
            let base = 1u32 << exp;
            (p, rng.gen_range(base..=2 * base))
        })
        .collect()
}

fn extended_kernel_source(index: usize, components: &[(PatternKind, u32)]) -> String {
    let needs_local = components
        .iter()
        .any(|(p, _)| matches!(p, PatternKind::LocalAccess));
    let needs_int = components.iter().any(|(p, _)| {
        matches!(
            p,
            PatternKind::IntAdd
                | PatternKind::IntMul
                | PatternKind::IntDiv
                | PatternKind::IntBitwise
        )
    });
    let mut src = String::new();
    let _ = writeln!(
        src,
        "__kernel void b_ext_{index}(__global float* in_buf, __global float* out_buf, uint mask) {{"
    );
    if needs_local {
        src.push_str("    __local float tile[256];\n");
    }
    src.push_str("    uint gid = get_global_id(0);\n");
    if needs_local {
        src.push_str("    uint lid = get_local_id(0);\n");
    }
    src.push_str("    float f = in_buf[gid & mask];\n");
    if needs_local {
        src.push_str("    tile[lid] = f;\n    barrier(0);\n");
    }
    if needs_int {
        src.push_str("    int v = (int)f + (int)gid;\n");
    }
    let mut remaining: Vec<(PatternKind, u32)> = components.to_vec();
    let mut k = 0u32;
    while remaining.iter().any(|(_, n)| *n > 0) {
        for (p, n) in remaining.iter_mut() {
            if *n > 0 {
                src.push_str(&mix_body_line(*p, k));
                *n -= 1;
                k += 1;
            }
        }
    }
    if needs_int {
        src.push_str("    out_buf[gid] = f + (float)v;\n");
    } else {
        src.push_str("    out_buf[gid] = f;\n");
    }
    src.push_str("}\n");
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::StaticFeatures;

    #[test]
    fn extended_corpus_is_deterministic() {
        assert_eq!(generate_extended(20, 7), generate_extended(20, 7));
        assert_ne!(generate_extended(20, 7), generate_extended(20, 8));
    }

    #[test]
    fn every_extended_kernel_profiles() {
        for b in generate_extended(50, 42) {
            let p = b.profile();
            assert!(p.counts.total() > 0.0, "{} has no instructions", b.name);
        }
    }

    #[test]
    fn extended_mixes_fill_the_interior() {
        // Random mixes should produce feature points away from the
        // single-class corners: at least half have 2+ active classes
        // with share > 0.1.
        let benches = generate_extended(40, 11);
        let interior = benches
            .iter()
            .filter(|b| {
                let f: StaticFeatures = b.static_features();
                f.values().iter().filter(|&&v| v > 0.1).count() >= 2
            })
            .count();
        assert!(interior >= 20, "only {interior}/40 interior points");
    }

    #[test]
    fn names_do_not_collide_with_base_corpus() {
        let base = crate::generate_all();
        let ext = generate_extended(30, 3);
        for e in &ext {
            assert!(base.iter().all(|b| b.name != e.name));
        }
    }
}
