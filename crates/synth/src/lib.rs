//! `gpufreq-synth` — the 106 synthetic training micro-benchmarks of
//! §3.3 of *Predictable GPUs Frequency Scaling for Energy and
//! Performance* (Fan, Cosenza, Juurlink — ICPP 2019).
//!
//! The training corpus is generated, never hand-listed:
//!
//! * [`patterns`] — ten single-class patterns × nine intensities
//!   (2⁰ … 2⁸) = 90 kernels, each stressing one component of the static
//!   feature vector;
//! * [`mixed`] — sixteen mixed-feature kernels filling the interior of
//!   the feature space;
//!
//! for a total of **106 micro-benchmarks**, every one a real kernel
//! source compiled through `gpufreq-kernel`.

#![warn(missing_docs)]

pub mod extended;
pub mod mixed;
pub mod patterns;

pub use extended::generate_extended;
pub use mixed::{mix_specs, MixSpec};
pub use patterns::{PatternKind, INTENSITIES};

use gpufreq_kernel::{parse, AnalysisConfig, KernelProfile, LaunchConfig, StaticFeatures};
use serde::{Deserialize, Serialize};

/// Number of micro-benchmarks in the corpus (§3.3).
pub const NUM_MICROBENCHMARKS: usize = 106;

/// Number of sampled frequency settings per benchmark during training
/// (§3.3: 106 × 40 = 4240 samples).
pub const TRAINING_SETTINGS: usize = 40;

/// One synthetic training kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroBenchmark {
    /// Benchmark name (`b-int-add-16`, `b-mix-stream`, ...).
    pub name: String,
    /// Kernel source in the OpenCL-C subset.
    pub source: String,
}

impl MicroBenchmark {
    /// Launch geometry used for all micro-benchmarks: 2²⁰ work-items in
    /// groups of 256 — large enough to saturate the simulated device.
    pub fn launch() -> LaunchConfig {
        LaunchConfig::new(1 << 20, 256)
    }

    /// Parse + analyze into an execution profile for the simulator.
    pub fn profile(&self) -> KernelProfile {
        let program = parse(&self.source).expect("generated source always parses");
        KernelProfile::from_kernel(
            program
                .first_kernel()
                .expect("generated source has a kernel"),
            &AnalysisConfig::default(),
            Self::launch(),
        )
        .expect("generated source always analyzes")
    }

    /// The static features the predictor sees for this benchmark.
    pub fn static_features(&self) -> StaticFeatures {
        self.profile().static_features()
    }
}

/// Generate the full 106-benchmark training corpus, deterministically.
pub fn generate_all() -> Vec<MicroBenchmark> {
    let mut out = Vec::with_capacity(NUM_MICROBENCHMARKS);
    for pattern in PatternKind::ALL {
        for &intensity in &INTENSITIES {
            out.push(MicroBenchmark {
                name: format!("{}-{}", pattern.name(), intensity),
                source: pattern.kernel_source(intensity),
            });
        }
    }
    for mix in mix_specs() {
        out.push(MicroBenchmark {
            name: mix.name.to_string(),
            source: mix.kernel_source(),
        });
    }
    debug_assert_eq!(out.len(), NUM_MICROBENCHMARKS);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_exactly_106_benchmarks() {
        assert_eq!(generate_all().len(), NUM_MICROBENCHMARKS);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = generate_all().into_iter().map(|b| b.name).collect();
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn every_benchmark_profiles() {
        for b in generate_all() {
            let p = b.profile();
            assert!(p.counts.total() > 0.0, "{} has no instructions", b.name);
            assert!(p.total_global_bytes() > 0.0, "{} moves no data", b.name);
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        assert_eq!(generate_all(), generate_all());
    }

    #[test]
    fn feature_space_coverage() {
        // Across the corpus, every static feature class is exercised
        // by some benchmark with a meaningful share.
        let benches = generate_all();
        let mut max_share = [0.0f64; 10];
        for b in &benches {
            let f = b.static_features();
            for (j, &v) in f.values().iter().enumerate() {
                max_share[j] = max_share[j].max(v);
            }
        }
        for (j, &share) in max_share.iter().enumerate() {
            assert!(share > 0.2, "feature {j} max share only {share}");
        }
    }

    #[test]
    fn training_size_matches_paper() {
        assert_eq!(NUM_MICROBENCHMARKS * TRAINING_SETTINGS, 4240);
    }
}
