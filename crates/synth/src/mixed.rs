//! Mixed-feature micro-benchmarks (§3.3).
//!
//! Besides the ten single-class patterns, the training set includes a
//! set of benchmarks "corresponding to a mix of all used features":
//! sixteen kernels combining arithmetic classes, special functions and
//! memory traffic in different proportions, filling the interior of the
//! feature simplex that the single-class patterns only touch at its
//! corners.

use crate::patterns::PatternKind;
use std::fmt::Write as _;

/// A mixed benchmark: named proportions of the base patterns.
#[derive(Debug, Clone)]
pub struct MixSpec {
    /// Benchmark name (`b-mix-*`).
    pub name: &'static str,
    /// `(pattern, repetitions)` components, applied in order.
    pub components: Vec<(PatternKind, u32)>,
}

/// The sixteen mixed benchmarks.
pub fn mix_specs() -> Vec<MixSpec> {
    use PatternKind::*;
    vec![
        MixSpec {
            name: "b-mix-fma",
            components: vec![(FloatMul, 16), (FloatAdd, 16)],
        },
        MixSpec {
            name: "b-mix-fma-heavy",
            components: vec![(FloatMul, 96), (FloatAdd, 96)],
        },
        MixSpec {
            name: "b-mix-int-float",
            components: vec![(IntAdd, 24), (FloatAdd, 24)],
        },
        MixSpec {
            name: "b-mix-int-alu",
            components: vec![(IntAdd, 16), (IntMul, 16), (IntBitwise, 16)],
        },
        MixSpec {
            name: "b-mix-crypto",
            components: vec![(IntBitwise, 48), (IntAdd, 16), (GlobalAccess, 4)],
        },
        MixSpec {
            name: "b-mix-sf-mul",
            components: vec![(SpecialFn, 12), (FloatMul, 24)],
        },
        MixSpec {
            name: "b-mix-sf-light",
            components: vec![(SpecialFn, 4), (FloatAdd, 8), (GlobalAccess, 2)],
        },
        MixSpec {
            name: "b-mix-stream",
            components: vec![(GlobalAccess, 8), (FloatAdd, 4)],
        },
        MixSpec {
            name: "b-mix-stream-compute",
            components: vec![(GlobalAccess, 4), (FloatMul, 48)],
        },
        MixSpec {
            name: "b-mix-stencil",
            components: vec![(GlobalAccess, 6), (FloatMul, 12), (FloatAdd, 12)],
        },
        MixSpec {
            name: "b-mix-tile",
            components: vec![(LocalAccess, 16), (FloatMul, 16), (FloatAdd, 8)],
        },
        MixSpec {
            name: "b-mix-tile-heavy",
            components: vec![(LocalAccess, 48), (FloatMul, 8)],
        },
        MixSpec {
            name: "b-mix-div",
            components: vec![(FloatDiv, 8), (FloatMul, 16), (IntDiv, 4)],
        },
        MixSpec {
            name: "b-mix-reduce",
            components: vec![(LocalAccess, 12), (IntAdd, 12), (GlobalAccess, 3)],
        },
        MixSpec {
            name: "b-mix-all",
            components: vec![
                (IntAdd, 6),
                (IntMul, 6),
                (IntBitwise, 6),
                (FloatAdd, 6),
                (FloatMul, 6),
                (SpecialFn, 3),
                (GlobalAccess, 3),
                (LocalAccess, 6),
            ],
        },
        MixSpec {
            name: "b-mix-all-heavy",
            components: vec![
                (IntAdd, 24),
                (IntMul, 12),
                (IntDiv, 4),
                (IntBitwise, 24),
                (FloatAdd, 24),
                (FloatMul, 24),
                (FloatDiv, 6),
                (SpecialFn, 8),
                (GlobalAccess, 6),
                (LocalAccess, 12),
            ],
        },
    ]
}

impl MixSpec {
    /// Emit the kernel source for this mix.
    ///
    /// The skeleton matches the single-pattern kernels (one load, one
    /// store, same parameter list) so that mixes differ only in their
    /// instruction mixture; components are interleaved round-robin so
    /// no class clusters at one end of the body.
    pub fn kernel_source(&self) -> String {
        let fn_name = self.name.replace('-', "_");
        let needs_local = self
            .components
            .iter()
            .any(|(p, _)| matches!(p, PatternKind::LocalAccess));
        let needs_int = self.components.iter().any(|(p, _)| {
            matches!(
                p,
                PatternKind::IntAdd
                    | PatternKind::IntMul
                    | PatternKind::IntDiv
                    | PatternKind::IntBitwise
            )
        });
        let mut src = String::new();
        let _ = writeln!(
            src,
            "__kernel void {fn_name}(__global float* in_buf, __global float* out_buf, uint mask) {{"
        );
        if needs_local {
            src.push_str("    __local float tile[256];\n");
        }
        src.push_str("    uint gid = get_global_id(0);\n");
        if needs_local {
            src.push_str("    uint lid = get_local_id(0);\n");
        }
        src.push_str("    float f = in_buf[gid & mask];\n");
        if needs_local {
            src.push_str("    tile[lid] = f;\n");
            src.push_str("    barrier(0);\n");
        }
        if needs_int {
            src.push_str("    int v = (int)f + (int)gid;\n");
        }
        // Round-robin interleave of the components.
        let mut remaining: Vec<(PatternKind, u32)> = self.components.clone();
        let mut k = 0u32;
        while remaining.iter().any(|(_, n)| *n > 0) {
            for (p, n) in remaining.iter_mut() {
                if *n > 0 {
                    src.push_str(&mix_body_line(*p, k));
                    *n -= 1;
                    k += 1;
                }
            }
        }
        if needs_int {
            src.push_str("    out_buf[gid] = f + (float)v;\n");
        } else {
            src.push_str("    out_buf[gid] = f;\n");
        }
        src.push_str("}\n");
        src
    }
}

/// Body lines for mixed kernels. The single-pattern `body_line` variants
/// for global/local access assume the dedicated multi-buffer skeleton;
/// mixes use the plain `in_buf`/`out_buf`/`tile` skeleton, so the two
/// memory classes are emitted differently here.
pub(crate) fn mix_body_line(p: PatternKind, k: u32) -> String {
    match p {
        PatternKind::IntAdd => format!("    v = v + {};\n", 1 + k % 7),
        PatternKind::IntMul => "    v = v * 3;\n".to_string(),
        PatternKind::IntDiv => format!("    v = v / {};\n", 2 + k % 3),
        PatternKind::IntBitwise => match k % 3 {
            0 => format!("    v = v ^ {};\n", 0x5f + (k % 16)),
            1 => "    v = v << 1;\n".to_string(),
            _ => "    v = v & 8388607;\n".to_string(),
        },
        PatternKind::FloatAdd => "    f = f + 1.5f;\n".to_string(),
        PatternKind::FloatMul => "    f = f * 1.0001f;\n".to_string(),
        PatternKind::FloatDiv => "    f = f / 1.0001f;\n".to_string(),
        PatternKind::SpecialFn => match k % 4 {
            0 => "    f = sin(f);\n".to_string(),
            1 => "    f = cos(f);\n".to_string(),
            2 => "    f = exp(f) - f;\n".to_string(),
            _ => "    f = sqrt(f + 2.0f);\n".to_string(),
        },
        PatternKind::GlobalAccess => {
            format!("    f = f + in_buf[(gid + {}u) & mask];\n", k * 33 + 1)
        }
        PatternKind::LocalAccess => match k % 2 {
            0 => format!("    tile[(lid + {}u) & 255u] = f;\n", k + 1),
            _ => format!("    f = f + tile[(lid + {}u) & 255u];\n", k),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::{analyze_kernel, parse, StaticFeatures};

    #[test]
    fn there_are_sixteen_mixes() {
        assert_eq!(mix_specs().len(), 16);
    }

    #[test]
    fn mix_names_are_unique() {
        let mut names: Vec<&str> = mix_specs().iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn all_mixes_parse_and_analyze() {
        for m in mix_specs() {
            let src = m.kernel_source();
            let prog = parse(&src).unwrap_or_else(|e| panic!("{}: {e}\n{src}", m.name));
            let a = analyze_kernel(prog.first_kernel().unwrap())
                .unwrap_or_else(|e| panic!("{}: {e}", m.name));
            assert!(a.counts.total() > 0.0, "{}", m.name);
        }
    }

    #[test]
    fn mixes_touch_multiple_feature_classes() {
        for m in mix_specs() {
            let prog = parse(&m.kernel_source()).unwrap();
            let a = analyze_kernel(prog.first_kernel().unwrap()).unwrap();
            let f = StaticFeatures::from_analysis(&a);
            let active = f.values().iter().filter(|&&v| v > 0.01).count();
            assert!(active >= 2, "{} exercises {} classes", m.name, active);
        }
    }

    #[test]
    fn mix_all_touches_almost_everything() {
        let all = mix_specs()
            .into_iter()
            .find(|m| m.name == "b-mix-all-heavy")
            .unwrap();
        let prog = parse(&all.kernel_source()).unwrap();
        let a = analyze_kernel(prog.first_kernel().unwrap()).unwrap();
        let f = StaticFeatures::from_analysis(&a);
        let active = f.values().iter().filter(|&&v| v > 0.005).count();
        assert!(active >= 8, "only {active} active classes");
    }
}
