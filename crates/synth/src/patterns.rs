//! Pattern-based micro-benchmark generation (§3.3).
//!
//! Each pattern targets one of the ten static feature classes and emits
//! nine kernels with instruction intensity 2⁰ … 2⁸ — e.g. `b-int-add`
//! contains kernels with 1, 2, 4, …, 256 integer additions over a fixed
//! one-load/one-store memory skeleton. Sweeping the intensity moves a
//! kernel from memory-dominated to compute-dominated, so the training
//! set covers both regimes of the timing model for every instruction
//! class.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::fmt::Write as _;

/// The ten pattern kinds, one per static feature class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// Integer additions (`k_int_add`).
    IntAdd,
    /// Integer multiplications (`k_int_mul`).
    IntMul,
    /// Integer divisions (`k_int_div`).
    IntDiv,
    /// Integer bitwise ops (`k_int_bw`).
    IntBitwise,
    /// Float additions (`k_float_add`).
    FloatAdd,
    /// Float multiplications (`k_float_mul`).
    FloatMul,
    /// Float divisions (`k_float_div`).
    FloatDiv,
    /// Special functions (`k_sf`).
    SpecialFn,
    /// Global memory accesses (`k_gl_access`).
    GlobalAccess,
    /// Local memory accesses (`k_loc_access`).
    LocalAccess,
}

impl PatternKind {
    /// All ten patterns in canonical order.
    pub const ALL: [PatternKind; 10] = [
        PatternKind::IntAdd,
        PatternKind::IntMul,
        PatternKind::IntDiv,
        PatternKind::IntBitwise,
        PatternKind::FloatAdd,
        PatternKind::FloatMul,
        PatternKind::FloatDiv,
        PatternKind::SpecialFn,
        PatternKind::GlobalAccess,
        PatternKind::LocalAccess,
    ];

    /// Pattern name in the paper's style (`b-int-add`, `b-sf`, ...).
    pub fn name(self) -> &'static str {
        match self {
            PatternKind::IntAdd => "b-int-add",
            PatternKind::IntMul => "b-int-mul",
            PatternKind::IntDiv => "b-int-div",
            PatternKind::IntBitwise => "b-int-bw",
            PatternKind::FloatAdd => "b-float-add",
            PatternKind::FloatMul => "b-float-mul",
            PatternKind::FloatDiv => "b-float-div",
            PatternKind::SpecialFn => "b-sf",
            PatternKind::GlobalAccess => "b-gl-access",
            PatternKind::LocalAccess => "b-loc-access",
        }
    }

    /// Index of the feature this pattern stresses in the static
    /// feature vector (see `gpufreq_kernel::STATIC_FEATURE_NAMES`).
    pub fn feature_index(self) -> usize {
        match self {
            PatternKind::IntAdd => 0,
            PatternKind::IntMul => 1,
            PatternKind::IntDiv => 2,
            PatternKind::IntBitwise => 3,
            PatternKind::FloatAdd => 4,
            PatternKind::FloatMul => 5,
            PatternKind::FloatDiv => 6,
            PatternKind::SpecialFn => 7,
            PatternKind::GlobalAccess => 8,
            PatternKind::LocalAccess => 9,
        }
    }

    /// One unrolled body statement exercising this pattern.
    /// `k` is the unroll index, used to vary constants.
    pub(crate) fn body_line(self, k: u32) -> String {
        match self {
            PatternKind::IntAdd => format!("    v = v + {};\n", 1 + k % 7),
            PatternKind::IntMul => "    v = v * 3;\n".to_string(),
            PatternKind::IntDiv => format!("    v = v / {};\n", 2 + k % 3),
            PatternKind::IntBitwise => match k % 3 {
                0 => format!("    v = v ^ {};\n", 0x5f + (k % 16)),
                1 => "    v = v << 1;\n".to_string(),
                _ => format!("    v = v & {};\n", 0x7fffff),
            },
            PatternKind::FloatAdd => "    f = f + 1.5f;\n".to_string(),
            PatternKind::FloatMul => "    f = f * 1.0001f;\n".to_string(),
            PatternKind::FloatDiv => "    f = f / 1.0001f;\n".to_string(),
            PatternKind::SpecialFn => match k % 4 {
                0 => "    f = sin(f);\n".to_string(),
                1 => "    f = cos(f);\n".to_string(),
                2 => "    f = exp(f) - f;\n".to_string(),
                _ => "    f = sqrt(f + 2.0f);\n".to_string(),
            },
            // Rotate over four buffers with a fixed index so the lines
            // are dominated by the accesses themselves, with one store
            // every fourth line.
            PatternKind::GlobalAccess => match k % 4 {
                0 => "    f = f + in_buf[idx];\n".to_string(),
                1 => "    f = f + aux_a[idx];\n".to_string(),
                2 => "    f = f + aux_b[idx];\n".to_string(),
                _ => "    out_buf[idx] = f;\n".to_string(),
            },
            PatternKind::LocalAccess => match k % 2 {
                0 => "    tile[lid] = f;\n".to_string(),
                _ => "    f = f + tile[lid];\n".to_string(),
            },
        }
    }

    /// Emit the full kernel source at `intensity` repetitions.
    pub fn kernel_source(self, intensity: u32) -> String {
        let fn_name = self.name().replace('-', "_");
        let mut src = String::with_capacity(256 + 48 * intensity as usize);
        match self {
            PatternKind::GlobalAccess => {
                let _ = writeln!(
                    src,
                    "__kernel void {fn_name}_{intensity}(__global float* in_buf, __global float* aux_a, __global float* aux_b, __global float* out_buf, uint mask) {{"
                );
                src.push_str("    uint gid = get_global_id(0);\n");
                src.push_str("    uint idx = gid & mask;\n");
                src.push_str("    float f = in_buf[idx];\n");
            }
            PatternKind::LocalAccess => {
                let _ = writeln!(
                    src,
                    "__kernel void {fn_name}_{intensity}(__global float* in_buf, __global float* out_buf, uint mask) {{"
                );
                src.push_str("    __local float tile[256];\n");
                src.push_str("    uint gid = get_global_id(0);\n");
                src.push_str("    uint lid = get_local_id(0);\n");
                src.push_str("    float f = in_buf[gid & mask];\n");
                src.push_str("    tile[lid] = f;\n");
                src.push_str("    barrier(0);\n");
            }
            _ => {
                let _ = writeln!(
                    src,
                    "__kernel void {fn_name}_{intensity}(__global float* in_buf, __global float* out_buf, uint mask) {{"
                );
                src.push_str("    uint gid = get_global_id(0);\n");
                src.push_str("    float f = in_buf[gid & mask];\n");
            }
        }
        if self.is_integer_pattern() {
            src.push_str("    int v = (int)f + (int)gid;\n");
        }
        for k in 0..intensity {
            src.push_str(&self.body_line(k));
        }
        if self.is_integer_pattern() {
            src.push_str("    out_buf[gid] = (float)v;\n");
        } else {
            src.push_str("    out_buf[gid] = f;\n");
        }
        src.push_str("}\n");
        src
    }

    fn is_integer_pattern(self) -> bool {
        matches!(
            self,
            PatternKind::IntAdd
                | PatternKind::IntMul
                | PatternKind::IntDiv
                | PatternKind::IntBitwise
        )
    }
}

impl fmt::Display for PatternKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The nine intensities per pattern: 2⁰ … 2⁸ (§3.3).
pub const INTENSITIES: [u32; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_kernel::{analyze_kernel, parse, StaticFeatures};

    #[test]
    fn all_pattern_kernels_parse_and_analyze() {
        for p in PatternKind::ALL {
            for &i in &INTENSITIES {
                let src = p.kernel_source(i);
                let prog = parse(&src).unwrap_or_else(|e| panic!("{p} @ {i}: {e}\n{src}"));
                let a = analyze_kernel(prog.first_kernel().unwrap())
                    .unwrap_or_else(|e| panic!("{p} @ {i}: {e}"));
                assert!(a.counts.total() > 0.0);
            }
        }
    }

    #[test]
    fn high_intensity_kernels_are_dominated_by_their_class() {
        for p in PatternKind::ALL {
            let src = p.kernel_source(256);
            let prog = parse(&src).unwrap();
            let a = analyze_kernel(prog.first_kernel().unwrap()).unwrap();
            let f = StaticFeatures::from_analysis(&a);
            let target = f.get(p.feature_index());
            for (j, &v) in f.values().iter().enumerate() {
                if j != p.feature_index() {
                    assert!(
                        target >= v,
                        "{p}: feature {j} ({v}) exceeds target ({target})"
                    );
                }
            }
            assert!(target > 0.25, "{p}: target share only {target}");
        }
    }

    #[test]
    fn intensity_increases_target_share() {
        for p in PatternKind::ALL {
            let share = |i: u32| {
                let prog = parse(&p.kernel_source(i)).unwrap();
                let a = analyze_kernel(prog.first_kernel().unwrap()).unwrap();
                StaticFeatures::from_analysis(&a).get(p.feature_index())
            };
            assert!(
                share(256) > share(1),
                "{p}: target share must grow with intensity"
            );
        }
    }

    #[test]
    fn pattern_names_are_unique() {
        let mut names: Vec<&str> = PatternKind::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }
}
