//! Integration tests for the front-end: realistic kernel sources end to
//! end through lexer, parser and analysis, plus property tests on the
//! grammar.

use gpufreq_kernel::{analyze_kernel, analyze_kernel_with, parse, AnalysisConfig, InstrClass};
use proptest::prelude::*;

#[test]
fn multi_kernel_translation_unit() {
    let src = "
        __kernel void first(__global float* x) {
            uint i = get_global_id(0);
            x[i] = x[i] + 1.0f;
        }
        __kernel void second(__global int* y) {
            uint i = get_global_id(0);
            y[i] = y[i] * 2;
        }
    ";
    let program = parse(src).unwrap();
    assert_eq!(program.kernels.len(), 2);
    assert!(program.kernel("first").is_some());
    assert!(program.kernel("second").is_some());
    assert!(program.kernel("third").is_none());
}

#[test]
fn do_while_and_nested_control_flow() {
    let src = "
        __kernel void k(__global float* x, int n) {
            uint i = get_global_id(0);
            float acc = 0.0f;
            int j = 0;
            do {
                if (j > 2) {
                    acc += x[i];
                } else {
                    acc -= 0.5f;
                }
                j++;
            } while (j < 8);
            x[i] = acc;
        }
    ";
    let program = parse(src).unwrap();
    let analysis = analyze_kernel(program.first_kernel().unwrap()).unwrap();
    assert!(analysis.counts.get(InstrClass::Branch) > 0.0);
}

#[test]
fn error_messages_carry_line_numbers() {
    let src = "__kernel void k(__global float* x) {\n    x[0] = ;\n}";
    let err = parse(src).unwrap_err();
    assert_eq!(err.span.line, 2, "error should point at line 2: {err}");
}

#[test]
fn ternaries_casts_and_compound_assignments() {
    let src = "
        __kernel void k(__global float* x, __global int* flags) {
            uint i = get_global_id(0);
            float v = x[i];
            v *= 1.5f;
            v -= (float)flags[i];
            x[i] = (v > 0.0f) ? v : -v;
        }
    ";
    let program = parse(src).unwrap();
    let analysis = analyze_kernel(program.first_kernel().unwrap()).unwrap();
    assert!(analysis.counts.get(InstrClass::FloatMul) >= 1.0);
    assert!(analysis.counts.get(InstrClass::GlobalLoad) >= 2.0);
}

#[test]
fn analysis_respects_different_bindings() {
    let src = "
        __kernel void k(__global float* x, int rounds) {
            uint i = get_global_id(0);
            float v = x[i];
            for (int r = 0; r < rounds; r += 1) { v = v * 1.1f; }
            x[i] = v;
        }
    ";
    let program = parse(src).unwrap();
    let kernel = program.first_kernel().unwrap();
    for rounds in [1i64, 10, 100] {
        let cfg = AnalysisConfig::with_bindings([("rounds".to_string(), rounds)]);
        let a = analyze_kernel_with(kernel, &cfg).unwrap();
        assert_eq!(a.counts.get(InstrClass::FloatMul), rounds as f64);
    }
}

proptest! {
    /// Lexing arbitrary ASCII never panics and spans are well-formed.
    #[test]
    fn lexer_spans_are_ordered(src in "[ -~\\n]{0,400}") {
        if let Ok(tokens) = gpufreq_kernel::lex(&src) {
            for t in &tokens {
                prop_assert!(t.span.start <= t.span.end);
                prop_assert!(t.span.end <= src.len());
            }
        }
    }

    /// Integer arithmetic in loop bounds is resolved exactly for any
    /// small constant bound.
    #[test]
    fn trip_counts_exact_for_constant_bounds(n in 1i64..200) {
        let src = format!(
            "__kernel void k(__global float* x) {{
                float acc = 0.0f;
                for (int i = 0; i < {n}; i += 1) {{ acc = acc + 1.0f; }}
                x[0] = acc;
            }}"
        );
        let program = parse(&src).unwrap();
        let a = analyze_kernel(program.first_kernel().unwrap()).unwrap();
        prop_assert_eq!(a.counts.get(InstrClass::FloatAdd), n as f64);
    }
}
