//! No-panic fuzz over the OpenCL-C front end.
//!
//! The lexer, parser, and IR analyzer sit in front of every prediction
//! (including the serve daemon, where request bodies arrive from the
//! network), so malformed source must surface as [`LexError`] /
//! [`ParseError`] / [`AnalysisError`] values — never as a panic, slice
//! overrun, or non-UTF-8 split. Two generators drive the front end:
//!
//! 1. arbitrary byte soup (lossily decoded, so it includes replacement
//!    characters and embedded NULs), and
//! 2. point mutations of *valid* kernels — the inputs most likely to
//!    get deep into the grammar before going wrong.
//!
//! Successful parses are pushed on through [`analyze_kernel`] so the
//! loop-bound and addressing analyses get fuzzed too.

use gpufreq_kernel::{analyze_kernel, lex, parse};
use proptest::collection::vec;
use proptest::prelude::*;

/// A realistic valid kernel: local-memory staging, a bounded loop, a
/// data-dependent branch — enough grammar surface that single-token
/// damage lands in interesting places.
const VALID_NN: &str = r#"
__kernel void nn(__global float* qx, __global float* qy,
                 __global float* rx_g, __global float* ry_g,
                 __global int* out, int n) {
    __local float rx[128];
    __local float ry[128];
    uint gid = get_global_id(0);
    uint lid = get_local_id(0);
    rx[lid] = rx_g[lid];
    ry[lid] = ry_g[lid];
    barrier(0);
    float best = 1000000000.0f;
    int best_i = 0;
    for (int r = 0; r < n; r += 1) {
        float dx = rx[r] - qx[gid];
        float dy = ry[r] - qy[gid];
        float d = dx * dx + dy * dy;
        if (d < best) {
            best = d;
            best_i = r;
        }
    }
    out[gid] = best_i;
}
"#;

/// A second seed with different constructs: while loop, compound
/// assignment, integer ops, two kernels in one translation unit.
const VALID_PAIR: &str = r#"
__kernel void scale(__global float* data, float k, int n) {
    uint gid = get_global_id(0);
    int i = 0;
    while (i < n) {
        data[gid * n + i] = data[gid * n + i] * k;
        i += 1;
    }
}

__kernel void mask(__global int* v, int bits) {
    uint gid = get_global_id(0);
    v[gid] = (v[gid] >> 2) & bits;
}
"#;

/// Drive the whole front end; the property is simply "returns".
fn front_end_must_not_panic(src: &str) {
    // The lexer alone (parse re-lexes, but this pins the entry point).
    let _ = lex(src);
    if let Ok(program) = parse(src) {
        for kernel in &program.kernels {
            let _ = analyze_kernel(kernel);
        }
    }
}

/// Apply one point mutation to `src`, chosen by (`op`, `pos`, `byte`).
fn mutate(src: &str, op: u8, pos: usize, byte: u8) -> String {
    let mut bytes = src.as_bytes().to_vec();
    let at = pos % (bytes.len() + 1);
    match op % 4 {
        // Replace one byte.
        0 if at < bytes.len() => bytes[at] = byte,
        // Delete one byte.
        1 if !bytes.is_empty() => {
            bytes.remove(at % bytes.len());
        }
        // Insert one byte.
        2 => bytes.insert(at, byte),
        // Truncate.
        _ => bytes.truncate(at),
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics, and — lacking a `__kernel`
    /// token stream that typechecks — never yields kernels either.
    #[test]
    fn arbitrary_bytes_error_cleanly(bytes in vec(0u8..=255, 0..512usize)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        front_end_must_not_panic(&src);
        if !src.contains("__kernel") {
            prop_assert!(parse(&src).is_err());
        }
    }

    /// Printable-character strings (more likely to form real tokens)
    /// never panic the lexer or parser.
    #[test]
    fn printable_strings_error_cleanly(src in "[\\PC\\n\\t]{0,300}") {
        front_end_must_not_panic(&src);
        if !src.contains("__kernel") {
            prop_assert!(parse(&src).is_err());
        }
    }

    /// Point-mutated valid kernels never panic anywhere in the front
    /// end; whatever still parses must also analyze without panicking.
    #[test]
    fn mutated_valid_kernels_never_panic(
        ops in vec((0u8..=3, 0usize..4096, 0u8..=255), 1..8usize),
        seed in 0u8..=1,
    ) {
        let mut src = if seed == 0 { VALID_NN } else { VALID_PAIR }.to_string();
        for &(op, pos, byte) in &ops {
            src = mutate(&src, op, pos, byte);
        }
        front_end_must_not_panic(&src);
    }
}

/// The unmutated seeds really are valid — otherwise the mutation fuzz
/// would be exploring the error paths only.
#[test]
fn fuzz_seeds_parse_and_analyze() {
    for src in [VALID_NN, VALID_PAIR] {
        let program = parse(src).expect("seed kernel parses");
        for kernel in &program.kernels {
            analyze_kernel(kernel).expect("seed kernel analyzes");
        }
    }
}
