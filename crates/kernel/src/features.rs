//! The paper's feature representation (§3.2).
//!
//! A kernel is represented by ten static features — the fraction of
//! executed instructions in each class — and a kernel *execution*
//! (kernel + frequency setting) by those ten features plus the core and
//! memory frequency, each min-max-mapped to `[0, 1]` over the device's
//! tunable range.

use crate::ir::{InstrClass, KernelAnalysis};
use serde::{Deserialize, Serialize};

/// Number of static code features.
pub const NUM_STATIC_FEATURES: usize = 10;

/// Total feature-vector width: the ten static features, the scaled
/// `(f_core, f_mem)` pair, and the `k_i · f_core` / `k_i · f_mem`
/// interaction blocks.
///
/// **Reproduction note.** The paper describes the model input as
/// `w = (k, f)` and observes that "while keeping constant input code
/// and memory frequency, the speedup increases linearly with the core
/// frequency" (§3.4) — linear *per kernel*, with a slope that depends
/// on the kernel's instruction mix (steep for k-NN, flat for MT,
/// Fig. 1). A linear-kernel SVR over the plain 12-dimensional `(k, f)`
/// cannot express mix-dependent slopes (it is globally linear, one
/// shared slope for every kernel), so the interaction terms
/// `k_i · f_core` and `k_i · f_mem` are included explicitly, along with
/// one derived static feature — the memory-boundedness ratio (see
/// [`memory_boundedness`]) — and its two frequency interactions. The
/// model remains exactly "ε-SVR with a linear kernel", and remains
/// linear in `f_core` for any fixed kernel — the property the paper's
/// model selection is based on.
pub const NUM_FEATURES: usize = NUM_STATIC_FEATURES + 2 + 2 * NUM_STATIC_FEATURES + 3;

/// Architectural issue-cost prior (cycles per instruction class, in the
/// order of [`STATIC_FEATURE_NAMES`]) used by [`memory_boundedness`].
/// These are generic GPU-class constants — the same modular-design
/// knowledge the paper's feature set is built on (Guerreiro et al.) —
/// not calibrated against any measured device.
const CLASS_CYCLE_PRIOR: [f64; NUM_STATIC_FEATURES] =
    [1.0, 2.0, 12.0, 1.0, 1.0, 1.0, 8.0, 4.0, 2.0, 2.0];

/// Approximate bytes moved per memory-access instruction.
const BYTES_PER_ACCESS: f64 = 4.0;

/// Derived static feature: how memory-bound the instruction mix is,
/// as `r / (1 + r)` with `r = traffic / issue-cycles` — `0` for pure
/// compute, approaching `1` for pure streaming. This is the static
/// analogue of the roofline operational-intensity axis, and it is the
/// quantity that decides which clock domain limits a kernel; exposing
/// it directly (instead of forcing the regressor to reconstruct a
/// ratio of features) is what lets the per-domain linear speedup heads
/// fit both regimes.
pub fn memory_boundedness(features: &StaticFeatures) -> f64 {
    let cycles: f64 = features
        .values()
        .iter()
        .zip(CLASS_CYCLE_PRIOR)
        .map(|(k, c)| k * c)
        .sum();
    let traffic = features.get(8) * BYTES_PER_ACCESS;
    if cycles <= 0.0 {
        return if traffic > 0.0 { 1.0 } else { 0.0 };
    }
    let r = traffic / cycles;
    r / (1.0 + r)
}

/// Names of the static features, in vector order (paper notation).
pub const STATIC_FEATURE_NAMES: [&str; NUM_STATIC_FEATURES] = [
    "int_add",
    "int_mul",
    "int_div",
    "int_bw",
    "float_add",
    "float_mul",
    "float_div",
    "sf",
    "gl_access",
    "loc_access",
];

/// Frequency normalization interval for the core clock in MHz (§3.2).
pub const CORE_FREQ_RANGE_MHZ: (f64, f64) = (135.0, 1189.0);

/// Frequency normalization interval for the memory clock in MHz (§3.2).
pub const MEM_FREQ_RANGE_MHZ: (f64, f64) = (405.0, 3505.0);

/// The ten static code features of a kernel:
/// `(k_int_add, k_int_mul, k_int_div, k_int_bw, k_float_add, k_float_mul,
///   k_float_div, k_sf, k_gl_access, k_loc_access)`,
/// each normalized by the total number of executed instructions so that
/// codes with the same arithmetic intensity but different lengths map to
/// the same point (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StaticFeatures {
    values: [f64; NUM_STATIC_FEATURES],
}

impl StaticFeatures {
    /// Build the feature vector from an instruction-count analysis.
    ///
    /// The normalization denominator is the total executed instruction
    /// count including control flow and overhead; a kernel with no
    /// instructions yields the zero vector.
    pub fn from_analysis(analysis: &KernelAnalysis) -> StaticFeatures {
        let c = &analysis.counts;
        let total = c.total();
        if total == 0.0 {
            return StaticFeatures::default();
        }
        let values = [
            c.get(InstrClass::IntAdd) / total,
            c.get(InstrClass::IntMul) / total,
            c.get(InstrClass::IntDiv) / total,
            c.get(InstrClass::IntBitwise) / total,
            c.get(InstrClass::FloatAdd) / total,
            c.get(InstrClass::FloatMul) / total,
            c.get(InstrClass::FloatDiv) / total,
            c.get(InstrClass::SpecialFn) / total,
            c.global_accesses() / total,
            c.local_accesses() / total,
        ];
        StaticFeatures { values }
    }

    /// Construct directly from raw component values (used in tests and
    /// synthetic scenarios).
    pub fn from_values(values: [f64; NUM_STATIC_FEATURES]) -> StaticFeatures {
        StaticFeatures { values }
    }

    /// The raw component slice.
    pub fn values(&self) -> &[f64; NUM_STATIC_FEATURES] {
        &self.values
    }

    /// One component by index (see [`STATIC_FEATURE_NAMES`]).
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Sum of all components; ≤ 1 by construction (branch/overhead
    /// instructions inflate the denominator only).
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Euclidean distance to another feature vector.
    pub fn distance(&self, other: &StaticFeatures) -> f64 {
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

/// A frequency configuration `(f_core, f_mem)` in MHz.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreqConfig {
    /// Core (graphics) clock in MHz.
    pub core_mhz: u32,
    /// Memory clock in MHz.
    pub mem_mhz: u32,
}

impl FreqConfig {
    /// Construct a configuration.
    pub fn new(mem_mhz: u32, core_mhz: u32) -> FreqConfig {
        FreqConfig { core_mhz, mem_mhz }
    }

    /// Core frequency scaled to `[0, 1]` over [`CORE_FREQ_RANGE_MHZ`].
    pub fn core_scaled(&self) -> f64 {
        scale(self.core_mhz as f64, CORE_FREQ_RANGE_MHZ)
    }

    /// Memory frequency scaled to `[0, 1]` over [`MEM_FREQ_RANGE_MHZ`].
    pub fn mem_scaled(&self) -> f64 {
        scale(self.mem_mhz as f64, MEM_FREQ_RANGE_MHZ)
    }
}

impl std::fmt::Display for FreqConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(mem {} MHz, core {} MHz)", self.mem_mhz, self.core_mhz)
    }
}

fn scale(v: f64, (lo, hi): (f64, f64)) -> f64 {
    (v - lo) / (hi - lo)
}

/// A full feature vector `w = (k, f)`: ten static code features plus the
/// scaled frequency pair, interaction blocks and derived features. This
/// is the input row handed to the regression models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    values: Vec<f64>,
}

impl FeatureVector {
    /// Combine static kernel features with a frequency configuration
    /// (including the interaction blocks and the derived
    /// memory-boundedness feature — see [`NUM_FEATURES`]).
    pub fn new(features: &StaticFeatures, config: FreqConfig) -> FeatureVector {
        let mut values = vec![0.0; NUM_FEATURES];
        FeatureVector::write_raw(
            features,
            config.core_scaled(),
            config.mem_scaled(),
            memory_boundedness(features),
            (&mut values[..])
                .try_into()
                .expect("row is NUM_FEATURES wide"),
        );
        FeatureVector { values }
    }

    /// Write the raw feature row into a caller-owned buffer — the
    /// allocation-free core of [`FeatureVector::new`], bit-identical to
    /// it (same component expressions in the same order). The scaled
    /// frequencies and the memory-boundedness are taken as arguments so
    /// batched scorers can hoist `memory_boundedness` (a pure function
    /// of the static features) out of a per-configuration loop and
    /// reuse one stack buffer per candidate row.
    pub fn write_raw(
        features: &StaticFeatures,
        core: f64,
        mem: f64,
        boundedness: f64,
        out: &mut [f64; NUM_FEATURES],
    ) {
        out[..NUM_STATIC_FEATURES].copy_from_slice(features.values());
        out[NUM_STATIC_FEATURES] = core;
        out[NUM_STATIC_FEATURES + 1] = mem;
        for (i, &k) in features.values().iter().enumerate() {
            out[NUM_STATIC_FEATURES + 2 + i] = k * core;
            out[2 * NUM_STATIC_FEATURES + 2 + i] = k * mem;
        }
        let base = 2 + 3 * NUM_STATIC_FEATURES;
        out[base] = boundedness;
        out[base + 1] = boundedness * core;
        out[base + 2] = boundedness * mem;
    }

    /// The raw row, usable as an ML sample.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// The scaled core-frequency component.
    pub fn core_component(&self) -> f64 {
        self.values[NUM_STATIC_FEATURES]
    }

    /// The scaled memory-frequency component.
    pub fn mem_component(&self) -> f64 {
        self.values[NUM_STATIC_FEATURES + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::analyze_kernel;
    use crate::parser::parse;

    fn features(src: &str) -> StaticFeatures {
        let prog = parse(src).unwrap();
        let a = analyze_kernel(prog.first_kernel().unwrap()).unwrap();
        StaticFeatures::from_analysis(&a)
    }

    #[test]
    fn empty_analysis_is_zero_vector() {
        let f = StaticFeatures::from_analysis(&Default::default());
        assert_eq!(f.sum(), 0.0);
    }

    #[test]
    fn components_are_fractions() {
        let f = features(
            "__kernel void k(__global float* x) {
                uint i = get_global_id(0);
                x[i] = sin(x[i]) + x[i] * 2.0f;
            }",
        );
        assert!(f.sum() > 0.0 && f.sum() <= 1.0);
        for (i, v) in f.values().iter().enumerate() {
            assert!((0.0..=1.0).contains(v), "component {i} = {v}");
        }
    }

    #[test]
    fn intensity_invariance() {
        // Same mix, different lengths -> same features (the paper's
        // normalization motivation).
        let a = features(
            "__kernel void k(__global float* x) {
                float v = x[0];
                for (int i = 0; i < 8; i += 1) { v = v * 1.5f; v = v + 0.5f; }
                x[0] = v;
            }",
        );
        let b = features(
            "__kernel void k(__global float* x) {
                float v = x[0];
                for (int i = 0; i < 64; i += 1) { v = v * 1.5f; v = v + 0.5f; }
                x[0] = v;
            }",
        );
        // The loop-overhead share shrinks as the loop grows, so allow a
        // small tolerance on the arithmetic components.
        assert!(a.distance(&b) < 0.08, "distance {}", a.distance(&b));
    }

    #[test]
    fn frequency_scaling_maps_to_unit_interval() {
        let lo = FreqConfig::new(405, 135);
        let hi = FreqConfig::new(3505, 1189);
        assert_eq!(lo.core_scaled(), 0.0);
        assert_eq!(lo.mem_scaled(), 0.0);
        assert_eq!(hi.core_scaled(), 1.0);
        assert_eq!(hi.mem_scaled(), 1.0);
        let mid = FreqConfig::new(3505, 1001);
        assert!(mid.core_scaled() > 0.8 && mid.core_scaled() < 0.9);
    }

    #[test]
    fn feature_vector_layout() {
        let f = StaticFeatures::from_values([0.1; NUM_STATIC_FEATURES]);
        let w = FeatureVector::new(&f, FreqConfig::new(3505, 1189));
        assert_eq!(w.as_slice().len(), NUM_FEATURES);
        assert_eq!(w.core_component(), 1.0);
        assert_eq!(w.mem_component(), 1.0);
        assert_eq!(w.as_slice()[0], 0.1);
    }

    #[test]
    fn memory_bound_kernel_has_high_access_share() {
        let f = features(
            "__kernel void k(__global float* x, __global float* y) {
                uint i = get_global_id(0);
                y[i] = x[i];
            }",
        );
        // gl_access component (index 8) dominates the arithmetic ones.
        assert!(f.get(8) > f.get(4));
        assert!(f.get(8) > f.get(0) / 2.0);
    }
}
