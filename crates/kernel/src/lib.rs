//! `gpufreq-kernel` — OpenCL-C-like kernel front-end and static feature
//! extraction.
//!
//! This crate is the compiler substrate of the `gpufreq` reproduction of
//! *Predictable GPUs Frequency Scaling for Energy and Performance*
//! (Fan, Cosenza, Juurlink — ICPP 2019). It provides:
//!
//! * a [`lexer`] and recursive-descent [`parser`] for a pragmatic
//!   OpenCL-C subset (everything the paper's 106 synthetic training
//!   kernels and 12 test benchmarks need),
//! * a static analysis pass ([`ir`]) that lowers kernels to classed
//!   executed-instruction counts with static loop trip counts — the
//!   analogue of the paper's LLVM feature-extraction pass,
//! * the paper's feature representation ([`features`]): ten normalized
//!   instruction-mix components plus the scaled `(f_core, f_mem)` pair,
//! * execution [`profile`]s: the absolute per-work-item work handed to
//!   the GPU simulator as ground truth.
//!
//! # Example
//!
//! ```
//! use gpufreq_kernel::{parse, analyze_kernel, StaticFeatures};
//!
//! let program = parse(
//!     "__kernel void saxpy(__global float* x, __global float* y, float a) {
//!          uint i = get_global_id(0);
//!          y[i] = a * x[i] + y[i];
//!      }",
//! ).unwrap();
//! let analysis = analyze_kernel(program.first_kernel().unwrap()).unwrap();
//! let features = StaticFeatures::from_analysis(&analysis);
//! assert!(features.sum() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod builtins;
pub mod features;
pub mod ir;
pub mod lexer;
pub mod parser;
pub mod profile;

pub use ast::{KernelFn, Program};
pub use features::{
    memory_boundedness, FeatureVector, FreqConfig, StaticFeatures, CORE_FREQ_RANGE_MHZ,
    MEM_FREQ_RANGE_MHZ, NUM_FEATURES, NUM_STATIC_FEATURES, STATIC_FEATURE_NAMES,
};
pub use ir::{
    analyze_kernel, analyze_kernel_with, AnalysisConfig, AnalysisError, InstrClass,
    InstructionCounts, KernelAnalysis,
};
pub use lexer::{lex, LexError};
pub use parser::{parse, ParseError};
pub use profile::{KernelProfile, LaunchConfig};
