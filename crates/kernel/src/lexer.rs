//! Lexer for the OpenCL-C kernel subset.
//!
//! The token stream carries byte spans so the parser can produce
//! positioned diagnostics. Comments (`//`, `/* */`) and whitespace are
//! skipped; everything else must form a valid token or lexing fails with
//! a [`LexError`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Byte range of a token in the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Inclusive start byte offset.
    pub start: usize,
    /// Exclusive end byte offset.
    pub end: usize,
    /// 1-based line number of the token start.
    pub line: u32,
}

impl Span {
    /// A zero-width span, used for synthesized tokens.
    pub const DUMMY: Span = Span {
        start: 0,
        end: 0,
        line: 0,
    };
}

/// Keywords of the kernel language.
#[allow(missing_docs)] // variants are self-describing keyword names
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Kernel,
    Global,
    Local,
    Constant,
    Private,
    Const,
    Void,
    Int,
    Uint,
    Long,
    Ulong,
    Float,
    Bool,
    If,
    Else,
    For,
    While,
    Do,
    Return,
    Break,
    Continue,
    True,
    False,
}

impl Keyword {
    fn from_ident(s: &str) -> Option<Keyword> {
        Some(match s {
            "__kernel" | "kernel" => Keyword::Kernel,
            "__global" | "global" => Keyword::Global,
            "__local" | "local" => Keyword::Local,
            "__constant" | "constant" => Keyword::Constant,
            "__private" | "private" => Keyword::Private,
            "const" => Keyword::Const,
            "void" => Keyword::Void,
            "int" => Keyword::Int,
            "uint" | "unsigned" | "size_t" => Keyword::Uint,
            "long" => Keyword::Long,
            "ulong" => Keyword::Ulong,
            "float" => Keyword::Float,
            "bool" => Keyword::Bool,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "for" => Keyword::For,
            "while" => Keyword::While,
            "do" => Keyword::Do,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "true" => Keyword::True,
            "false" => Keyword::False,
            _ => return None,
        })
    }
}

/// Operators and punctuation.
#[allow(missing_docs)] // variants are self-describing operator names
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    AndAnd,
    OrOr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    PlusPlus,
    MinusMinus,
    Question,
    Colon,
    Comma,
    Semi,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (variable, function, builtin name).
    Ident(String),
    /// Integer literal (decimal or hex), value and unsigned-suffix flag.
    IntLit(i64, bool),
    /// Floating point literal.
    FloatLit(f64),
    /// Keyword.
    Kw(Keyword),
    /// Operator / punctuation.
    Op(Op),
    /// End of input (always the final token).
    Eof,
}

/// Token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

/// Error produced when the source contains an invalid character or
/// malformed literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Location of the offending text.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.span.line, self.message)
    }
}

impl std::error::Error for LexError {}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }
    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }
    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }
    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }
}

/// Tokenize `src` into a vector of tokens terminated by [`TokenKind::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::with_capacity(src.len() / 4 + 8);
    loop {
        skip_trivia(&mut cur)?;
        let start = cur.pos;
        let line = cur.line;
        let Some(c) = cur.peek() else {
            out.push(Token {
                kind: TokenKind::Eof,
                span: Span {
                    start,
                    end: start,
                    line,
                },
            });
            return Ok(out);
        };
        let kind = match c {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => lex_ident(&mut cur),
            b'0'..=b'9' => lex_number(&mut cur)?,
            b'.' if cur.peek2().is_some_and(|d| d.is_ascii_digit()) => lex_number(&mut cur)?,
            _ => lex_op(&mut cur)?,
        };
        out.push(Token {
            kind,
            span: Span {
                start,
                end: cur.pos,
                line,
            },
        });
    }
}

fn skip_trivia(cur: &mut Cursor<'_>) -> Result<(), LexError> {
    loop {
        match cur.peek() {
            Some(c) if c.is_ascii_whitespace() => {
                cur.bump();
            }
            Some(b'/') if cur.peek2() == Some(b'/') => {
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
            }
            Some(b'/') if cur.peek2() == Some(b'*') => {
                let start = cur.pos;
                let line = cur.line;
                cur.bump();
                cur.bump();
                loop {
                    match cur.peek() {
                        Some(b'*') if cur.peek2() == Some(b'/') => {
                            cur.bump();
                            cur.bump();
                            break;
                        }
                        Some(_) => {
                            cur.bump();
                        }
                        None => {
                            return Err(LexError {
                                message: "unterminated block comment".into(),
                                span: Span {
                                    start,
                                    end: cur.pos,
                                    line,
                                },
                            })
                        }
                    }
                }
            }
            Some(b'#') => {
                // Preprocessor directives (e.g. #define used for constants in
                // real OpenCL sources) are skipped to end of line; the subset
                // does not implement macro expansion.
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
            }
            _ => return Ok(()),
        }
    }
}

fn lex_ident(cur: &mut Cursor<'_>) -> TokenKind {
    let start = cur.pos;
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || c == b'_' {
            cur.bump();
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&cur.src[start..cur.pos]).expect("ascii ident");
    match Keyword::from_ident(text) {
        Some(kw) => TokenKind::Kw(kw),
        None => TokenKind::Ident(text.to_string()),
    }
}

fn lex_number(cur: &mut Cursor<'_>) -> Result<TokenKind, LexError> {
    let start = cur.pos;
    let line = cur.line;
    // Hex literal.
    if cur.peek() == Some(b'0') && matches!(cur.peek2(), Some(b'x') | Some(b'X')) {
        cur.bump();
        cur.bump();
        let hs = cur.pos;
        while cur.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
            cur.bump();
        }
        if cur.pos == hs {
            return Err(LexError {
                message: "hex literal with no digits".into(),
                span: Span {
                    start,
                    end: cur.pos,
                    line,
                },
            });
        }
        let text = std::str::from_utf8(&cur.src[hs..cur.pos]).unwrap();
        let v = i64::from_str_radix(text, 16).map_err(|e| LexError {
            message: format!("invalid hex literal: {e}"),
            span: Span {
                start,
                end: cur.pos,
                line,
            },
        })?;
        let unsigned = cur.eat(b'u') || cur.eat(b'U');
        let _ = cur.eat(b'l') || cur.eat(b'L');
        return Ok(TokenKind::IntLit(v, unsigned));
    }
    let mut is_float = false;
    while cur.peek().is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
    }
    if cur.peek() == Some(b'.') {
        is_float = true;
        cur.bump();
        while cur.peek().is_some_and(|c| c.is_ascii_digit()) {
            cur.bump();
        }
    }
    if matches!(cur.peek(), Some(b'e') | Some(b'E')) {
        let save = cur.pos;
        cur.bump();
        let _ = cur.eat(b'+') || cur.eat(b'-');
        if cur.peek().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            while cur.peek().is_some_and(|c| c.is_ascii_digit()) {
                cur.bump();
            }
        } else {
            cur.pos = save; // not an exponent, e.g. `1e` followed by ident
        }
    }
    let text = std::str::from_utf8(&cur.src[start..cur.pos]).unwrap();
    if is_float {
        let _ = cur.eat(b'f') || cur.eat(b'F');
        let v: f64 = text.parse().map_err(|e| LexError {
            message: format!("invalid float literal: {e}"),
            span: Span {
                start,
                end: cur.pos,
                line,
            },
        })?;
        Ok(TokenKind::FloatLit(v))
    } else if cur.eat(b'f') || cur.eat(b'F') {
        // `1f` style literal.
        let v: f64 = text.parse().map_err(|e| LexError {
            message: format!("invalid float literal: {e}"),
            span: Span {
                start,
                end: cur.pos,
                line,
            },
        })?;
        Ok(TokenKind::FloatLit(v))
    } else {
        let unsigned = cur.eat(b'u') || cur.eat(b'U');
        let _ = cur.eat(b'l') || cur.eat(b'L');
        let v: i64 = text.parse().map_err(|e| LexError {
            message: format!("invalid int literal: {e}"),
            span: Span {
                start,
                end: cur.pos,
                line,
            },
        })?;
        Ok(TokenKind::IntLit(v, unsigned))
    }
}

fn lex_op(cur: &mut Cursor<'_>) -> Result<TokenKind, LexError> {
    let start = cur.pos;
    let line = cur.line;
    let c = cur.bump().expect("caller checked non-empty");
    let op = match c {
        b'+' => {
            if cur.eat(b'+') {
                Op::PlusPlus
            } else if cur.eat(b'=') {
                Op::PlusAssign
            } else {
                Op::Plus
            }
        }
        b'-' => {
            if cur.eat(b'-') {
                Op::MinusMinus
            } else if cur.eat(b'=') {
                Op::MinusAssign
            } else {
                Op::Minus
            }
        }
        b'*' => {
            if cur.eat(b'=') {
                Op::StarAssign
            } else {
                Op::Star
            }
        }
        b'/' => {
            if cur.eat(b'=') {
                Op::SlashAssign
            } else {
                Op::Slash
            }
        }
        b'%' => {
            if cur.eat(b'=') {
                Op::PercentAssign
            } else {
                Op::Percent
            }
        }
        b'&' => {
            if cur.eat(b'&') {
                Op::AndAnd
            } else if cur.eat(b'=') {
                Op::AmpAssign
            } else {
                Op::Amp
            }
        }
        b'|' => {
            if cur.eat(b'|') {
                Op::OrOr
            } else if cur.eat(b'=') {
                Op::PipeAssign
            } else {
                Op::Pipe
            }
        }
        b'^' => {
            if cur.eat(b'=') {
                Op::CaretAssign
            } else {
                Op::Caret
            }
        }
        b'~' => Op::Tilde,
        b'!' => {
            if cur.eat(b'=') {
                Op::Ne
            } else {
                Op::Bang
            }
        }
        b'<' => {
            if cur.eat(b'<') {
                if cur.eat(b'=') {
                    Op::ShlAssign
                } else {
                    Op::Shl
                }
            } else if cur.eat(b'=') {
                Op::Le
            } else {
                Op::Lt
            }
        }
        b'>' => {
            if cur.eat(b'>') {
                if cur.eat(b'=') {
                    Op::ShrAssign
                } else {
                    Op::Shr
                }
            } else if cur.eat(b'=') {
                Op::Ge
            } else {
                Op::Gt
            }
        }
        b'=' => {
            if cur.eat(b'=') {
                Op::EqEq
            } else {
                Op::Assign
            }
        }
        b'?' => Op::Question,
        b':' => Op::Colon,
        b',' => Op::Comma,
        b';' => Op::Semi,
        b'(' => Op::LParen,
        b')' => Op::RParen,
        b'{' => Op::LBrace,
        b'}' => Op::RBrace,
        b'[' => Op::LBracket,
        b']' => Op::RBracket,
        other => {
            return Err(LexError {
                message: format!("unexpected character {:?}", other as char),
                span: Span {
                    start,
                    end: cur.pos,
                    line,
                },
            })
        }
    };
    Ok(TokenKind::Op(op))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_empty() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
    }

    #[test]
    fn lex_idents_and_keywords() {
        let k = kinds("__kernel void foo bar_1");
        assert_eq!(
            k,
            vec![
                TokenKind::Kw(Keyword::Kernel),
                TokenKind::Kw(Keyword::Void),
                TokenKind::Ident("foo".into()),
                TokenKind::Ident("bar_1".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_alt_qualifier_spelling() {
        assert_eq!(kinds("global")[0], TokenKind::Kw(Keyword::Global));
        assert_eq!(kinds("__global")[0], TokenKind::Kw(Keyword::Global));
    }

    #[test]
    fn lex_int_literals() {
        assert_eq!(kinds("42")[0], TokenKind::IntLit(42, false));
        assert_eq!(kinds("0x1F")[0], TokenKind::IntLit(31, false));
        assert_eq!(kinds("7u")[0], TokenKind::IntLit(7, true));
        assert_eq!(kinds("7U")[0], TokenKind::IntLit(7, true));
    }

    #[test]
    fn lex_float_literals() {
        assert_eq!(kinds("1.5")[0], TokenKind::FloatLit(1.5));
        assert_eq!(kinds("1.5f")[0], TokenKind::FloatLit(1.5));
        assert_eq!(kinds("2.0e3")[0], TokenKind::FloatLit(2000.0));
        assert_eq!(kinds(".25")[0], TokenKind::FloatLit(0.25));
        assert_eq!(kinds("1e-2")[0], TokenKind::FloatLit(0.01));
    }

    #[test]
    fn lex_operators() {
        let k = kinds("+ += ++ << <<= <= < == = !=");
        assert_eq!(
            k,
            vec![
                TokenKind::Op(Op::Plus),
                TokenKind::Op(Op::PlusAssign),
                TokenKind::Op(Op::PlusPlus),
                TokenKind::Op(Op::Shl),
                TokenKind::Op(Op::ShlAssign),
                TokenKind::Op(Op::Le),
                TokenKind::Op(Op::Lt),
                TokenKind::Op(Op::EqEq),
                TokenKind::Op(Op::Assign),
                TokenKind::Op(Op::Ne),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_comments_and_preprocessor() {
        let k = kinds("a // line\n /* block\nmore */ b\n#define N 4\nc");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_unterminated_comment_errors() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn lex_bad_char_errors() {
        let err = lex("int a = $;").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("a\nb\n  c").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[2].span.line, 3);
    }

    #[test]
    fn lex_hex_no_digits_errors() {
        assert!(lex("0x").is_err());
    }
}
