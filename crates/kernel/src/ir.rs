//! Lowering of parsed kernels to classed instruction counts.
//!
//! This is the analogue of the paper's LLVM feature-extraction pass
//! (§3.2): it walks the AST, infers expression types, statically
//! resolves loop trip counts, and produces the number of executed
//! instructions per work-item in each [`InstrClass`]. The counts feed
//! both the static feature vector (normalized mix, what the predictor
//! sees) and the execution profile (absolute work, what the simulator
//! uses as ground truth).
//!
//! Counts are `f64` because `if`/`else` branches without static
//! direction are counted in expectation (each side weighted 1/2),
//! mirroring how a static pass must treat data-dependent control flow.

use crate::ast::*;
use crate::builtins::{builtin_return_type, classify_builtin, BuiltinClass};
use crate::lexer::Span;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Instruction classes tracked by the analysis.
///
/// The first ten are the paper's static feature classes; `Branch` and
/// `Other` capture control flow and overhead (work-item queries,
/// synchronization, opaque calls) so the totals stay meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    /// Integer add / sub / compare.
    IntAdd,
    /// Integer multiply.
    IntMul,
    /// Integer divide / remainder.
    IntDiv,
    /// Integer bitwise / shift / logical.
    IntBitwise,
    /// Float add / sub / compare / cheap float ALU.
    FloatAdd,
    /// Float multiply.
    FloatMul,
    /// Float divide.
    FloatDiv,
    /// Special-function-unit ops (trigonometric, exp, sqrt, ...).
    SpecialFn,
    /// Load from `__global` (or `__constant`) memory.
    GlobalLoad,
    /// Store to `__global` memory.
    GlobalStore,
    /// Load from `__local` memory.
    LocalLoad,
    /// Store to `__local` memory.
    LocalStore,
    /// Control-flow instruction.
    Branch,
    /// Anything else (work-item queries, sync, casts, opaque calls).
    Other,
}

impl InstrClass {
    /// All classes, in a fixed order used for array indexing.
    pub const ALL: [InstrClass; 14] = [
        InstrClass::IntAdd,
        InstrClass::IntMul,
        InstrClass::IntDiv,
        InstrClass::IntBitwise,
        InstrClass::FloatAdd,
        InstrClass::FloatMul,
        InstrClass::FloatDiv,
        InstrClass::SpecialFn,
        InstrClass::GlobalLoad,
        InstrClass::GlobalStore,
        InstrClass::LocalLoad,
        InstrClass::LocalStore,
        InstrClass::Branch,
        InstrClass::Other,
    ];

    fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("class listed in ALL")
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstrClass::IntAdd => "int_add",
            InstrClass::IntMul => "int_mul",
            InstrClass::IntDiv => "int_div",
            InstrClass::IntBitwise => "int_bw",
            InstrClass::FloatAdd => "float_add",
            InstrClass::FloatMul => "float_mul",
            InstrClass::FloatDiv => "float_div",
            InstrClass::SpecialFn => "sf",
            InstrClass::GlobalLoad => "gl_load",
            InstrClass::GlobalStore => "gl_store",
            InstrClass::LocalLoad => "loc_load",
            InstrClass::LocalStore => "loc_store",
            InstrClass::Branch => "branch",
            InstrClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// Per-class executed-instruction counts for one work-item.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InstructionCounts {
    counts: [f64; 14],
}

impl InstructionCounts {
    /// Empty counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count for one class.
    pub fn get(&self, class: InstrClass) -> f64 {
        self.counts[class.index()]
    }

    /// Add `n` instructions of `class`.
    pub fn add(&mut self, class: InstrClass, n: f64) {
        self.counts[class.index()] += n;
    }

    /// Merge `other` into `self`, scaled by `weight` (used for loop
    /// bodies and expected-value branch counting).
    pub fn merge_scaled(&mut self, other: &InstructionCounts, weight: f64) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i] * weight;
        }
    }

    /// Total instructions across every class.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Total arithmetic + memory instructions (the ten feature classes).
    pub fn feature_total(&self) -> f64 {
        self.total() - self.get(InstrClass::Branch) - self.get(InstrClass::Other)
    }

    /// Global memory accesses (loads + stores), the paper's `k_gl_access`.
    pub fn global_accesses(&self) -> f64 {
        self.get(InstrClass::GlobalLoad) + self.get(InstrClass::GlobalStore)
    }

    /// Local memory accesses (loads + stores), the paper's `k_loc_access`.
    pub fn local_accesses(&self) -> f64 {
        self.get(InstrClass::LocalLoad) + self.get(InstrClass::LocalStore)
    }

    /// Iterate `(class, count)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (InstrClass, f64)> + '_ {
        InstrClass::ALL.iter().map(move |&c| (c, self.get(c)))
    }
}

/// Result of analyzing one kernel: instruction mix plus memory traffic,
/// all per work-item.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelAnalysis {
    /// Executed instructions per work-item by class.
    pub counts: InstructionCounts,
    /// Bytes read from global/constant memory per work-item.
    pub global_read_bytes: f64,
    /// Bytes written to global memory per work-item.
    pub global_write_bytes: f64,
    /// Bytes moved through local memory per work-item.
    pub local_bytes: f64,
}

impl KernelAnalysis {
    /// Total global memory traffic per work-item in bytes.
    pub fn global_bytes(&self) -> f64 {
        self.global_read_bytes + self.global_write_bytes
    }

    fn merge_scaled(&mut self, other: &KernelAnalysis, weight: f64) {
        self.counts.merge_scaled(&other.counts, weight);
        self.global_read_bytes += other.global_read_bytes * weight;
        self.global_write_bytes += other.global_write_bytes * weight;
        self.local_bytes += other.local_bytes * weight;
    }
}

/// Analysis error: the kernel uses a construct the static pass cannot
/// bound (e.g. a `while` loop whose trip count is not resolvable).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisError {
    /// Human-readable description.
    pub message: String,
    /// Location of the offending construct.
    pub span: Span,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "analysis error at line {}: {}",
            self.span.line, self.message
        )
    }
}

impl std::error::Error for AnalysisError {}

/// Configuration of the static pass.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Trip count assumed for loops whose bounds cannot be resolved
    /// statically (data-dependent `while`, unresolved parameters).
    pub assumed_trip_count: f64,
    /// Compile-time values for kernel parameters (e.g. problem sizes),
    /// letting parameter-bounded loops resolve exactly. This mirrors
    /// running the LLVM pass after constant specialization.
    pub param_bindings: HashMap<String, i64>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            assumed_trip_count: 16.0,
            param_bindings: HashMap::new(),
        }
    }
}

impl AnalysisConfig {
    /// Config with explicit parameter bindings.
    pub fn with_bindings<I: IntoIterator<Item = (String, i64)>>(bindings: I) -> Self {
        AnalysisConfig {
            param_bindings: bindings.into_iter().collect(),
            ..AnalysisConfig::default()
        }
    }
}

/// Analyze `kernel` with the default configuration.
pub fn analyze_kernel(kernel: &KernelFn) -> Result<KernelAnalysis, AnalysisError> {
    analyze_kernel_with(kernel, &AnalysisConfig::default())
}

/// Analyze `kernel` under `config`.
pub fn analyze_kernel_with(
    kernel: &KernelFn,
    config: &AnalysisConfig,
) -> Result<KernelAnalysis, AnalysisError> {
    let mut env = Env::new(config);
    for p in &kernel.params {
        env.declare(&p.name, p.ty);
        if !p.ty.pointer {
            if let Some(&v) = config.param_bindings.get(&p.name) {
                env.set_const(&p.name, v);
            }
        }
    }
    let mut analysis = KernelAnalysis::default();
    analyze_block(&kernel.body, &mut env, &mut analysis)?;
    Ok(analysis)
}

// ---- environment ------------------------------------------------------

/// Lexical environment for the analyzer, stored as flat binding stacks
/// that borrow their names from the AST.
///
/// The previous representation (`Vec<HashMap<String, _>>`, one map per
/// scope) allocated a map plus an owned `String` per binding on every
/// block entry — profiling showed the analysis front end dominated by
/// those allocations. Kernels bind a handful of names per scope, so a
/// reverse linear scan over a flat `Vec<(&str, _)>` beats hashing while
/// allocating nothing per scope (the two `Vec`s amortize across the
/// whole walk).
///
/// Semantics are kept exactly map-per-scope:
/// * a lookup scans innermost-first and within a scope the latest
///   binding decides (each scope holds at most one entry per name —
///   `set_const` updates in place);
/// * `clear_const` removes the name from the *innermost* scope that
///   binds it by tombstoning the entry **in place** (`None`), so a
///   lookup falls through to outer scopes — and so clearing an
///   outer-scope binding from inside a nested scope survives the
///   nested scope's pop, exactly like removing from the outer map;
/// * scope exit truncates to the entry mark, like dropping the map.
struct Env<'a> {
    config: &'a AnalysisConfig,
    /// Declared variables, innermost bindings last.
    vars: Vec<(&'a str, Type)>,
    /// Scope entry marks into `vars`.
    var_marks: Vec<usize>,
    /// Known integer constants; `None` is an in-place removal.
    consts: Vec<(&'a str, Option<i64>)>,
    /// Scope entry marks into `consts`.
    const_marks: Vec<usize>,
}

impl<'a> Env<'a> {
    fn new(config: &'a AnalysisConfig) -> Self {
        Env {
            config,
            vars: Vec::new(),
            var_marks: Vec::new(),
            consts: Vec::new(),
            const_marks: Vec::new(),
        }
    }

    fn push(&mut self) {
        self.var_marks.push(self.vars.len());
        self.const_marks.push(self.consts.len());
    }

    fn pop(&mut self) {
        let var_mark = self.var_marks.pop().expect("pop matches a push");
        let const_mark = self.const_marks.pop().expect("pop matches a push");
        self.vars.truncate(var_mark);
        self.consts.truncate(const_mark);
    }

    fn declare(&mut self, name: &'a str, ty: Type) {
        self.vars.push((name, ty));
    }

    fn lookup(&self, name: &str) -> Option<Type> {
        self.vars
            .iter()
            .rev()
            .find_map(|&(n, ty)| (n == name).then_some(ty))
    }

    fn set_const(&mut self, name: &'a str, value: i64) {
        let scope_start = self.const_marks.last().copied().unwrap_or(0);
        match self.consts[scope_start..]
            .iter_mut()
            .find(|(n, _)| *n == name)
        {
            Some(entry) => entry.1 = Some(value),
            None => self.consts.push((name, Some(value))),
        }
    }

    fn clear_const(&mut self, name: &str) {
        // Innermost live binding only; a tombstone means the name is
        // already absent from that scope, so keep scanning outward.
        if let Some(entry) = self
            .consts
            .iter_mut()
            .rev()
            .find(|(n, v)| *n == name && v.is_some())
        {
            entry.1 = None;
        }
    }

    fn lookup_const(&self, name: &str) -> Option<i64> {
        self.consts
            .iter()
            .rev()
            .filter(|(n, _)| *n == name)
            .find_map(|&(_, v)| v)
    }
}

// ---- constant evaluation (for loop bounds) ----------------------------

fn const_eval(expr: &Expr, env: &Env<'_>) -> Option<i64> {
    match expr {
        Expr::IntLit(v) => Some(*v),
        Expr::BoolLit(b) => Some(*b as i64),
        Expr::Var(name) => env.lookup_const(name),
        Expr::Unary {
            op: UnOp::Neg,
            expr,
        } => const_eval(expr, env).map(|v| -v),
        Expr::Unary {
            op: UnOp::BitNot,
            expr,
        } => const_eval(expr, env).map(|v| !v),
        Expr::Unary {
            op: UnOp::Not,
            expr,
        } => const_eval(expr, env).map(|v| (v == 0) as i64),
        Expr::Cast { expr, .. } => const_eval(expr, env),
        Expr::Binary { op, lhs, rhs } => {
            let l = const_eval(lhs, env)?;
            let r = const_eval(rhs, env)?;
            Some(match op {
                BinOp::Add => l.wrapping_add(r),
                BinOp::Sub => l.wrapping_sub(r),
                BinOp::Mul => l.wrapping_mul(r),
                BinOp::Div => l.checked_div(r)?,
                BinOp::Rem => l.checked_rem(r)?,
                BinOp::Shl => l.checked_shl(u32::try_from(r).ok()?)?,
                BinOp::Shr => l.checked_shr(u32::try_from(r).ok()?)?,
                BinOp::BitAnd => l & r,
                BinOp::BitOr => l | r,
                BinOp::BitXor => l ^ r,
                BinOp::LogAnd => ((l != 0) && (r != 0)) as i64,
                BinOp::LogOr => ((l != 0) || (r != 0)) as i64,
                BinOp::Lt => (l < r) as i64,
                BinOp::Gt => (l > r) as i64,
                BinOp::Le => (l <= r) as i64,
                BinOp::Ge => (l >= r) as i64,
                BinOp::Eq => (l == r) as i64,
                BinOp::Ne => (l != r) as i64,
            })
        }
        _ => None,
    }
}

// ---- trip-count resolution ---------------------------------------------

/// Recognize the canonical counted loop
/// `for (T i = START; i CMP END; i += STEP)` (or `i++`, `i--`, `i -= ..`)
/// and return its trip count when all three values are constant.
fn for_trip_count(
    init: Option<&Stmt>,
    cond: Option<&Expr>,
    step: Option<&Stmt>,
    env: &Env<'_>,
) -> Option<f64> {
    let (var, start) = match init? {
        Stmt::Decl {
            name,
            init: Some(e),
            ..
        } => (name.as_str(), const_eval(e, env)?),
        Stmt::Assign {
            target: LValue::Var(name),
            op: None,
            value,
            ..
        } => (name.as_str(), const_eval(value, env)?),
        _ => return None,
    };
    let (cmp, end) = match cond? {
        Expr::Binary { op, lhs, rhs } => match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Var(v), bound) if *v == var => (*op, const_eval(bound, env)?),
            (bound, Expr::Var(v)) if *v == var => (flip_cmp(*op)?, const_eval(bound, env)?),
            _ => return None,
        },
        _ => return None,
    };
    let delta = match step? {
        Stmt::Assign {
            target: LValue::Var(v),
            op: Some(BinOp::Add),
            value,
            ..
        } if *v == var => const_eval(value, env)?,
        Stmt::Assign {
            target: LValue::Var(v),
            op: Some(BinOp::Sub),
            value,
            ..
        } if *v == var => -const_eval(value, env)?,
        Stmt::Assign {
            target: LValue::Var(v),
            op: Some(BinOp::Mul),
            value,
            ..
        } if *v == var => {
            // Geometric loops (`i *= 2`): count iterations explicitly.
            let factor = const_eval(value, env)?;
            return geometric_trips(start, end, cmp, factor);
        }
        Stmt::Assign {
            target: LValue::Var(v),
            op: Some(BinOp::Shl),
            value,
            ..
        } if *v == var => {
            let sh = const_eval(value, env)?;
            return geometric_trips(start, end, cmp, 1i64.checked_shl(u32::try_from(sh).ok()?)?);
        }
        _ => return None,
    };
    if delta == 0 {
        return None;
    }
    let trips = match cmp {
        BinOp::Lt if delta > 0 => ceil_div(end - start, delta),
        BinOp::Le if delta > 0 => ceil_div(end - start + 1, delta),
        BinOp::Gt if delta < 0 => ceil_div(start - end, -delta),
        BinOp::Ge if delta < 0 => ceil_div(start - end + 1, -delta),
        BinOp::Ne => {
            let span = end - start;
            if span % delta == 0 && span / delta >= 0 {
                span / delta
            } else {
                return None;
            }
        }
        _ => return None,
    };
    Some(trips.max(0) as f64)
}

fn geometric_trips(start: i64, end: i64, cmp: BinOp, factor: i64) -> Option<f64> {
    if factor <= 1 || start <= 0 {
        return None;
    }
    let mut v = start;
    let mut n = 0u32;
    while n < 64 {
        let cont = match cmp {
            BinOp::Lt => v < end,
            BinOp::Le => v <= end,
            _ => return None,
        };
        if !cont {
            break;
        }
        v = v.checked_mul(factor)?;
        n += 1;
    }
    Some(n as f64)
}

fn ceil_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    if a <= 0 {
        0
    } else {
        (a + b - 1) / b
    }
}

fn flip_cmp(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Gt => BinOp::Lt,
        BinOp::Le => BinOp::Ge,
        BinOp::Ge => BinOp::Le,
        BinOp::Ne => BinOp::Ne,
        BinOp::Eq => BinOp::Eq,
        _ => return None,
    })
}

// ---- statement analysis -------------------------------------------------

fn analyze_block<'a>(
    stmts: &'a [Stmt],
    env: &mut Env<'a>,
    out: &mut KernelAnalysis,
) -> Result<(), AnalysisError> {
    for stmt in stmts {
        analyze_stmt(stmt, env, out)?;
    }
    Ok(())
}

fn analyze_stmt<'a>(
    stmt: &'a Stmt,
    env: &mut Env<'a>,
    out: &mut KernelAnalysis,
) -> Result<(), AnalysisError> {
    match stmt {
        Stmt::Decl { ty, name, init, .. } => {
            if let Some(e) = init {
                analyze_expr(e, env, out)?;
                if ty.scalar.is_integer() && !ty.pointer {
                    match const_eval(e, env) {
                        Some(v) => env.set_const(name, v),
                        None => env.clear_const(name),
                    }
                }
            }
            env.declare(name, *ty);
            Ok(())
        }
        Stmt::Assign {
            target, op, value, ..
        } => {
            let value_ty = analyze_expr(value, env, out)?;
            match target {
                LValue::Var(name) => {
                    let var_ty = env.lookup(name).unwrap_or(Type::scalar(value_ty)).scalar;
                    if let Some(binop) = op {
                        count_binop(*binop, var_ty, &mut out.counts);
                    }
                    // Track constants for trip-count resolution; any
                    // non-constant assignment invalidates the binding.
                    if op.is_none() {
                        match const_eval(value, env) {
                            Some(v) => env.set_const(name, v),
                            None => env.clear_const(name),
                        }
                    } else {
                        env.clear_const(name);
                    }
                }
                LValue::Index { base, index } => {
                    analyze_expr(index, env, out)?;
                    // Address computation lowers to a GEP folded into the
                    // access path, not a datapath ALU op.
                    out.counts.add(InstrClass::Other, 1.0);
                    let base_ty = analyze_base(base, env, out)?;
                    if let Some(binop) = op {
                        // Compound store reads the old value first.
                        record_access(base_ty, false, out);
                        count_binop(*binop, base_ty.scalar, &mut out.counts);
                    }
                    record_access(base_ty, true, out);
                }
            }
            Ok(())
        }
        Stmt::Expr(e, _) => {
            analyze_expr(e, env, out)?;
            Ok(())
        }
        Stmt::If {
            cond, then, other, ..
        } => {
            analyze_expr(cond, env, out)?;
            out.counts.add(InstrClass::Branch, 1.0);
            let mut then_a = KernelAnalysis::default();
            env.push();
            analyze_block(then, env, &mut then_a)?;
            env.pop();
            let mut else_a = KernelAnalysis::default();
            env.push();
            analyze_block(other, env, &mut else_a)?;
            env.pop();
            // Static direction unknown: expected-value weighting.
            out.merge_scaled(&then_a, 0.5);
            out.merge_scaled(&else_a, 0.5);
            Ok(())
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            env.push();
            if let Some(i) = init {
                analyze_stmt(i, env, out)?;
            }
            let trips = for_trip_count(init.as_deref(), cond.as_ref(), step.as_deref(), env)
                .unwrap_or(env.config.assumed_trip_count);
            // The induction variable is not constant inside the body.
            if let Some(Stmt::Decl { name, .. })
            | Some(Stmt::Assign {
                target: LValue::Var(name),
                ..
            }) = init.as_deref()
            {
                env.clear_const(name);
            }
            let mut iter_a = KernelAnalysis::default();
            if let Some(c) = cond {
                analyze_expr(c, env, &mut iter_a)?;
            }
            iter_a.counts.add(InstrClass::Branch, 1.0);
            let mut body_a = KernelAnalysis::default();
            env.push();
            analyze_block(body, env, &mut body_a)?;
            if let Some(s) = step {
                analyze_stmt(s, env, &mut body_a)?;
            }
            env.pop();
            // cond+branch run trips+1 times, body+step run trips times.
            out.merge_scaled(&iter_a, trips + 1.0);
            out.merge_scaled(&body_a, trips);
            env.pop();
            Ok(())
        }
        Stmt::While { cond, body, .. } => {
            let trips = env.config.assumed_trip_count;
            let mut iter_a = KernelAnalysis::default();
            analyze_expr(cond, env, &mut iter_a)?;
            iter_a.counts.add(InstrClass::Branch, 1.0);
            let mut body_a = KernelAnalysis::default();
            env.push();
            analyze_block(body, env, &mut body_a)?;
            env.pop();
            out.merge_scaled(&iter_a, trips + 1.0);
            out.merge_scaled(&body_a, trips);
            Ok(())
        }
        Stmt::Return(e, _) => {
            if let Some(e) = e {
                analyze_expr(e, env, out)?;
            }
            out.counts.add(InstrClass::Branch, 1.0);
            Ok(())
        }
        Stmt::Break(_) | Stmt::Continue(_) => {
            out.counts.add(InstrClass::Branch, 1.0);
            Ok(())
        }
        Stmt::Block(stmts, _) => {
            env.push();
            let r = analyze_block(stmts, env, out);
            env.pop();
            r
        }
    }
}

// ---- expression analysis -------------------------------------------------

/// Walk an expression, accumulate its instruction counts, and return its
/// inferred scalar type.
fn analyze_expr(
    expr: &Expr,
    env: &Env<'_>,
    out: &mut KernelAnalysis,
) -> Result<Scalar, AnalysisError> {
    match expr {
        Expr::IntLit(_) => Ok(Scalar::Int),
        Expr::FloatLit(_) => Ok(Scalar::Float),
        Expr::BoolLit(_) => Ok(Scalar::Bool),
        Expr::Var(name) => Ok(env.lookup(name).map_or(Scalar::Int, |t| t.scalar)),
        Expr::Binary { op, lhs, rhs } => {
            let lt = analyze_expr(lhs, env, out)?;
            let rt = analyze_expr(rhs, env, out)?;
            let operand = promote(lt, rt);
            count_binop(*op, operand, &mut out.counts);
            if op.is_comparison() || op.is_logical() {
                Ok(Scalar::Bool)
            } else {
                Ok(operand)
            }
        }
        Expr::Unary { op, expr } => {
            let t = analyze_expr(expr, env, out)?;
            match op {
                UnOp::Neg => {
                    if t.is_float() {
                        out.counts.add(InstrClass::FloatAdd, 1.0);
                    } else {
                        out.counts.add(InstrClass::IntAdd, 1.0);
                    }
                }
                UnOp::Not | UnOp::BitNot => out.counts.add(InstrClass::IntBitwise, 1.0),
            }
            Ok(if *op == UnOp::Not { Scalar::Bool } else { t })
        }
        Expr::Index { base, index } => {
            analyze_expr(index, env, out)?;
            out.counts.add(InstrClass::Other, 1.0); // GEP/addressing, not ALU
            let base_ty = analyze_base(base, env, out)?;
            record_access(base_ty, false, out);
            Ok(base_ty.scalar)
        }
        Expr::Call { name, args } => analyze_call(name, args, env, out),
        Expr::Cast { ty, expr } => {
            analyze_expr(expr, env, out)?;
            // Conversions are near-free on the GPU datapath; counted as
            // overhead so they do not skew the arithmetic mix.
            out.counts.add(InstrClass::Other, 1.0);
            Ok(*ty)
        }
        Expr::Ternary { cond, then, other } => {
            analyze_expr(cond, env, out)?;
            // GPUs predicate small selects: both sides execute.
            let tt = analyze_expr(then, env, out)?;
            let et = analyze_expr(other, env, out)?;
            let t = promote(tt, et);
            if t.is_float() {
                out.counts.add(InstrClass::FloatAdd, 1.0);
            } else {
                out.counts.add(InstrClass::IntAdd, 1.0);
            }
            Ok(t)
        }
    }
}

fn analyze_call(
    name: &str,
    args: &[Expr],
    env: &Env<'_>,
    out: &mut KernelAnalysis,
) -> Result<Scalar, AnalysisError> {
    let mut arg_types = Vec::with_capacity(args.len());
    for a in args {
        arg_types.push(analyze_expr(a, env, out)?);
    }
    let first_ty = arg_types.first().copied().unwrap_or(Scalar::Int);
    match classify_builtin(name) {
        BuiltinClass::WorkItem | BuiltinClass::Sync | BuiltinClass::Unknown => {
            out.counts.add(InstrClass::Other, 1.0);
        }
        BuiltinClass::Special => out.counts.add(InstrClass::SpecialFn, 1.0),
        BuiltinClass::FloatAlu => out.counts.add(InstrClass::FloatAdd, 1.0),
        BuiltinClass::IntAlu => out.counts.add(InstrClass::IntAdd, 1.0),
        BuiltinClass::FusedMulAdd => {
            out.counts.add(InstrClass::FloatMul, 1.0);
            out.counts.add(InstrClass::FloatAdd, 1.0);
        }
        BuiltinClass::IntMul => out.counts.add(InstrClass::IntMul, 1.0),
        BuiltinClass::TypedAlu => {
            if first_ty.is_float() {
                out.counts.add(InstrClass::FloatAdd, 1.0);
            } else {
                out.counts.add(InstrClass::IntAdd, 1.0);
            }
        }
        BuiltinClass::Convert => out.counts.add(InstrClass::Other, 1.0),
    }
    Ok(builtin_return_type(name).unwrap_or(first_ty))
}

/// Resolve the buffer expression of an index access and return its type.
/// Only plain variables and nested indexes are addressable in the subset.
fn analyze_base(
    base: &Expr,
    env: &Env<'_>,
    out: &mut KernelAnalysis,
) -> Result<Type, AnalysisError> {
    match base {
        Expr::Var(name) => Ok(env
            .lookup(name)
            .unwrap_or(Type::pointer(Scalar::Float, AddressSpace::Global))),
        other => {
            // e.g. `(buf + off)[i]` style bases: analyze and assume global.
            analyze_expr(other, env, out)?;
            Ok(Type::pointer(Scalar::Float, AddressSpace::Global))
        }
    }
}

fn record_access(base_ty: Type, is_store: bool, out: &mut KernelAnalysis) {
    let bytes = base_ty.scalar.size_bytes() as f64;
    match base_ty.space {
        AddressSpace::Global | AddressSpace::Constant => {
            if is_store {
                out.counts.add(InstrClass::GlobalStore, 1.0);
                out.global_write_bytes += bytes;
            } else {
                out.counts.add(InstrClass::GlobalLoad, 1.0);
                out.global_read_bytes += bytes;
            }
        }
        AddressSpace::Local => {
            out.counts.add(
                if is_store {
                    InstrClass::LocalStore
                } else {
                    InstrClass::LocalLoad
                },
                1.0,
            );
            out.local_bytes += bytes;
        }
        AddressSpace::Private => {
            // Register-resident arrays: modelled as free.
            out.counts.add(InstrClass::Other, 1.0);
        }
    }
}

fn promote(a: Scalar, b: Scalar) -> Scalar {
    if a.is_float() || b.is_float() {
        Scalar::Float
    } else if a == Scalar::Ulong || b == Scalar::Ulong {
        Scalar::Ulong
    } else if a == Scalar::Long || b == Scalar::Long {
        Scalar::Long
    } else if a == Scalar::Uint || b == Scalar::Uint {
        Scalar::Uint
    } else {
        Scalar::Int
    }
}

fn count_binop(op: BinOp, operand: Scalar, counts: &mut InstructionCounts) {
    let float = operand.is_float();
    let class = match op {
        BinOp::Add | BinOp::Sub => {
            if float {
                InstrClass::FloatAdd
            } else {
                InstrClass::IntAdd
            }
        }
        BinOp::Mul => {
            if float {
                InstrClass::FloatMul
            } else {
                InstrClass::IntMul
            }
        }
        BinOp::Div | BinOp::Rem => {
            if float {
                InstrClass::FloatDiv
            } else {
                InstrClass::IntDiv
            }
        }
        BinOp::Shl | BinOp::Shr | BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor => {
            InstrClass::IntBitwise
        }
        BinOp::LogAnd | BinOp::LogOr => InstrClass::IntBitwise,
        BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
            if float {
                InstrClass::FloatAdd
            } else {
                InstrClass::IntAdd
            }
        }
    };
    counts.add(class, 1.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze_src(src: &str) -> KernelAnalysis {
        let prog = parse(src).expect("parse");
        analyze_kernel(prog.first_kernel().expect("kernel")).expect("analyze")
    }

    fn analyze_src_with(src: &str, cfg: &AnalysisConfig) -> KernelAnalysis {
        let prog = parse(src).expect("parse");
        analyze_kernel_with(prog.first_kernel().expect("kernel"), cfg).expect("analyze")
    }

    #[test]
    fn straight_line_float_ops() {
        let a = analyze_src(
            "__kernel void k(__global float* x) {
                float a = 1.0f + 2.0f;
                float b = a * 3.0f;
                float c = b / a;
                x[0] = c;
            }",
        );
        assert_eq!(a.counts.get(InstrClass::FloatAdd), 1.0);
        assert_eq!(a.counts.get(InstrClass::FloatMul), 1.0);
        assert_eq!(a.counts.get(InstrClass::FloatDiv), 1.0);
        assert_eq!(a.counts.get(InstrClass::GlobalStore), 1.0);
        assert_eq!(a.global_write_bytes, 4.0);
    }

    #[test]
    fn int_vs_float_classification() {
        let a = analyze_src(
            "__kernel void k(__global int* x) {
                int i = 1 + 2;
                int j = i * 3;
                float f = 1.0f + (float)i;
                x[0] = j;
            }",
        );
        assert_eq!(a.counts.get(InstrClass::IntAdd), 1.0);
        assert_eq!(a.counts.get(InstrClass::IntMul), 1.0);
        assert_eq!(a.counts.get(InstrClass::FloatAdd), 1.0);
    }

    #[test]
    fn global_load_counts_and_bytes() {
        let a = analyze_src(
            "__kernel void k(__global float* x, __global float* y) {
                uint i = get_global_id(0);
                y[i] = x[i] + x[i + 1];
            }",
        );
        assert_eq!(a.counts.get(InstrClass::GlobalLoad), 2.0);
        assert_eq!(a.counts.get(InstrClass::GlobalStore), 1.0);
        assert_eq!(a.global_read_bytes, 8.0);
        assert_eq!(a.global_write_bytes, 4.0);
    }

    #[test]
    fn local_memory_accesses() {
        let a = analyze_src(
            "__kernel void k(__global float* x) {
                __local float tile[64];
                uint i = get_global_id(0);
                tile[i] = x[i];
                barrier(0);
                x[i] = tile[i] * 2.0f;
            }",
        );
        assert_eq!(a.counts.get(InstrClass::LocalStore), 1.0);
        assert_eq!(a.counts.get(InstrClass::LocalLoad), 1.0);
        assert_eq!(a.local_bytes, 8.0);
    }

    #[test]
    fn constant_for_loop_trip_count() {
        let a = analyze_src(
            "__kernel void k(__global float* x) {
                float acc = 0.0f;
                for (int i = 0; i < 10; i += 1) {
                    acc = acc + 1.0f;
                }
                x[0] = acc;
            }",
        );
        assert_eq!(a.counts.get(InstrClass::FloatAdd), 10.0);
        // cond evaluated 11x -> 11 int compares.
        assert_eq!(a.counts.get(InstrClass::IntAdd), 10.0 + 11.0); // steps + cmps
        assert_eq!(a.counts.get(InstrClass::Branch), 11.0);
    }

    #[test]
    fn le_and_downward_loops() {
        let a = analyze_src(
            "__kernel void k(__global float* x) {
                float acc = 0.0f;
                for (int i = 1; i <= 8; i += 1) { acc = acc + 1.0f; }
                for (int j = 8; j > 0; j -= 1) { acc = acc + 1.0f; }
                x[0] = acc;
            }",
        );
        assert_eq!(a.counts.get(InstrClass::FloatAdd), 16.0);
    }

    #[test]
    fn geometric_loop() {
        let a = analyze_src(
            "__kernel void k(__global float* x) {
                float acc = 0.0f;
                for (int s = 1; s < 64; s *= 2) { acc = acc + 1.0f; }
                x[0] = acc;
            }",
        );
        assert_eq!(a.counts.get(InstrClass::FloatAdd), 6.0); // 1,2,4,8,16,32
    }

    #[test]
    fn nested_loops_multiply() {
        let a = analyze_src(
            "__kernel void k(__global float* x) {
                float acc = 0.0f;
                for (int i = 0; i < 4; i += 1) {
                    for (int j = 0; j < 5; j += 1) {
                        acc = acc + 1.0f;
                    }
                }
                x[0] = acc;
            }",
        );
        assert_eq!(a.counts.get(InstrClass::FloatAdd), 20.0);
    }

    #[test]
    fn param_bound_loop_resolves_with_bindings() {
        let src = "__kernel void k(__global float* x, int n) {
            float acc = 0.0f;
            for (int i = 0; i < n; i += 1) { acc = acc + 1.0f; }
            x[0] = acc;
        }";
        let cfg = AnalysisConfig::with_bindings([("n".to_string(), 32)]);
        let a = analyze_src_with(src, &cfg);
        assert_eq!(a.counts.get(InstrClass::FloatAdd), 32.0);
        // Without bindings the assumed trip count applies.
        let b = analyze_src(src);
        assert_eq!(b.counts.get(InstrClass::FloatAdd), 16.0);
    }

    #[test]
    fn branch_expected_value_weighting() {
        let a = analyze_src(
            "__kernel void k(__global float* x) {
                uint i = get_global_id(0);
                if (i > 4u) {
                    x[i] = 1.0f;
                } else {
                    x[i] = 2.0f;
                }
            }",
        );
        // One store in each arm, each weighted 0.5.
        assert_eq!(a.counts.get(InstrClass::GlobalStore), 1.0);
        assert_eq!(a.counts.get(InstrClass::Branch), 1.0);
    }

    #[test]
    fn special_functions_counted() {
        let a = analyze_src(
            "__kernel void k(__global float* x) {
                uint i = get_global_id(0);
                x[i] = sin(x[i]) + exp(x[i]) * sqrt(x[i]);
            }",
        );
        assert_eq!(a.counts.get(InstrClass::SpecialFn), 3.0);
    }

    #[test]
    fn fma_decomposes() {
        let a = analyze_src(
            "__kernel void k(__global float* x) {
                x[0] = fma(x[0], x[1], x[2]);
            }",
        );
        assert_eq!(a.counts.get(InstrClass::FloatMul), 1.0);
        assert!(a.counts.get(InstrClass::FloatAdd) >= 1.0);
    }

    #[test]
    fn while_uses_assumed_trips() {
        let cfg = AnalysisConfig {
            assumed_trip_count: 7.0,
            ..Default::default()
        };
        let a = analyze_src_with(
            "__kernel void k(__global float* x) {
                float acc = 0.0f;
                while (acc < x[0]) { acc = acc + 1.0f; }
                x[0] = acc;
            }",
            &cfg,
        );
        assert_eq!(a.counts.get(InstrClass::FloatAdd), 7.0 + 8.0); // body + cond cmp
    }

    #[test]
    fn compound_store_reads_then_writes() {
        let a = analyze_src(
            "__kernel void k(__global float* x) {
                uint i = get_global_id(0);
                x[i] += 1.0f;
            }",
        );
        assert_eq!(a.counts.get(InstrClass::GlobalLoad), 1.0);
        assert_eq!(a.counts.get(InstrClass::GlobalStore), 1.0);
        assert_eq!(a.counts.get(InstrClass::FloatAdd), 1.0);
    }

    #[test]
    fn counts_iteration_order_is_stable() {
        let mut c = InstructionCounts::new();
        c.add(InstrClass::IntAdd, 2.0);
        c.add(InstrClass::Other, 1.0);
        let v: Vec<_> = c.iter().collect();
        assert_eq!(v[0], (InstrClass::IntAdd, 2.0));
        assert_eq!(v[13], (InstrClass::Other, 1.0));
        assert_eq!(c.total(), 3.0);
        assert_eq!(c.feature_total(), 2.0);
    }

    #[test]
    fn loop_bound_from_local_const() {
        let a = analyze_src(
            "__kernel void k(__global float* x) {
                int n = 4 * 8;
                float acc = 0.0f;
                for (int i = 0; i < n; i += 1) { acc = acc + 1.0f; }
                x[0] = acc;
            }",
        );
        assert_eq!(a.counts.get(InstrClass::FloatAdd), 32.0);
    }

    #[test]
    fn ternary_counts_both_sides() {
        let a = analyze_src(
            "__kernel void k(__global float* x) {
                uint i = get_global_id(0);
                x[i] = (x[i] > 0.0f) ? sin(x[i]) : cos(x[i]);
            }",
        );
        assert_eq!(a.counts.get(InstrClass::SpecialFn), 2.0);
    }
}
