//! Execution profiles: the absolute per-work-item work of a kernel.
//!
//! [`crate::features::StaticFeatures`] is what the
//! *predictor* is allowed to see (a normalized mix). The simulator, in
//! contrast, plays the role of the real GPU and needs absolute work:
//! how many instructions of each class one work-item executes, how many
//! bytes it moves, and how many work-items are launched. Keeping the two
//! views in separate types makes it impossible to accidentally leak
//! ground-truth magnitudes into the static model.

use crate::ast::KernelFn;
use crate::features::StaticFeatures;
use crate::ir::{analyze_kernel_with, AnalysisConfig, AnalysisError, InstructionCounts};
use serde::{Deserialize, Serialize};

/// ND-range launch geometry (flattened to one dimension; the paper's
/// kernels are all 1-D or trivially flattenable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Total number of work-items.
    pub global_size: u64,
    /// Work-group size.
    pub local_size: u64,
}

impl LaunchConfig {
    /// A launch with `global_size` items in groups of `local_size`.
    pub fn new(global_size: u64, local_size: u64) -> LaunchConfig {
        LaunchConfig {
            global_size,
            local_size,
        }
    }

    /// Number of work-groups (rounded up).
    pub fn num_groups(&self) -> u64 {
        self.global_size.div_ceil(self.local_size.max(1))
    }
}

impl Default for LaunchConfig {
    fn default() -> Self {
        LaunchConfig {
            global_size: 1 << 20,
            local_size: 256,
        }
    }
}

/// Everything the simulator needs to execute a kernel: per-work-item
/// instruction counts and memory traffic, plus launch geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name (for reporting).
    pub name: String,
    /// Executed instructions per work-item by class.
    pub counts: InstructionCounts,
    /// Bytes read from global memory per work-item.
    pub global_read_bytes: f64,
    /// Bytes written to global memory per work-item.
    pub global_write_bytes: f64,
    /// Bytes moved through local memory per work-item.
    pub local_bytes: f64,
    /// Launch geometry.
    pub launch: LaunchConfig,
}

impl KernelProfile {
    /// Build a profile by statically analyzing `kernel` under `config`
    /// (parameter bindings let problem-size loops resolve exactly).
    pub fn from_kernel(
        kernel: &KernelFn,
        config: &AnalysisConfig,
        launch: LaunchConfig,
    ) -> Result<KernelProfile, AnalysisError> {
        let analysis = analyze_kernel_with(kernel, config)?;
        Ok(KernelProfile::from_analysis(
            &kernel.name,
            &analysis,
            launch,
        ))
    }

    /// Build a profile from an analysis the caller already ran —
    /// callers that need both [`StaticFeatures`] and a profile analyze
    /// once and derive both views, instead of walking the AST twice.
    pub fn from_analysis(
        name: &str,
        analysis: &crate::ir::KernelAnalysis,
        launch: LaunchConfig,
    ) -> KernelProfile {
        KernelProfile {
            name: name.to_string(),
            counts: analysis.counts.clone(),
            global_read_bytes: analysis.global_read_bytes,
            global_write_bytes: analysis.global_write_bytes,
            local_bytes: analysis.local_bytes,
            launch,
        }
    }

    /// The static features corresponding to this profile's mix.
    pub fn static_features(&self) -> StaticFeatures {
        let analysis = crate::ir::KernelAnalysis {
            counts: self.counts.clone(),
            global_read_bytes: self.global_read_bytes,
            global_write_bytes: self.global_write_bytes,
            local_bytes: self.local_bytes,
        };
        StaticFeatures::from_analysis(&analysis)
    }

    /// Total global-memory traffic for the whole launch, in bytes.
    pub fn total_global_bytes(&self) -> f64 {
        (self.global_read_bytes + self.global_write_bytes) * self.launch.global_size as f64
    }

    /// Total executed instructions for the whole launch.
    pub fn total_instructions(&self) -> f64 {
        self.counts.total() * self.launch.global_size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::InstrClass;
    use crate::parser::parse;

    fn profile(src: &str, launch: LaunchConfig) -> KernelProfile {
        let prog = parse(src).unwrap();
        KernelProfile::from_kernel(
            prog.first_kernel().unwrap(),
            &AnalysisConfig::default(),
            launch,
        )
        .unwrap()
    }

    #[test]
    fn launch_geometry() {
        let l = LaunchConfig::new(1000, 256);
        assert_eq!(l.num_groups(), 4);
        let exact = LaunchConfig::new(1024, 256);
        assert_eq!(exact.num_groups(), 4);
    }

    #[test]
    fn profile_scales_with_launch() {
        let src = "__kernel void copy(__global float* x, __global float* y) {
            uint i = get_global_id(0);
            y[i] = x[i];
        }";
        let p = profile(src, LaunchConfig::new(1 << 10, 256));
        assert_eq!(p.name, "copy");
        assert_eq!(p.counts.get(InstrClass::GlobalLoad), 1.0);
        assert_eq!(p.total_global_bytes(), (4.0 + 4.0) * 1024.0);
        let p2 = profile(src, LaunchConfig::new(1 << 11, 256));
        assert_eq!(p2.total_global_bytes(), 2.0 * p.total_global_bytes());
    }

    #[test]
    fn static_features_match_direct_analysis() {
        let src = "__kernel void k(__global float* x) {
            uint i = get_global_id(0);
            x[i] = sin(x[i]) * 2.0f;
        }";
        let prog = parse(src).unwrap();
        let a = crate::ir::analyze_kernel(prog.first_kernel().unwrap()).unwrap();
        let direct = StaticFeatures::from_analysis(&a);
        let via_profile = profile(src, LaunchConfig::default()).static_features();
        assert_eq!(direct, via_profile);
    }

    #[test]
    fn total_instructions_counts_launch() {
        let src = "__kernel void k(__global float* x) {
            uint i = get_global_id(0);
            x[i] = x[i] + 1.0f;
        }";
        let p = profile(src, LaunchConfig::new(100, 10));
        assert_eq!(p.total_instructions(), p.counts.total() * 100.0);
    }
}
