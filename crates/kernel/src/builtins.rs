//! Classification of OpenCL built-in functions.
//!
//! The feature extractor (the analogue of the paper's LLVM pass, §3.2)
//! needs to map every call in a kernel onto the instruction classes of
//! the static feature vector. This module is the single source of truth
//! for that mapping: work-item queries, synchronization, cheap ALU
//! helpers, transcendental ("special") functions, and the few fused ops
//! that lower to more than one instruction.

use crate::ast::Scalar;

/// How a built-in call contributes to the instruction mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinClass {
    /// Work-item / ND-range queries: `get_global_id`, `get_local_size`, ...
    /// Lower to a couple of cheap integer ops; counted as overhead
    /// ("other") so they do not pollute the arithmetic mix.
    WorkItem,
    /// Synchronization: `barrier`, `mem_fence`. No arithmetic contribution.
    Sync,
    /// Transcendental / special-function-unit instructions: `sin`, `exp`,
    /// `sqrt`, `pow`, ... (the paper's `k_sf` class).
    Special,
    /// Cheap float ALU helper (`fabs`, `floor`, `fmin`, ...): one
    /// float-add-class instruction.
    FloatAlu,
    /// Cheap integer ALU helper (`abs`, `min`, `max` on ints, ...): one
    /// int-add-class instruction.
    IntAlu,
    /// Fused multiply-add (`fma`, `mad`): one float mul + one float add.
    FusedMulAdd,
    /// 24-bit integer multiply helpers (`mul24`, `mad24`).
    IntMul,
    /// `select`/`clamp`-style data movement; one ALU op in the type of
    /// its arguments (resolved by the caller from argument types).
    TypedAlu,
    /// Conversion builtins (`convert_int`, `as_float`, ...): free.
    Convert,
    /// Unknown identifier — treated as an opaque call with no
    /// arithmetic contribution (counted as "other").
    Unknown,
}

/// Return type of a built-in, used by expression type inference.
///
/// `None` means "same scalar type as the first argument".
pub fn builtin_return_type(name: &str) -> Option<Scalar> {
    match classify_builtin(name) {
        BuiltinClass::WorkItem => Some(Scalar::Uint),
        BuiltinClass::Sync => Some(Scalar::Void),
        BuiltinClass::Special => Some(Scalar::Float),
        BuiltinClass::FloatAlu | BuiltinClass::FusedMulAdd => Some(Scalar::Float),
        BuiltinClass::IntAlu | BuiltinClass::IntMul => Some(Scalar::Int),
        BuiltinClass::TypedAlu => None,
        BuiltinClass::Convert => convert_target(name),
        BuiltinClass::Unknown => None,
    }
}

fn convert_target(name: &str) -> Option<Scalar> {
    let tail = name
        .strip_prefix("convert_")
        .or_else(|| name.strip_prefix("as_"))?;
    Some(match tail {
        "int" => Scalar::Int,
        "uint" => Scalar::Uint,
        "long" => Scalar::Long,
        "ulong" => Scalar::Ulong,
        "float" => Scalar::Float,
        _ => return None,
    })
}

/// Classify a built-in function by name.
///
/// Native and half-precision variants (`native_sin`, `half_exp`) map to
/// the same class as the precise version: they still execute on the SFU.
pub fn classify_builtin(name: &str) -> BuiltinClass {
    let base = name
        .strip_prefix("native_")
        .or_else(|| name.strip_prefix("half_"))
        .unwrap_or(name);
    match base {
        "get_global_id" | "get_local_id" | "get_group_id" | "get_global_size"
        | "get_local_size" | "get_num_groups" | "get_work_dim" | "get_global_offset" => {
            BuiltinClass::WorkItem
        }
        "barrier" | "mem_fence" | "read_mem_fence" | "write_mem_fence" => BuiltinClass::Sync,
        "sin" | "cos" | "tan" | "asin" | "acos" | "atan" | "atan2" | "sinh" | "cosh" | "tanh"
        | "exp" | "exp2" | "exp10" | "expm1" | "log" | "log2" | "log10" | "log1p" | "sqrt"
        | "rsqrt" | "cbrt" | "pow" | "powr" | "pown" | "hypot" | "erf" | "erfc" | "sincos"
        | "recip" => BuiltinClass::Special,
        "fabs" | "floor" | "ceil" | "round" | "trunc" | "rint" | "fmin" | "fmax" | "fmod"
        | "fdim" | "copysign" | "sign" | "mix" | "step" | "smoothstep" => BuiltinClass::FloatAlu,
        "abs" | "abs_diff" | "hadd" | "rhadd" | "rotate" | "popcount" | "clz" | "min" | "max"
        | "add_sat" | "sub_sat" => BuiltinClass::IntAlu,
        "fma" | "mad" => BuiltinClass::FusedMulAdd,
        "mul24" | "mad24" | "mul_hi" | "mad_hi" | "mad_sat" => BuiltinClass::IntMul,
        "clamp" | "select" | "bitselect" => BuiltinClass::TypedAlu,
        _ if base.starts_with("convert_") || base.starts_with("as_") => BuiltinClass::Convert,
        _ => BuiltinClass::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_item_queries() {
        assert_eq!(classify_builtin("get_global_id"), BuiltinClass::WorkItem);
        assert_eq!(classify_builtin("get_local_size"), BuiltinClass::WorkItem);
        assert_eq!(builtin_return_type("get_global_id"), Some(Scalar::Uint));
    }

    #[test]
    fn special_functions() {
        for f in [
            "sin", "cos", "exp", "log", "sqrt", "rsqrt", "pow", "atan2", "erf",
        ] {
            assert_eq!(classify_builtin(f), BuiltinClass::Special, "{f}");
        }
    }

    #[test]
    fn native_variants_are_special() {
        assert_eq!(classify_builtin("native_sin"), BuiltinClass::Special);
        assert_eq!(classify_builtin("half_exp"), BuiltinClass::Special);
        assert_eq!(classify_builtin("native_recip"), BuiltinClass::Special);
    }

    #[test]
    fn cheap_alu_helpers() {
        assert_eq!(classify_builtin("fabs"), BuiltinClass::FloatAlu);
        assert_eq!(classify_builtin("fmin"), BuiltinClass::FloatAlu);
        assert_eq!(classify_builtin("min"), BuiltinClass::IntAlu);
        assert_eq!(classify_builtin("popcount"), BuiltinClass::IntAlu);
    }

    #[test]
    fn fused_and_mul24() {
        assert_eq!(classify_builtin("fma"), BuiltinClass::FusedMulAdd);
        assert_eq!(classify_builtin("mad"), BuiltinClass::FusedMulAdd);
        assert_eq!(classify_builtin("mul24"), BuiltinClass::IntMul);
    }

    #[test]
    fn sync_and_unknown() {
        assert_eq!(classify_builtin("barrier"), BuiltinClass::Sync);
        assert_eq!(classify_builtin("totally_made_up"), BuiltinClass::Unknown);
    }

    #[test]
    fn convert_builtins() {
        assert_eq!(classify_builtin("convert_float"), BuiltinClass::Convert);
        assert_eq!(builtin_return_type("convert_float"), Some(Scalar::Float));
        assert_eq!(builtin_return_type("as_uint"), Some(Scalar::Uint));
        assert_eq!(builtin_return_type("convert_weird"), None);
    }
}
