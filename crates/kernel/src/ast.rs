//! Abstract syntax tree for the OpenCL-C kernel subset.

use crate::lexer::Span;
use serde::{Deserialize, Serialize};

/// Scalar value types supported by the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scalar {
    /// `void` — function return only.
    Void,
    /// Signed 32-bit integer.
    Int,
    /// Unsigned 32-bit integer.
    Uint,
    /// Signed 64-bit integer.
    Long,
    /// Unsigned 64-bit integer.
    Ulong,
    /// 32-bit IEEE float.
    Float,
    /// Boolean (result of comparisons).
    Bool,
}

impl Scalar {
    /// Whether the scalar is one of the integer types (bool counts as
    /// integer for classification purposes).
    pub fn is_integer(self) -> bool {
        matches!(
            self,
            Scalar::Int | Scalar::Uint | Scalar::Long | Scalar::Ulong | Scalar::Bool
        )
    }

    /// Whether the scalar is a floating point type.
    pub fn is_float(self) -> bool {
        matches!(self, Scalar::Float)
    }

    /// Size in bytes of one element when stored in a buffer.
    pub fn size_bytes(self) -> u64 {
        match self {
            Scalar::Void => 0,
            Scalar::Bool => 1,
            Scalar::Int | Scalar::Uint | Scalar::Float => 4,
            Scalar::Long | Scalar::Ulong => 8,
        }
    }
}

/// OpenCL address spaces for pointer parameters and local arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddressSpace {
    /// `__global` device memory.
    Global,
    /// `__local` on-chip shared memory.
    Local,
    /// `__constant` read-only memory (treated as global for traffic).
    Constant,
    /// `__private` registers / stack.
    Private,
}

/// A (possibly pointer) type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Type {
    /// Element scalar type.
    pub scalar: Scalar,
    /// `true` if this is a pointer to `scalar`.
    pub pointer: bool,
    /// Address space (meaningful for pointers and local arrays).
    pub space: AddressSpace,
}

impl Type {
    /// Scalar value type in private space.
    pub fn scalar(scalar: Scalar) -> Type {
        Type {
            scalar,
            pointer: false,
            space: AddressSpace::Private,
        }
    }

    /// Pointer to `scalar` in `space`.
    pub fn pointer(scalar: Scalar, space: AddressSpace) -> Type {
        Type {
            scalar,
            pointer: true,
            space,
        }
    }
}

/// Binary operators.
#[allow(missing_docs)] // variants are self-describing operator names
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    LogAnd,
    LogOr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
}

impl BinOp {
    /// True for comparison operators producing `bool`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
    /// True for logical `&&` / `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LogAnd | BinOp::LogOr)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
    /// Bitwise not `~x`.
    BitNot,
}

/// Expressions.
#[allow(missing_docs)] // struct-variant fields are self-describing
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Boolean literal.
    BoolLit(bool),
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary { op: UnOp, expr: Box<Expr> },
    /// Array / pointer indexing `base[index]`.
    Index { base: Box<Expr>, index: Box<Expr> },
    /// Function / builtin call.
    Call { name: String, args: Vec<Expr> },
    /// C-style cast `(float)x`.
    Cast { ty: Scalar, expr: Box<Expr> },
    /// Ternary conditional `c ? a : b`.
    Ternary {
        cond: Box<Expr>,
        then: Box<Expr>,
        other: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }
}

/// Assignment targets: plain variable or indexed store.
#[allow(missing_docs)] // struct-variant fields are self-describing
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LValue {
    /// `x = ...`
    Var(String),
    /// `buf[i] = ...`
    Index { base: Box<Expr>, index: Box<Expr> },
}

/// Compound-assignment operators map onto a [`BinOp`]; `None` is plain `=`.
pub type AssignOp = Option<BinOp>;

/// Statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Variable declaration, e.g. `float acc = 0.0f;` or a local array
    /// `__local float tile[256];`.
    Decl {
        /// Declared type (arrays are pointer-typed with `array_len`).
        ty: Type,
        /// Variable name.
        name: String,
        /// Fixed array length for local/private arrays.
        array_len: Option<u64>,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// Assignment (possibly compound).
    Assign {
        /// Target of the store.
        target: LValue,
        /// `None` for `=`, `Some(op)` for `op=`.
        op: AssignOp,
        /// Right-hand side.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// Expression statement (a bare call such as `barrier(...)`).
    Expr(Expr, Span),
    /// `if (cond) { .. } else { .. }`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken branch.
        then: Vec<Stmt>,
        /// Else branch (empty when absent).
        other: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Loop initializer (declaration or assignment).
        init: Option<Box<Stmt>>,
        /// Loop condition (None = infinite; rejected later).
        cond: Option<Expr>,
        /// Loop step statement.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `return;` / `return expr;`.
    Return(Option<Expr>, Span),
    /// `break;`
    Break(Span),
    /// `continue;`
    Continue(Span),
    /// Nested block `{ ... }`.
    Block(Vec<Stmt>, Span),
}

/// A kernel parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter type.
    pub ty: Type,
    /// Parameter name.
    pub name: String,
    /// `const`-qualified (read-only buffer).
    pub is_const: bool,
}

/// A parsed `__kernel` function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelFn {
    /// Kernel name.
    pub name: String,
    /// Parameter list.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location of the signature.
    pub span: Span,
}

/// A translation unit: one or more kernels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// All `__kernel` functions in the source.
    pub kernels: Vec<KernelFn>,
}

impl Program {
    /// Find a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelFn> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// The first (often only) kernel in the unit.
    pub fn first_kernel(&self) -> Option<&KernelFn> {
        self.kernels.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_classification() {
        assert!(Scalar::Int.is_integer());
        assert!(Scalar::Uint.is_integer());
        assert!(Scalar::Bool.is_integer());
        assert!(!Scalar::Float.is_integer());
        assert!(Scalar::Float.is_float());
        assert_eq!(Scalar::Float.size_bytes(), 4);
        assert_eq!(Scalar::Long.size_bytes(), 8);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::LogAnd.is_logical());
        assert!(!BinOp::BitAnd.is_logical());
    }

    #[test]
    fn type_constructors() {
        let t = Type::pointer(Scalar::Float, AddressSpace::Global);
        assert!(t.pointer);
        assert_eq!(t.scalar, Scalar::Float);
        let s = Type::scalar(Scalar::Int);
        assert!(!s.pointer);
        assert_eq!(s.space, AddressSpace::Private);
    }
}
