//! Recursive-descent parser for the OpenCL-C kernel subset.
//!
//! The grammar is a pragmatic C subset sufficient for the paper's
//! training and test kernels: `__kernel` functions with pointer/scalar
//! parameters, declarations, assignments (plain, compound, `++`/`--`),
//! `if`/`for`/`while`/`do`, and a conventional C expression grammar with
//! precedence climbing.

use crate::ast::*;
use crate::lexer::{lex, Keyword, LexError, Op, Span, Token, TokenKind};
use std::fmt;

/// Parse error with location information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Location of the offending token.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}: {}",
            self.span.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Parse a full translation unit (one or more kernels).
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut kernels = Vec::new();
    while !p.at_eof() {
        kernels.push(p.kernel_fn()?);
    }
    if kernels.is_empty() {
        return Err(ParseError {
            message: "source contains no kernels".into(),
            span: Span::DUMMY,
        });
    }
    Ok(Program { kernels })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }
    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }
    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }
    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }
    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }
    fn eat_op(&mut self, op: Op) -> bool {
        if *self.peek() == TokenKind::Op(op) {
            self.bump();
            true
        } else {
            false
        }
    }
    fn expect_op(&mut self, op: Op) -> Result<(), ParseError> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}, found {:?}", op, self.peek())))
        }
    }
    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if *self.peek() == TokenKind::Kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }
    fn expect_kw(&mut self, kw: Keyword) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected keyword {:?}, found {:?}",
                kw,
                self.peek()
            )))
        }
    }
    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }
    fn err(&self, message: String) -> ParseError {
        ParseError {
            message,
            span: self.span(),
        }
    }

    // ---- declarations -------------------------------------------------

    fn kernel_fn(&mut self) -> Result<KernelFn, ParseError> {
        let span = self.span();
        self.expect_kw(Keyword::Kernel)?;
        self.expect_kw(Keyword::Void)?;
        let name = self.expect_ident()?;
        self.expect_op(Op::LParen)?;
        let mut params = Vec::new();
        if !self.eat_op(Op::RParen) {
            loop {
                params.push(self.param()?);
                if self.eat_op(Op::RParen) {
                    break;
                }
                self.expect_op(Op::Comma)?;
            }
        }
        self.expect_op(Op::LBrace)?;
        let body = self.block_body()?;
        Ok(KernelFn {
            name,
            params,
            body,
            span,
        })
    }

    fn param(&mut self) -> Result<Param, ParseError> {
        let mut space = AddressSpace::Private;
        let mut is_const = false;
        loop {
            if self.eat_kw(Keyword::Global) {
                space = AddressSpace::Global;
            } else if self.eat_kw(Keyword::Local) {
                space = AddressSpace::Local;
            } else if self.eat_kw(Keyword::Constant) {
                space = AddressSpace::Constant;
            } else if self.eat_kw(Keyword::Private) {
                space = AddressSpace::Private;
            } else if self.eat_kw(Keyword::Const) {
                is_const = true;
            } else {
                break;
            }
        }
        let scalar = self.scalar_type()?;
        // `const` may also follow the element type (e.g. `float const *`).
        if self.eat_kw(Keyword::Const) {
            is_const = true;
        }
        let pointer = self.eat_op(Op::Star);
        if pointer && self.eat_kw(Keyword::Const) {
            is_const = true;
        }
        let name = self.expect_ident()?;
        let ty = if pointer {
            Type {
                scalar,
                pointer: true,
                space,
            }
        } else {
            Type {
                scalar,
                pointer: false,
                space: AddressSpace::Private,
            }
        };
        Ok(Param { ty, name, is_const })
    }

    fn scalar_type(&mut self) -> Result<Scalar, ParseError> {
        let s = match self.peek() {
            TokenKind::Kw(Keyword::Void) => Scalar::Void,
            TokenKind::Kw(Keyword::Int) => Scalar::Int,
            TokenKind::Kw(Keyword::Uint) => Scalar::Uint,
            TokenKind::Kw(Keyword::Long) => Scalar::Long,
            TokenKind::Kw(Keyword::Ulong) => Scalar::Ulong,
            TokenKind::Kw(Keyword::Float) => Scalar::Float,
            TokenKind::Kw(Keyword::Bool) => Scalar::Bool,
            other => return Err(self.err(format!("expected type, found {other:?}"))),
        };
        self.bump();
        Ok(s)
    }

    fn starts_type(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Kw(
                Keyword::Int
                    | Keyword::Uint
                    | Keyword::Long
                    | Keyword::Ulong
                    | Keyword::Float
                    | Keyword::Bool
                    | Keyword::Const
                    | Keyword::Local
                    | Keyword::Private
            )
        )
    }

    // ---- statements ----------------------------------------------------

    fn block_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        while !self.eat_op(Op::RBrace) {
            if self.at_eof() {
                return Err(self.err("unexpected end of input inside block".into()));
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Op(Op::LBrace) => {
                self.bump();
                Ok(Stmt::Block(self.block_body()?, span))
            }
            TokenKind::Kw(Keyword::If) => self.if_stmt(),
            TokenKind::Kw(Keyword::For) => self.for_stmt(),
            TokenKind::Kw(Keyword::While) => self.while_stmt(),
            TokenKind::Kw(Keyword::Do) => self.do_stmt(),
            TokenKind::Kw(Keyword::Return) => {
                self.bump();
                let e = if self.eat_op(Op::Semi) {
                    None
                } else {
                    let e = self.expr()?;
                    self.expect_op(Op::Semi)?;
                    Some(e)
                };
                Ok(Stmt::Return(e, span))
            }
            TokenKind::Kw(Keyword::Break) => {
                self.bump();
                self.expect_op(Op::Semi)?;
                Ok(Stmt::Break(span))
            }
            TokenKind::Kw(Keyword::Continue) => {
                self.bump();
                self.expect_op(Op::Semi)?;
                Ok(Stmt::Continue(span))
            }
            _ if self.starts_type() => {
                let s = self.decl_stmt()?;
                self.expect_op(Op::Semi)?;
                Ok(s)
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect_op(Op::Semi)?;
                Ok(s)
            }
        }
    }

    /// Declaration without trailing `;` (shared with `for` init).
    fn decl_stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.span();
        let mut space = AddressSpace::Private;
        loop {
            if self.eat_kw(Keyword::Local) {
                space = AddressSpace::Local;
            } else if self.eat_kw(Keyword::Private) {
                space = AddressSpace::Private;
            } else if self.eat_kw(Keyword::Const) {
                // const-ness of locals does not affect analysis
            } else {
                break;
            }
        }
        let scalar = self.scalar_type()?;
        let name = self.expect_ident()?;
        // Fixed-size array declaration (e.g. `__local float tile[256];`).
        if self.eat_op(Op::LBracket) {
            let len = match self.bump() {
                TokenKind::IntLit(v, _) if v > 0 => v as u64,
                other => {
                    return Err(self.err(format!("expected array length literal, found {other:?}")))
                }
            };
            self.expect_op(Op::RBracket)?;
            let ty = Type {
                scalar,
                pointer: true,
                space,
            };
            return Ok(Stmt::Decl {
                ty,
                name,
                array_len: Some(len),
                init: None,
                span,
            });
        }
        let init = if self.eat_op(Op::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Decl {
            ty: Type {
                scalar,
                pointer: false,
                space,
            },
            name,
            array_len: None,
            init,
            span,
        })
    }

    /// Assignment / expression statement without trailing `;`
    /// (shared with `for` init/step).
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.span();
        // Pre-increment/decrement.
        if self.eat_op(Op::PlusPlus) {
            let name = self.expect_ident()?;
            return Ok(self.incdec(name, BinOp::Add, span));
        }
        if self.eat_op(Op::MinusMinus) {
            let name = self.expect_ident()?;
            return Ok(self.incdec(name, BinOp::Sub, span));
        }
        let e = self.expr()?;
        // Post-increment/decrement.
        if self.eat_op(Op::PlusPlus) {
            return self.expect_var(e, span, BinOp::Add);
        }
        if self.eat_op(Op::MinusMinus) {
            return self.expect_var(e, span, BinOp::Sub);
        }
        let assign_op = match self.peek() {
            TokenKind::Op(Op::Assign) => Some(None),
            TokenKind::Op(Op::PlusAssign) => Some(Some(BinOp::Add)),
            TokenKind::Op(Op::MinusAssign) => Some(Some(BinOp::Sub)),
            TokenKind::Op(Op::StarAssign) => Some(Some(BinOp::Mul)),
            TokenKind::Op(Op::SlashAssign) => Some(Some(BinOp::Div)),
            TokenKind::Op(Op::PercentAssign) => Some(Some(BinOp::Rem)),
            TokenKind::Op(Op::AmpAssign) => Some(Some(BinOp::BitAnd)),
            TokenKind::Op(Op::PipeAssign) => Some(Some(BinOp::BitOr)),
            TokenKind::Op(Op::CaretAssign) => Some(Some(BinOp::BitXor)),
            TokenKind::Op(Op::ShlAssign) => Some(Some(BinOp::Shl)),
            TokenKind::Op(Op::ShrAssign) => Some(Some(BinOp::Shr)),
            _ => None,
        };
        if let Some(op) = assign_op {
            self.bump();
            let target = match e {
                Expr::Var(name) => LValue::Var(name),
                Expr::Index { base, index } => LValue::Index { base, index },
                other => return Err(self.err(format!("invalid assignment target: {other:?}"))),
            };
            let value = self.expr()?;
            return Ok(Stmt::Assign {
                target,
                op,
                value,
                span,
            });
        }
        Ok(Stmt::Expr(e, span))
    }

    fn incdec(&self, name: String, op: BinOp, span: Span) -> Stmt {
        Stmt::Assign {
            target: LValue::Var(name.clone()),
            op: Some(op),
            value: Expr::IntLit(1),
            span,
        }
    }

    fn expect_var(&self, e: Expr, span: Span, op: BinOp) -> Result<Stmt, ParseError> {
        match e {
            Expr::Var(name) => Ok(self.incdec(name, op, span)),
            other => Err(ParseError {
                message: format!("++/-- requires a variable, found {other:?}"),
                span,
            }),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.span();
        self.expect_kw(Keyword::If)?;
        self.expect_op(Op::LParen)?;
        let cond = self.expr()?;
        self.expect_op(Op::RParen)?;
        let then = self.stmt_or_block()?;
        let other = if self.eat_kw(Keyword::Else) {
            self.stmt_or_block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then,
            other,
            span,
        })
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.eat_op(Op::LBrace) {
            self.block_body()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.span();
        self.expect_kw(Keyword::For)?;
        self.expect_op(Op::LParen)?;
        let init = if self.eat_op(Op::Semi) {
            None
        } else {
            let s = if self.starts_type() {
                self.decl_stmt()?
            } else {
                self.simple_stmt()?
            };
            self.expect_op(Op::Semi)?;
            Some(Box::new(s))
        };
        let cond = if self.eat_op(Op::Semi) {
            None
        } else {
            let c = self.expr()?;
            self.expect_op(Op::Semi)?;
            Some(c)
        };
        let step = if *self.peek() == TokenKind::Op(Op::RParen) {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect_op(Op::RParen)?;
        let body = self.stmt_or_block()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
            span,
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.span();
        self.expect_kw(Keyword::While)?;
        self.expect_op(Op::LParen)?;
        let cond = self.expr()?;
        self.expect_op(Op::RParen)?;
        let body = self.stmt_or_block()?;
        Ok(Stmt::While { cond, body, span })
    }

    /// `do body while (cond);` is desugared to `body; while(cond) body`
    /// for analysis purposes — the body executes at least once and the
    /// static trip-count model treats both forms identically.
    fn do_stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.span();
        self.expect_kw(Keyword::Do)?;
        let body = self.stmt_or_block()?;
        self.expect_kw(Keyword::While)?;
        self.expect_op(Op::LParen)?;
        let cond = self.expr()?;
        self.expect_op(Op::RParen)?;
        self.expect_op(Op::Semi)?;
        Ok(Stmt::While { cond, body, span })
    }

    // ---- expressions (precedence climbing) ------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(0)?;
        if self.eat_op(Op::Question) {
            let then = self.expr()?;
            self.expect_op(Op::Colon)?;
            let other = self.expr()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                other: Box::new(other),
            })
        } else {
            Ok(cond)
        }
    }

    fn bin_op_prec(kind: &TokenKind) -> Option<(BinOp, u8)> {
        let (op, p) = match kind {
            TokenKind::Op(Op::OrOr) => (BinOp::LogOr, 1),
            TokenKind::Op(Op::AndAnd) => (BinOp::LogAnd, 2),
            TokenKind::Op(Op::Pipe) => (BinOp::BitOr, 3),
            TokenKind::Op(Op::Caret) => (BinOp::BitXor, 4),
            TokenKind::Op(Op::Amp) => (BinOp::BitAnd, 5),
            TokenKind::Op(Op::EqEq) => (BinOp::Eq, 6),
            TokenKind::Op(Op::Ne) => (BinOp::Ne, 6),
            TokenKind::Op(Op::Lt) => (BinOp::Lt, 7),
            TokenKind::Op(Op::Gt) => (BinOp::Gt, 7),
            TokenKind::Op(Op::Le) => (BinOp::Le, 7),
            TokenKind::Op(Op::Ge) => (BinOp::Ge, 7),
            TokenKind::Op(Op::Shl) => (BinOp::Shl, 8),
            TokenKind::Op(Op::Shr) => (BinOp::Shr, 8),
            TokenKind::Op(Op::Plus) => (BinOp::Add, 9),
            TokenKind::Op(Op::Minus) => (BinOp::Sub, 9),
            TokenKind::Op(Op::Star) => (BinOp::Mul, 10),
            TokenKind::Op(Op::Slash) => (BinOp::Div, 10),
            TokenKind::Op(Op::Percent) => (BinOp::Rem, 10),
            _ => return None,
        };
        Some((op, p))
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = Self::bin_op_prec(self.peek()) {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_op(Op::Minus) {
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(self.unary()?),
            });
        }
        if self.eat_op(Op::Bang) {
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(self.unary()?),
            });
        }
        if self.eat_op(Op::Tilde) {
            return Ok(Expr::Unary {
                op: UnOp::BitNot,
                expr: Box::new(self.unary()?),
            });
        }
        if self.eat_op(Op::Plus) {
            return self.unary();
        }
        // Cast: `(type) expr` — look ahead for `(` followed by a type
        // keyword followed by `)`.
        if *self.peek() == TokenKind::Op(Op::LParen) {
            if let TokenKind::Kw(
                Keyword::Int | Keyword::Uint | Keyword::Long | Keyword::Ulong | Keyword::Float,
            ) = self.peek_at(1)
            {
                if *self.peek_at(2) == TokenKind::Op(Op::RParen) {
                    self.bump(); // (
                    let ty = self.scalar_type()?;
                    self.bump(); // )
                    let e = self.unary()?;
                    return Ok(Expr::Cast {
                        ty,
                        expr: Box::new(e),
                    });
                }
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_op(Op::LBracket) {
                let idx = self.expr()?;
                self.expect_op(Op::RBracket)?;
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(idx),
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::IntLit(v, _) => {
                self.bump();
                Ok(Expr::IntLit(v))
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                Ok(Expr::FloatLit(v))
            }
            TokenKind::Kw(Keyword::True) => {
                self.bump();
                Ok(Expr::BoolLit(true))
            }
            TokenKind::Kw(Keyword::False) => {
                self.bump();
                Ok(Expr::BoolLit(false))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat_op(Op::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_op(Op::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_op(Op::RParen) {
                                break;
                            }
                            self.expect_op(Op::Comma)?;
                        }
                    }
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            TokenKind::Op(Op::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_op(Op::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> KernelFn {
        parse(src).unwrap().kernels.into_iter().next().unwrap()
    }

    #[test]
    fn parse_minimal_kernel() {
        let k = parse_one("__kernel void k() { }");
        assert_eq!(k.name, "k");
        assert!(k.params.is_empty());
        assert!(k.body.is_empty());
    }

    #[test]
    fn parse_params() {
        let k = parse_one(
            "__kernel void k(__global const float* in, __global float* out, const int n) {}",
        );
        assert_eq!(k.params.len(), 3);
        assert!(k.params[0].is_const);
        assert!(k.params[0].ty.pointer);
        assert_eq!(k.params[0].ty.space, AddressSpace::Global);
        assert_eq!(k.params[2].ty.scalar, Scalar::Int);
        assert!(!k.params[2].ty.pointer);
    }

    #[test]
    fn parse_local_param() {
        let k = parse_one("__kernel void k(__local float* tile) {}");
        assert_eq!(k.params[0].ty.space, AddressSpace::Local);
    }

    #[test]
    fn parse_decl_and_assign() {
        let k = parse_one(
            "__kernel void k(__global float* a) {
                int i = get_global_id(0);
                float x = 0.0f;
                x += a[i];
                a[i] = x * 2.0f;
            }",
        );
        assert_eq!(k.body.len(), 4);
        assert!(matches!(
            &k.body[2],
            Stmt::Assign {
                op: Some(BinOp::Add),
                ..
            }
        ));
        assert!(matches!(
            &k.body[3],
            Stmt::Assign {
                target: LValue::Index { .. },
                ..
            }
        ));
    }

    #[test]
    fn parse_for_loop() {
        let k = parse_one(
            "__kernel void k(__global float* a) {
                for (int i = 0; i < 16; i++) { a[i] = 0.0f; }
            }",
        );
        let Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } = &k.body[0]
        else {
            panic!("expected for")
        };
        assert!(init.is_some());
        assert!(cond.is_some());
        assert!(step.is_some());
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn parse_if_else() {
        let k = parse_one(
            "__kernel void k(__global int* a) {
                int i = get_global_id(0);
                if (i < 4) a[i] = 1; else { a[i] = 2; }
            }",
        );
        let Stmt::If { then, other, .. } = &k.body[1] else {
            panic!("expected if")
        };
        assert_eq!(then.len(), 1);
        assert_eq!(other.len(), 1);
    }

    #[test]
    fn parse_while_and_do() {
        let k = parse_one(
            "__kernel void k() {
                int i = 0;
                while (i < 8) { i = i + 1; }
                do { i = i - 1; } while (i > 0);
            }",
        );
        assert!(matches!(k.body[1], Stmt::While { .. }));
        assert!(matches!(k.body[2], Stmt::While { .. }));
    }

    #[test]
    fn parse_precedence() {
        let k = parse_one("__kernel void k(__global int* a) { a[0] = 1 + 2 * 3; }");
        let Stmt::Assign { value, .. } = &k.body[0] else {
            panic!()
        };
        // 1 + (2*3)
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = value
        else {
            panic!("got {value:?}")
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parse_ternary_and_cast() {
        let k = parse_one(
            "__kernel void k(__global float* a, const int n) {
                int i = get_global_id(0);
                a[i] = i < n ? (float)i : 0.0f;
            }",
        );
        let Stmt::Assign { value, .. } = &k.body[1] else {
            panic!()
        };
        assert!(matches!(value, Expr::Ternary { .. }));
    }

    #[test]
    fn parse_calls() {
        let k = parse_one(
            "__kernel void k(__global float* a) {
                int i = get_global_id(0);
                a[i] = sqrt(a[i]) + pow(a[i], 2.0f);
                barrier(CLK_LOCAL_MEM_FENCE);
            }",
        );
        assert!(matches!(&k.body[2], Stmt::Expr(Expr::Call { name, .. }, _) if name == "barrier"));
    }

    #[test]
    fn parse_local_array_decl() {
        let k = parse_one(
            "__kernel void k(__global float* a) {
                __local float tile[64];
                int l = get_local_id(0);
                tile[l] = a[l];
            }",
        );
        let Stmt::Decl { ty, array_len, .. } = &k.body[0] else {
            panic!()
        };
        assert_eq!(*array_len, Some(64));
        assert_eq!(ty.space, AddressSpace::Local);
        assert!(ty.pointer);
    }

    #[test]
    fn parse_multiple_kernels() {
        let p = parse("__kernel void a() {} __kernel void b() {}").unwrap();
        assert_eq!(p.kernels.len(), 2);
        assert!(p.kernel("b").is_some());
        assert!(p.kernel("c").is_none());
    }

    #[test]
    fn parse_error_on_garbage() {
        assert!(parse("void nope() {}").is_err());
        assert!(parse("__kernel void k( {").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parse_error_has_line() {
        let e = parse("__kernel void k() {\n  int x = ;\n}").unwrap_err();
        assert_eq!(e.span.line, 2);
    }

    #[test]
    fn parse_compound_assignment_variants() {
        let k = parse_one(
            "__kernel void k() {
                int x = 1;
                x <<= 2; x >>= 1; x &= 3; x |= 4; x ^= 5; x %= 6; x *= 7; x /= 8; x -= 9;
            }",
        );
        assert_eq!(k.body.len(), 10);
    }

    #[test]
    fn parse_unary_ops() {
        let k = parse_one("__kernel void k(__global int* a) { a[0] = -a[1] + ~a[2]; a[3] = !0; }");
        assert_eq!(k.body.len(), 2);
    }
}
