//! Pure routing arithmetic: which replica owns a request, how a batch
//! splits across replicas, and how the per-replica responses merge
//! back into one byte-identical response.
//!
//! Replica choice is `key_hash(device, source) % replicas` — the same
//! FNV-1a hash the backends key their front caches with, so a kernel
//! always lands on the same replica and the replicas' warm caches stay
//! disjoint. The merge never re-serializes predictions: result slots
//! are spliced out of the backend responses as raw byte slices, so a
//! routed batch is byte-identical to the same batch against a single
//! backend.

use gpufreq_serve::cache::key_hash;
use gpufreq_sim::Device;

/// The replica (index into the device's replica list) that owns
/// `source` on `device`. Pure: depends only on the arguments.
pub fn replica_for(device: Device, source: &str, replicas: usize) -> usize {
    if replicas <= 1 {
        return 0;
    }
    (key_hash(device, source) % replicas as u64) as usize
}

/// Split a batch across `replicas`: `result[r]` holds the indices of
/// the sources owned by replica `r`, in request order.
pub fn split_batch(device: Device, sources: &[String], replicas: usize) -> Vec<Vec<usize>> {
    let mut shards = vec![Vec::new(); replicas.max(1)];
    for (i, source) in sources.iter().enumerate() {
        shards[replica_for(device, source, replicas)].push(i);
    }
    shards
}

/// The fixed frame around a `predict_batch` response body (kept in
/// lockstep with the backend's serializer; `crate::server` has a
/// round-trip test against a live backend and the acceptance traces
/// pin it end-to-end).
fn batch_prefix(device_id: &str) -> String {
    format!("{{\"ok\":\"predict_batch\",\"device\":\"{device_id}\",\"results\":[")
}

/// Slice the raw result slots out of a backend `predict_batch`
/// response. Returns the slots as byte slices of `body` (no
/// re-serialization), or `None` if `body` is not a well-formed batch
/// response for `device_id`.
pub fn split_results<'b>(body: &'b str, device_id: &str) -> Option<Vec<&'b str>> {
    let rest = body.strip_prefix(batch_prefix(device_id).as_str())?;
    let rest = rest.strip_suffix("]}")?;
    if rest.is_empty() {
        return Some(Vec::new());
    }
    let mut slots = Vec::new();
    let (mut depth, mut start) = (0usize, 0usize);
    let (mut in_string, mut escaped) = (false, false);
    for (i, b) in rest.bytes().enumerate() {
        if in_string {
            match b {
                _ if escaped => escaped = false,
                b'\\' => escaped = true,
                b'"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth = depth.checked_sub(1)?,
            b',' if depth == 0 => {
                slots.push(&rest[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 || in_string {
        return None;
    }
    slots.push(&rest[start..]);
    Some(slots)
}

/// Assemble a `predict_batch` response from result slots in request
/// order. Slots are raw fragments (`{"prediction":...}` or
/// `{"error":...}`) spliced verbatim.
pub fn merge_batch(device_id: &str, slots: &[&str]) -> String {
    let mut body = batch_prefix(device_id);
    for (i, slot) in slots.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(slot);
    }
    body.push_str("]}");
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_choice_is_stable_and_in_range() {
        let sources = ["__global void a(){}", "kernel B", "kernel C", ""];
        for replicas in 1..=5 {
            for s in &sources {
                let r = replica_for(Device::TitanX, s, replicas);
                assert!(r < replicas);
                assert_eq!(r, replica_for(Device::TitanX, s, replicas));
            }
        }
        // One replica: everything lands on it.
        assert_eq!(replica_for(Device::TeslaP100, "anything", 1), 0);
    }

    #[test]
    fn split_batch_partitions_all_indices_in_order() {
        let sources: Vec<String> = (0..20).map(|i| format!("kernel {i}")).collect();
        let shards = split_batch(Device::TitanX, &sources, 3);
        assert_eq!(shards.len(), 3);
        let mut seen: Vec<usize> = shards.iter().flatten().copied().collect();
        for shard in &shards {
            assert!(shard.windows(2).all(|w| w[0] < w[1]), "{shard:?}");
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn results_split_and_merge_round_trip() {
        let body = "{\"ok\":\"predict_batch\",\"device\":\"titan-x\",\"results\":[\
                    {\"prediction\":{\"core\":[1,2]}},\
                    {\"error\":{\"code\":\"kernel\",\"message\":\"a, \\\"b\\\" {c}\"}},\
                    {\"prediction\":{\"core\":[]}}]}";
        let slots = split_results(body, "titan-x").unwrap();
        assert_eq!(slots.len(), 3);
        assert_eq!(slots[0], "{\"prediction\":{\"core\":[1,2]}}");
        assert!(slots[1].starts_with("{\"error\""));
        assert_eq!(merge_batch("titan-x", &slots), body);
    }

    #[test]
    fn empty_and_malformed_bodies() {
        let empty = "{\"ok\":\"predict_batch\",\"device\":\"titan-x\",\"results\":[]}";
        assert_eq!(split_results(empty, "titan-x"), Some(Vec::new()));
        assert_eq!(merge_batch("titan-x", &[]), empty);
        // Wrong device, wrong op, truncated: all rejected.
        assert_eq!(split_results(empty, "tesla-p100"), None);
        assert_eq!(split_results("{\"ok\":\"predict\"}", "titan-x"), None);
        assert_eq!(
            split_results(
                "{\"ok\":\"predict_batch\",\"device\":\"titan-x\",\"results\":[{\"x\":1}",
                "titan-x"
            ),
            None
        );
    }
}
