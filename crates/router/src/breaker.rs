//! Per-backend circuit breaker: a pure state machine over
//! [`CircuitState`], clocked by caller-supplied [`Instant`]s so it is
//! deterministic under test.
//!
//! Lifecycle: `Closed` → (N consecutive failures) → `Open` → (cooldown
//! elapses) → `HalfOpen`, which admits exactly one probe; the probe's
//! outcome goes back to `Closed` or `Open`. A failure while `HalfOpen`
//! re-opens immediately regardless of the consecutive-failure count —
//! a probe exists precisely to test a suspect backend, so its verdict
//! is final.
//!
//! "Failure" is anything that says the backend cannot take this
//! request: a connection or transport error, or a typed `overloaded`
//! response. Protocol-level errors the backend *computed* (bad
//! kernel, unknown device) are successes — the backend is healthy, the
//! request was wrong.

use std::time::{Duration, Instant};

use crate::wire::CircuitState;

/// What the breaker says about admitting one request right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Circuit closed: forward normally.
    Yes,
    /// Circuit half-open and this caller won the probe slot: forward,
    /// and the outcome decides the circuit's fate.
    Probe,
    /// Circuit open (or the probe slot is taken): reject without
    /// touching the backend.
    No,
}

/// The circuit breaker for one backend.
#[derive(Debug)]
pub struct Breaker {
    state: CircuitState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
    failure_threshold: u32,
    cooldown: Duration,
}

impl Breaker {
    /// A closed breaker that opens after `failure_threshold`
    /// consecutive failures and re-probes `cooldown` after opening.
    pub fn new(failure_threshold: u32, cooldown: Duration) -> Breaker {
        Breaker {
            state: CircuitState::Closed,
            consecutive_failures: 0,
            opened_at: None,
            probe_in_flight: false,
            failure_threshold: failure_threshold.max(1),
            cooldown,
        }
    }

    /// Current state (for stats snapshots).
    pub fn state(&self) -> CircuitState {
        self.state
    }

    /// Ask to admit one request at time `now`. An [`Admit::Probe`]
    /// grant claims the single half-open probe slot; the caller *must*
    /// follow up with [`record_success`](Breaker::record_success) or
    /// [`record_failure`](Breaker::record_failure).
    pub fn admit(&mut self, now: Instant) -> Admit {
        match self.state {
            CircuitState::Closed => Admit::Yes,
            CircuitState::Open => {
                let cooled = self
                    .opened_at
                    .is_none_or(|at| now.duration_since(at) >= self.cooldown);
                if cooled && !self.probe_in_flight {
                    self.state = CircuitState::HalfOpen;
                    self.probe_in_flight = true;
                    Admit::Probe
                } else {
                    Admit::No
                }
            }
            CircuitState::HalfOpen => {
                if self.probe_in_flight {
                    Admit::No
                } else {
                    self.probe_in_flight = true;
                    Admit::Probe
                }
            }
        }
    }

    /// A forwarded request (probe or not) completed successfully:
    /// close the circuit and reset the failure streak.
    pub fn record_success(&mut self) {
        self.state = CircuitState::Closed;
        self.consecutive_failures = 0;
        self.opened_at = None;
        self.probe_in_flight = false;
    }

    /// A forwarded request failed at time `now`: extend the streak,
    /// and open the circuit if the streak crosses the threshold or a
    /// half-open probe just failed.
    pub fn record_failure(&mut self, now: Instant) {
        let probing = self.state == CircuitState::HalfOpen;
        self.probe_in_flight = false;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if probing || self.consecutive_failures >= self.failure_threshold {
            self.state = CircuitState::Open;
            self.opened_at = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> Breaker {
        Breaker::new(3, Duration::from_millis(100))
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let mut b = breaker();
        let t = Instant::now();
        b.record_failure(t);
        b.record_failure(t);
        assert_eq!(b.state(), CircuitState::Closed);
        b.record_failure(t);
        assert_eq!(b.state(), CircuitState::Open);
        assert_eq!(b.admit(t), Admit::No);
    }

    #[test]
    fn a_success_resets_the_streak() {
        let mut b = breaker();
        let t = Instant::now();
        b.record_failure(t);
        b.record_failure(t);
        b.record_success();
        b.record_failure(t);
        b.record_failure(t);
        assert_eq!(b.state(), CircuitState::Closed);
    }

    #[test]
    fn cooldown_admits_exactly_one_probe() {
        let mut b = breaker();
        let t = Instant::now();
        for _ in 0..3 {
            b.record_failure(t);
        }
        // Before cooldown: rejected.
        assert_eq!(b.admit(t + Duration::from_millis(50)), Admit::No);
        // After: one probe, second caller still rejected.
        let later = t + Duration::from_millis(150);
        assert_eq!(b.admit(later), Admit::Probe);
        assert_eq!(b.state(), CircuitState::HalfOpen);
        assert_eq!(b.admit(later), Admit::No);
    }

    #[test]
    fn probe_outcome_closes_or_reopens() {
        let t = Instant::now();
        let later = t + Duration::from_millis(150);

        let mut ok = breaker();
        for _ in 0..3 {
            ok.record_failure(t);
        }
        assert_eq!(ok.admit(later), Admit::Probe);
        ok.record_success();
        assert_eq!(ok.state(), CircuitState::Closed);
        assert_eq!(ok.admit(later), Admit::Yes);

        let mut bad = breaker();
        for _ in 0..3 {
            bad.record_failure(t);
        }
        assert_eq!(bad.admit(later), Admit::Probe);
        bad.record_failure(later);
        assert_eq!(bad.state(), CircuitState::Open);
        // The clock restarts from the failed probe.
        assert_eq!(bad.admit(later + Duration::from_millis(50)), Admit::No);
        assert_eq!(bad.admit(later + Duration::from_millis(150)), Admit::Probe);
    }
}
