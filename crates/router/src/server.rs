//! The router core: client-facing listeners (JSON-lines + HTTP
//! gateway), request dispatch, and response aggregation.
//!
//! The router owns client connections and fans requests out to backend
//! daemons over the same line protocol clients speak — it computes no
//! predictions itself. Routing is two-level: the request's `device`
//! picks the shard, and `key_hash(device, source)` picks the replica
//! within the shard so each replica's warm front cache stays disjoint.
//! Single-shard traffic is forwarded as the **raw request line** and
//! relayed verbatim; only a batch that genuinely splits across
//! replicas is re-framed, and its merged response splices the
//! backends' raw result slots so the bytes match a single-backend run
//! exactly.

use std::io::{self, Read, Write};
use std::net::{IpAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::Scope;
use std::time::{Duration, Instant};

use gpufreq_obs::{trace, Exposition, Histogram, SpanRecorder, StageSet, TraceLog};
use gpufreq_serve::http::Gateway;
use gpufreq_serve::protocol::{ErrorBody, ErrorCode, Request, Response, ServerStats};
use gpufreq_serve::server::{MAX_LINE_BYTES, READ_POLL};
use gpufreq_serve::{build_rev, LineClient};
use gpufreq_sim::Device;

use crate::backend::{Backend, CallError};
use crate::config::RouterConfig;
use crate::route::{merge_batch, replica_for, split_batch, split_results};
use crate::wire::{RouterCounters, RouterSnapshot};

/// How long the accept loops sleep when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// The router's per-stage span names, in request order: shard/replica
/// selection, fresh backend dials, the backend exchange, and batch
/// response splicing. Each gets a latency histogram in `/metrics`.
pub const ROUTER_STAGE_NAMES: [&str; 4] = ["pick", "connect", "roundtrip", "merge"];

/// Which protocol an accepted connection speaks.
#[derive(Debug, Clone, Copy)]
enum ConnKind {
    Line,
    Http,
}

/// Why the router could not start.
#[derive(Debug)]
pub enum RouterError {
    /// No `--backend` was given.
    NoBackends,
    /// A backend without an explicit device list could not be asked
    /// for one at startup.
    Discovery {
        /// The unreachable backend's address.
        addr: String,
        /// What went wrong.
        error: String,
    },
    /// No backend serves any known device.
    NoDevices,
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::NoBackends => f.write_str("no backends configured"),
            RouterError::Discovery { addr, error } => write!(
                f,
                "backend `{addr}` has no device list and discovery failed: {error} \
                 (pin devices with --backend {addr}=<device,...> to defer the connection)"
            ),
            RouterError::NoDevices => f.write_str("no backend serves any known device"),
        }
    }
}

impl std::error::Error for RouterError {}

/// The device-sharded router. Shared across connection threads by
/// reference; all interior state is synchronized.
pub struct Router {
    backends: Vec<Backend>,
    /// `(device, replica indices into backends)`, in [`Device::all`]
    /// order; only devices with at least one replica appear.
    shards: Vec<(Device, Vec<usize>)>,
    max_connections: usize,
    probe_interval: Duration,
    active_connections: AtomicUsize,
    shutting_down: AtomicBool,
    routed: AtomicU64,
    retried: AtomicU64,
    broken_circuit: AtomicU64,
    malformed: AtomicU64,
    /// When the router started (uptime in healthz/metrics).
    started: Instant,
    /// Per-stage latency histograms ([`ROUTER_STAGE_NAMES`]); shared
    /// with the backends so fresh dials record `connect` spans.
    stages: Arc<StageSet>,
    /// Whole-request latency (line read to response body ready).
    latency: Histogram,
    /// Optional slow-request/error log (`--trace-log`).
    trace_log: Option<Arc<TraceLog>>,
}

impl Router {
    /// Build a router over `config.backends`. Backends with explicit
    /// device lists are taken on faith (their circuits handle
    /// unreachability); a backend without one is asked via a `devices`
    /// probe, and the router refuses to start if that fails.
    pub fn new(config: RouterConfig) -> Result<Router, RouterError> {
        if config.backends.is_empty() {
            return Err(RouterError::NoBackends);
        }
        let mut backends = Vec::with_capacity(config.backends.len());
        for spec in &config.backends {
            let (devices, info) = if spec.devices.is_empty() {
                let info = discover(&spec.addr, config.read_timeout).map_err(|error| {
                    RouterError::Discovery {
                        addr: spec.addr.clone(),
                        error,
                    }
                })?;
                let devices = info
                    .iter()
                    .filter_map(|i| i.id.parse::<Device>().ok())
                    .collect::<Vec<_>>();
                (devices, Some(info))
            } else {
                (spec.devices.clone(), None)
            };
            backends.push(Backend::new(spec.addr.clone(), devices, info, &config));
        }
        let shards: Vec<(Device, Vec<usize>)> = Device::all()
            .into_iter()
            .filter_map(|device| {
                let replicas: Vec<usize> = backends
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.devices().contains(&device))
                    .map(|(i, _)| i)
                    .collect();
                (!replicas.is_empty()).then_some((device, replicas))
            })
            .collect();
        if shards.is_empty() {
            return Err(RouterError::NoDevices);
        }
        let stages = Arc::new(StageSet::new(&ROUTER_STAGE_NAMES));
        for backend in &backends {
            backend.attach_stages(Arc::clone(&stages));
        }
        Ok(Router {
            backends,
            shards,
            max_connections: config.max_connections.max(1),
            probe_interval: config.probe_interval,
            active_connections: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            routed: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            broken_circuit: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            started: Instant::now(),
            stages,
            latency: Histogram::new(),
            trace_log: None,
        })
    }

    /// Attach a slow-request/error trace log. Call before serving.
    pub fn set_trace_log(&mut self, log: Arc<TraceLog>) {
        self.trace_log = Some(log);
    }

    /// The devices the router serves, in shard order.
    pub fn devices(&self) -> Vec<Device> {
        self.shards.iter().map(|(d, _)| *d).collect()
    }

    /// The backends, in `--backend` argument order.
    pub(crate) fn backends(&self) -> &[Backend] {
        &self.backends
    }

    /// Whether a shutdown request has been observed.
    pub fn is_shutting_down(&self) -> bool {
        // ordering: a monotonic latch; observers only need to
        // eventually see `true`, and every control-flow consequence is
        // local to the observing thread.
        self.shutting_down.load(Ordering::Relaxed)
    }

    /// Latch the shutdown flag (idempotent). Backends keep running —
    /// only the router drains.
    pub fn initiate_shutdown(&self) {
        // ordering: see `is_shutting_down` — a monotonic latch.
        self.shutting_down.store(true, Ordering::Relaxed);
    }

    /// Router-level counters plus per-backend health.
    pub fn snapshot(&self) -> RouterSnapshot {
        RouterSnapshot {
            counters: RouterCounters {
                routed: count(&self.routed),
                retried: count(&self.retried),
                broken_circuit: count(&self.broken_circuit),
                malformed: count(&self.malformed),
            },
            backends: self.backends.iter().map(|b| b.snapshot()).collect(),
        }
    }

    /// Resolve a request's device id to its shard, with the same typed
    /// errors (and bytes) a backend answers for unknown/unserved ids.
    fn resolve(&self, id: &str) -> Result<(Device, &[usize]), ErrorBody> {
        let device: Device = id.parse().map_err(|e| ErrorBody::unknown_device(&e))?;
        self.shards
            .iter()
            .find(|(d, _)| *d == device)
            .map(|(d, replicas)| (*d, replicas.as_slice()))
            .ok_or_else(|| ErrorBody::device_not_served(device, &self.devices()))
    }

    /// Handle one raw protocol line to its response line.
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_line_from(line, None)
    }

    /// [`Router::handle_line`] with the client address for the trace
    /// log. Extracts the optional trace id, times the whole request,
    /// and records per-stage spans through [`Router::finish`].
    fn handle_line_from(&self, line: &str, peer: Option<IpAddr>) -> String {
        let accepted = Instant::now();
        let trace = trace::extract(line).map(str::to_string);
        let trace_id = trace.as_deref();
        let mut rec = SpanRecorder::start();
        let (op, body) = match Request::parse(line) {
            Ok(request) => (
                request.op(),
                self.dispatch(&request, Some(line), trace_id, &mut rec),
            ),
            Err(error) => {
                // ordering: see `snapshot` — monotonic counter.
                self.malformed.fetch_add(1, Ordering::Relaxed);
                ("invalid", error.into_response().to_json())
            }
        };
        self.finish(op, trace_id, accepted, &rec, peer, body)
    }

    /// Finish one request: record the whole-request latency, absorb
    /// the recorder's spans into the per-stage histograms, write the
    /// slow/error log record, and echo the trace id onto the body
    /// unless a backend already did (relayed bodies arrive traced).
    fn finish(
        &self,
        op: &str,
        trace_id: Option<&str>,
        accepted: Instant,
        rec: &SpanRecorder,
        peer: Option<IpAddr>,
        body: String,
    ) -> String {
        let total_us = accepted.elapsed().as_micros() as u64;
        self.latency.observe_us(total_us);
        self.stages.absorb(rec);
        if let Some(log) = &self.trace_log {
            let error = error_code_of(&body);
            if log.qualifies(total_us, error.is_some()) {
                let minted;
                let id = match trace_id {
                    Some(id) => id,
                    None => {
                        minted = trace::mint();
                        &minted
                    }
                };
                let peer = peer.map(|p| p.to_string());
                log.write(&gpufreq_obs::TraceRecord {
                    component: "router",
                    trace: id,
                    op,
                    total_us,
                    stages: rec.spans(),
                    error,
                    peer: peer.as_deref(),
                });
            }
        }
        match trace_id {
            Some(id) if trace::extract(&body) != Some(id) => trace::attach(&body, id),
            _ => body,
        }
    }

    /// Dispatch a parsed request. `raw` is the original wire line when
    /// the request arrived on the line protocol — single-shard ops
    /// forward it verbatim; the HTTP gateway passes `None` and the
    /// forwarded line is re-framed from the typed request (the same
    /// serializer both ends use, so the bytes cannot differ), with the
    /// trace id attached so the backend's log carries the same id.
    fn dispatch(
        &self,
        request: &Request,
        raw: Option<&str>,
        trace_id: Option<&str>,
        rec: &mut SpanRecorder,
    ) -> String {
        let framed;
        let line = match raw {
            Some(line) => line,
            None => {
                let json = request.to_json();
                framed = match trace_id {
                    Some(id) => trace::attach(&json, id),
                    None => json,
                };
                &framed
            }
        };
        match request {
            Request::Predict { device, source } => self.route_predict(device, source, line, rec),
            Request::PredictBatch { device, sources } => {
                self.route_batch(device, sources, line, trace_id, rec)
            }
            Request::Devices => self.devices_body(),
            Request::Stats => self.stats_body(),
            Request::Metrics => Response::Metrics {
                exposition: self.exposition(),
            }
            .to_json(),
            Request::Reload { device, .. } => self.reload_body(device, line),
            Request::Shutdown => {
                self.initiate_shutdown();
                Response::Shutdown.to_json()
            }
        }
    }

    /// Forward `line` to the replica owning it, failing over to the
    /// other replicas in ring order. Returns the backend's raw
    /// response, a relayed `overloaded` if every live replica said so,
    /// or a synthesized `overloaded` when none could be reached.
    ///
    /// The answered exchange is recorded as a `roundtrip` span — into
    /// `rec` when the caller threads one, or straight into the shared
    /// histograms from batch fan-out threads (which cannot share the
    /// request's recorder without double-counting on absorb).
    fn call_replicas(
        &self,
        device: Device,
        replicas: &[usize],
        owner: usize,
        line: &str,
        mut rec: Option<&mut SpanRecorder>,
    ) -> String {
        let mut overloaded = None;
        for attempt in 0..replicas.len() {
            if attempt > 0 {
                // ordering: see `snapshot` — monotonic counter.
                self.retried.fetch_add(1, Ordering::Relaxed);
            }
            let idx = replicas[(owner + attempt) % replicas.len()];
            let exchange = Instant::now();
            match self.backends[idx].call(line) {
                Ok(response) => {
                    let us = exchange.elapsed().as_micros() as u64;
                    match rec.as_deref_mut() {
                        Some(rec) => rec.record_us("roundtrip", us),
                        None => self.stages.observe_us("roundtrip", us),
                    }
                    // ordering: see `snapshot` — monotonic counter.
                    self.routed.fetch_add(1, Ordering::Relaxed);
                    return response;
                }
                Err(CallError::Overloaded(response)) => overloaded = Some(response),
                Err(CallError::Broken) => {
                    // ordering: see `snapshot` — monotonic counter.
                    self.broken_circuit.fetch_add(1, Ordering::Relaxed);
                }
                Err(CallError::Busy) | Err(CallError::Io(_)) => {}
            }
        }
        overloaded.unwrap_or_else(|| Backend::all_unavailable(device))
    }

    fn route_predict(
        &self,
        device_id: &str,
        source: &str,
        line: &str,
        rec: &mut SpanRecorder,
    ) -> String {
        let pick = Instant::now();
        let resolved = self.resolve(device_id);
        rec.record_us("pick", pick.elapsed().as_micros() as u64);
        match resolved {
            Ok((device, replicas)) => {
                let owner = replica_for(device, source, replicas.len());
                self.call_replicas(device, replicas, owner, line, Some(rec))
            }
            Err(error) => error.into_response().to_json(),
        }
    }

    fn route_batch(
        &self,
        device_id: &str,
        sources: &[String],
        line: &str,
        trace_id: Option<&str>,
        rec: &mut SpanRecorder,
    ) -> String {
        let pick = Instant::now();
        let resolved = self.resolve(device_id);
        let (device, replicas) = match resolved {
            Ok(resolved) => resolved,
            Err(error) => {
                rec.record_us("pick", pick.elapsed().as_micros() as u64);
                return error.into_response().to_json();
            }
        };
        let shards = split_batch(device, sources, replicas.len());
        let occupied: Vec<usize> = (0..shards.len())
            .filter(|&r| !shards[r].is_empty())
            .collect();
        rec.record_us("pick", pick.elapsed().as_micros() as u64);
        // One replica owns everything (or the batch is empty): forward
        // the raw line, relay the raw response.
        if occupied.len() <= 1 {
            let owner = occupied.first().copied().unwrap_or(0);
            return self.call_replicas(device, replicas, owner, line, Some(rec));
        }
        // Genuinely split: re-frame one sub-batch per occupied replica
        // (tagged with the request's trace id so the backends' logs
        // carry it), fan out concurrently, splice the raw result slots
        // back in request order.
        let mut responses: Vec<Option<String>> = vec![None; occupied.len()];
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(occupied.len());
            for &replica in &occupied {
                let sub = Request::PredictBatch {
                    device: device.id().to_string(),
                    sources: shards[replica]
                        .iter()
                        .map(|&i| sources[i].clone())
                        .collect(),
                };
                let sub_line = {
                    let json = sub.to_json();
                    match trace_id {
                        Some(id) => trace::attach(&json, id),
                        None => json,
                    }
                };
                handles.push(
                    scope.spawn(move || {
                        self.call_replicas(device, replicas, replica, &sub_line, None)
                    }),
                );
            }
            for (slot, handle) in handles.into_iter().enumerate() {
                // analyze:allow(panic-in-request-path, reason = "join() only errors if the fan-out thread panicked; re-raising is the faithful report")
                responses[slot] = Some(handle.join().expect("batch fan-out thread panicked"));
            }
        });
        let merge = Instant::now();
        // Backends echo the trace id we attached onto each sub-response;
        // detach before splicing so the merged bytes stay identical to a
        // single-backend run (`finish` re-attaches the id once, at the end).
        let responses: Vec<Option<String>> = responses
            .into_iter()
            .map(|r| {
                r.map(|r| match trace::detach(&r) {
                    Some((restored, _)) => restored,
                    None => r,
                })
            })
            .collect();
        let mut slots: Vec<&str> = vec![""; sources.len()];
        for (slot, &replica) in occupied.iter().enumerate() {
            let Some(response) = responses[slot].as_deref() else {
                return Backend::all_unavailable(device);
            };
            match split_results(response, device.id()) {
                Some(parts) if parts.len() == shards[replica].len() => {
                    for (k, &i) in shards[replica].iter().enumerate() {
                        slots[i] = parts[k];
                    }
                }
                // An error line (overloaded, shutting_down, ...) or a
                // malformed body: a single backend would have answered
                // the whole batch with it, so relay it whole.
                _ => return response.to_string(),
            }
        }
        let merged = merge_batch(device.id(), &slots);
        rec.record_us("merge", merge.elapsed().as_micros() as u64);
        merged
    }

    /// Aggregate `devices`: one entry per served device in shard
    /// order, taken from the health probes' cached inventories (with
    /// an on-demand probe before giving up). Serialized through the
    /// same [`Response::Devices`] writer the backends use.
    fn devices_body(&self) -> String {
        let mut devices = Vec::with_capacity(self.shards.len());
        for (device, replicas) in &self.shards {
            let cached = replicas.iter().find_map(|&idx| {
                self.backends[idx]
                    .info()
                    .and_then(|list| list.into_iter().find(|i| i.id == device.id()))
            });
            let probed = cached.or_else(|| {
                replicas.iter().find_map(|&idx| {
                    self.backends[idx]
                        .probe()
                        .and_then(|list| list.into_iter().find(|i| i.id == device.id()))
                })
            });
            match probed {
                Some(info) => devices.push(info),
                None => return Backend::all_unavailable(*device),
            }
        }
        Response::Devices { devices }.to_json()
    }

    /// Aggregate `stats`: sum the reachable backends' snapshots
    /// (percentiles take the max — a sum of quantiles means nothing)
    /// and append the router's own section to the response object.
    fn stats_body(&self) -> String {
        let mut total = zero_stats();
        for backend in &self.backends {
            if let Ok(response) = backend.call(&Request::Stats.to_json()) {
                if let Ok(Response::Stats { stats }) = Response::parse(&response) {
                    add_stats(&mut total, &stats);
                }
            }
        }
        let mut body = Response::Stats {
            stats: Box::new(total),
        }
        .to_json();
        let section =
            serde_json::to_string(&self.snapshot().to_value()).unwrap_or_else(|_| "{}".to_string());
        // Splice `"router":{...}` into the top-level response object.
        body.truncate(body.len().saturating_sub(1));
        body.push_str(",\"router\":");
        body.push_str(&section);
        body.push('}');
        body
    }

    /// Render the router's Prometheus-style text exposition: routing
    /// counters, per-backend health gauges, the whole-request latency
    /// histogram, and one histogram per routing stage
    /// ([`ROUTER_STAGE_NAMES`]). Served by `GET /metrics` on the HTTP
    /// gateway and (JSON-wrapped) by the `metrics` line verb. Probe
    /// traffic appears only in `gpufreq_backend_probes`.
    pub fn exposition(&self) -> String {
        let snap = self.snapshot();
        let c = &snap.counters;
        let mut x = Exposition::new();
        x.info(
            "gpufreq_build_info",
            "Build metadata.",
            &[("component", "router"), ("build", build_rev())],
        );
        x.gauge(
            "gpufreq_uptime_seconds",
            "Seconds since the process started.",
            self.started.elapsed().as_secs(),
        );
        x.counter(
            "gpufreq_router_routed_total",
            "Requests successfully forwarded to a backend.",
            c.routed,
        );
        x.counter(
            "gpufreq_router_retried_total",
            "Failover attempts to another replica.",
            c.retried,
        );
        x.counter(
            "gpufreq_router_broken_circuit_total",
            "Requests turned away from a backend by an open circuit.",
            c.broken_circuit,
        );
        x.counter(
            "gpufreq_router_malformed_total",
            "Lines or HTTP bodies that failed to parse at the router.",
            c.malformed,
        );
        x.gauge(
            "gpufreq_connections_active",
            "Connections currently served.",
            // ordering: see `claim_connection_slot` — a bare counter.
            self.active_connections.load(Ordering::Relaxed) as u64,
        );
        type BackendMetric = fn(&crate::wire::BackendSnapshot) -> u64;
        let per_backend: [(&str, &str, BackendMetric); 4] = [
            (
                "gpufreq_backend_requests",
                "Client requests forwarded per backend (probes excluded).",
                |b| b.requests,
            ),
            (
                "gpufreq_backend_probes",
                "Health probes sent per backend.",
                |b| b.probes,
            ),
            (
                "gpufreq_backend_failures",
                "Transport failures and `overloaded` rejections per backend.",
                |b| b.failures,
            ),
            (
                "gpufreq_backend_in_flight",
                "Requests currently outstanding per backend.",
                |b| b.in_flight,
            ),
        ];
        for (name, help, value) in per_backend {
            for (i, b) in snap.backends.iter().enumerate() {
                x.labeled_gauge(
                    name,
                    (i == 0).then_some(help),
                    &[("backend", &b.addr)],
                    value(b),
                );
            }
        }
        x.histogram_us(
            "gpufreq_request_latency_us",
            "Whole-request routing latency (line read to response body ready).",
            &self.latency.snapshot(),
        );
        for (name, h) in self.stages.iter() {
            x.histogram_us(
                &format!("gpufreq_stage_{name}_latency_us"),
                &format!("Latency of the `{name}` routing stage."),
                &h.snapshot(),
            );
        }
        if let Some(log) = &self.trace_log {
            x.counter(
                "gpufreq_trace_log_written_total",
                "Slow/error records written to the trace log.",
                log.written(),
            );
            x.counter(
                "gpufreq_trace_log_dropped_total",
                "Trace-log records dropped (rate limit or I/O errors).",
                log.dropped(),
            );
        }
        x.finish()
    }

    /// Fan a `reload` to every replica of the device, sequentially and
    /// in replica order. The first error (typed or transport) is
    /// relayed/reported immediately — replicas reloaded before it stay
    /// on the new model, which the error message says out loud.
    fn reload_body(&self, device_id: &str, line: &str) -> String {
        let (device, replicas) = match self.resolve(device_id) {
            Ok(resolved) => resolved,
            Err(error) => return error.into_response().to_json(),
        };
        let mut first = None;
        for &idx in replicas {
            match self.backends[idx].call(line) {
                Ok(response) if response.starts_with("{\"error\":") => return response,
                Ok(response) => {
                    if first.is_none() {
                        first = Some(response);
                    }
                }
                Err(_) => {
                    return ErrorBody::new(
                        ErrorCode::ReloadFailed,
                        format!(
                            "replica `{}` unreachable during reload; replicas of `{}` may now disagree",
                            self.backends[idx].addr(),
                            device.id()
                        ),
                    )
                    .into_response()
                    .to_json();
                }
            };
        }
        match first {
            Some(response) => response,
            None => Backend::all_unavailable(device),
        }
    }

    /// Serve one JSON-lines connection: a manual bounded line pump.
    /// Requests are handled sequentially, so responses are in order by
    /// construction. An over-long line is answered with the same typed
    /// `bad_request` the backends use, and the excess is discarded
    /// until the next newline.
    fn line_connection(&self, stream: TcpStream, peer: IpAddr) {
        let setup = (|| -> io::Result<TcpStream> {
            stream.set_nonblocking(false)?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(READ_POLL))?;
            stream.try_clone()
        })();
        let mut writer = match setup {
            Ok(writer) => writer,
            Err(e) => {
                self.note_conn_setup_failure(&e);
                return;
            }
        };
        let mut reader = stream;
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 64 * 1024];
        let mut discarding = false;
        loop {
            if self.is_shutting_down() {
                return;
            }
            let n = match reader.read(&mut chunk) {
                Ok(0) => return,
                Ok(n) => n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            buf.extend_from_slice(&chunk[..n]);
            let mut start = 0usize;
            while let Some(pos) = buf[start..].iter().position(|&b| b == b'\n') {
                let end = start + pos;
                let line = &buf[start..end];
                start = end + 1;
                if discarding {
                    // The tail of an over-long line (already
                    // answered); swallow it.
                    discarding = false;
                    continue;
                }
                let response = match std::str::from_utf8(line) {
                    Ok(text) if text.trim().is_empty() => continue,
                    Ok(text) => self.handle_line_from(text.trim_end_matches('\r'), Some(peer)),
                    Err(_) => {
                        // ordering: see `snapshot` — monotonic counter.
                        self.malformed.fetch_add(1, Ordering::Relaxed);
                        ErrorBody::new(
                            ErrorCode::BadRequest,
                            "request line is not valid UTF-8".to_string(),
                        )
                        .into_response()
                        .to_json()
                    }
                };
                if write_line(&mut writer, &response).is_err() {
                    return;
                }
            }
            buf.drain(..start);
            if discarding {
                // Still inside the over-long line (already answered):
                // drop the bytes instead of accumulating them.
                buf.clear();
            } else if buf.len() > MAX_LINE_BYTES {
                buf.clear();
                discarding = true;
                // ordering: see `snapshot` — monotonic counter.
                self.malformed.fetch_add(1, Ordering::Relaxed);
                let response = ErrorBody::new(
                    ErrorCode::BadRequest,
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                )
                .into_response()
                .to_json();
                if write_line(&mut writer, &response).is_err() {
                    return;
                }
            }
        }
    }

    fn note_conn_setup_failure(&self, error: &io::Error) {
        static LOGGED: std::sync::Once = std::sync::Once::new();
        LOGGED.call_once(|| {
            eprintln!(
                "[gpufreq-router] dropping connection: socket setup failed: {error} \
                 (further occurrences not logged)"
            );
        });
    }

    /// Claim a slot under the connection cap (the decrement happens
    /// when the connection thread exits).
    fn claim_connection_slot(&self) -> bool {
        let claim = |n: usize| (n < self.max_connections).then_some(n + 1);
        let gate = &self.active_connections;
        // ordering: a self-contained gate counter (same argument as
        // the serve daemon's): no memory is published through it, and
        // the CAS alone keeps the cap exact.
        gate.fetch_update(Ordering::Relaxed, Ordering::Relaxed, claim)
            .is_ok()
    }

    /// Refuse a connection over the cap with a best-effort typed
    /// `overloaded` (line or HTTP 503 by listener), never blocking the
    /// acceptor.
    fn refuse_connection(&self, mut stream: TcpStream, kind: ConnKind) {
        let body = ErrorBody::new(
            ErrorCode::Overloaded,
            format!(
                "connection cap reached ({} active); retry later",
                self.max_connections
            ),
        )
        .into_response()
        .to_json();
        let payload = match kind {
            ConnKind::Line => format!("{body}\n"),
            ConnKind::Http => gpufreq_serve::http::refusal_payload(&body),
        };
        stream.set_nonblocking(true).ok();
        let _ = stream.write_all(payload.as_bytes());
    }

    fn dispatch_connection<'scope, 'env>(
        &'env self,
        scope: &'scope Scope<'scope, 'env>,
        stream: TcpStream,
        peer: IpAddr,
        kind: ConnKind,
    ) {
        if !self.claim_connection_slot() {
            self.refuse_connection(stream, kind);
            return;
        }
        scope.spawn(move || {
            match kind {
                ConnKind::Line => self.line_connection(stream, peer),
                ConnKind::Http => gpufreq_serve::http::serve_http_connection(self, stream, peer),
            }
            // ordering: see `claim_connection_slot` — a bare counter.
            self.active_connections.fetch_sub(1, Ordering::Relaxed);
        });
    }

    fn accept_loop<'scope, 'env>(
        &'env self,
        scope: &'scope Scope<'scope, 'env>,
        listener: &TcpListener,
        kind: ConnKind,
    ) {
        loop {
            if self.is_shutting_down() {
                break;
            }
            match listener.accept() {
                Ok((stream, peer)) => self.dispatch_connection(scope, stream, peer.ip(), kind),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    eprintln!("[gpufreq-router] accept error: {e}");
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
    }

    /// Serve JSON-lines connections on `listener` until a `shutdown`
    /// request arrives, then return the final router snapshot. The
    /// backends are left running.
    pub fn serve(&self, listener: TcpListener) -> io::Result<RouterSnapshot> {
        self.serve_with_http(listener, None)
    }

    /// Like [`serve`](Router::serve), with an optional HTTP gateway
    /// listener sharing the connection cap and the backends.
    pub fn serve_with_http(
        &self,
        listener: TcpListener,
        http: Option<TcpListener>,
    ) -> io::Result<RouterSnapshot> {
        listener.set_nonblocking(true)?;
        if let Some(h) = &http {
            h.set_nonblocking(true)?;
        }
        std::thread::scope(|scope| {
            scope.spawn(|| crate::health::run(self, self.probe_interval));
            if let Some(http) = &http {
                scope.spawn(move || self.accept_loop(scope, http, ConnKind::Http));
            }
            self.accept_loop(scope, &listener, ConnKind::Line);
        });
        Ok(self.snapshot())
    }
}

impl Gateway for Router {
    fn execute(&self, request: Request, peer: IpAddr, trace: Option<&str>) -> String {
        let accepted = Instant::now();
        let mut rec = SpanRecorder::start();
        let body = self.dispatch(&request, None, trace, &mut rec);
        self.finish(request.op(), trace, accepted, &rec, Some(peer), body)
    }

    fn shutting_down(&self) -> bool {
        self.is_shutting_down()
    }

    fn exposition(&self) -> String {
        Router::exposition(self)
    }

    fn health_body(&self) -> String {
        format!(
            "{{\"ok\":\"healthz\",\"router\":{{\"uptime_s\":{},\"build\":\"{}\",\"backends\":{}}}}}",
            self.started.elapsed().as_secs(),
            build_rev(),
            self.backends.len(),
        )
    }

    fn malformed(&self, error: ErrorBody) -> String {
        // ordering: see `Router::snapshot` — monotonic counter.
        self.malformed.fetch_add(1, Ordering::Relaxed);
        error.into_response().to_json()
    }

    fn note_setup_failure(&self, error: &io::Error) {
        self.note_conn_setup_failure(error);
    }
}

/// Load one router counter for a snapshot.
fn count(counter: &AtomicU64) -> u64 {
    // ordering: independent monotonic counters; a snapshot tolerates
    // skew between them.
    counter.load(Ordering::Relaxed)
}

fn write_line(writer: &mut TcpStream, response: &str) -> io::Result<()> {
    writer.write_all(response.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Ask `addr` what it serves (startup discovery for backends given
/// without a device list).
fn discover(
    addr: &str,
    read_timeout: Option<Duration>,
) -> Result<Vec<gpufreq_serve::protocol::DeviceInfo>, String> {
    let mut client = LineClient::connect(addr).map_err(|e| e.to_string())?;
    client
        .set_read_timeout(read_timeout)
        .map_err(|e| e.to_string())?;
    let response = client
        .request(&Request::Devices)
        .map_err(|e| e.to_string())?;
    match Response::parse(&response) {
        Ok(Response::Devices { devices }) => Ok(devices),
        Ok(other) => Err(format!("unexpected devices response: {}", other.to_json())),
        Err(e) => Err(format!("unparseable devices response: {e}")),
    }
}

/// An all-zero [`ServerStats`] to accumulate backend snapshots into.
fn zero_stats() -> ServerStats {
    ServerStats {
        requests: gpufreq_serve::protocol::RequestCounts {
            total: 0,
            predict: 0,
            predict_batch: 0,
            batch_kernels: 0,
            devices: 0,
            stats: 0,
            metrics: 0,
            shutdown: 0,
            errors: 0,
            rejected: 0,
            reload: 0,
            rejected_p99: 0,
            rejected_quota: 0,
        },
        front_cache: zero_cache(),
        analysis_cache: zero_cache(),
        queue: gpufreq_serve::protocol::QueueStats {
            depth: 0,
            capacity: 0,
        },
        workers: 0,
        latency_us: gpufreq_serve::protocol::LatencyStats {
            count: 0,
            p50: 0,
            p95: 0,
            p99: 0,
            max: 0,
        },
        connections: gpufreq_serve::protocol::ConnectionStats {
            opened: 0,
            closed: 0,
            refused: 0,
            failed: 0,
            active: 0,
        },
        server: gpufreq_serve::protocol::ServerInfo {
            uptime_s: 0,
            build: String::new(),
            slots: Vec::new(),
        },
    }
}

fn zero_cache() -> gpufreq_serve::protocol::CacheStats {
    gpufreq_serve::protocol::CacheStats {
        hits: 0,
        misses: 0,
        evictions: 0,
        len: 0,
        capacity: 0,
    }
}

/// Accumulate one backend's stats: counters and gauges sum;
/// latency percentiles take the max (a sum of quantiles would be
/// meaningless across independent daemons).
fn add_stats(total: &mut ServerStats, stats: &ServerStats) {
    let r = (&mut total.requests, &stats.requests);
    r.0.total += r.1.total;
    r.0.predict += r.1.predict;
    r.0.predict_batch += r.1.predict_batch;
    r.0.batch_kernels += r.1.batch_kernels;
    r.0.devices += r.1.devices;
    r.0.stats += r.1.stats;
    r.0.metrics += r.1.metrics;
    r.0.shutdown += r.1.shutdown;
    r.0.errors += r.1.errors;
    r.0.rejected += r.1.rejected;
    r.0.reload += r.1.reload;
    r.0.rejected_p99 += r.1.rejected_p99;
    r.0.rejected_quota += r.1.rejected_quota;
    for (t, s) in [
        (&mut total.front_cache, &stats.front_cache),
        (&mut total.analysis_cache, &stats.analysis_cache),
    ] {
        t.hits += s.hits;
        t.misses += s.misses;
        t.evictions += s.evictions;
        t.len += s.len;
        t.capacity += s.capacity;
    }
    total.queue.depth += stats.queue.depth;
    total.queue.capacity += stats.queue.capacity;
    total.workers += stats.workers;
    total.latency_us.count += stats.latency_us.count;
    total.latency_us.p50 = total.latency_us.p50.max(stats.latency_us.p50);
    total.latency_us.p95 = total.latency_us.p95.max(stats.latency_us.p95);
    total.latency_us.p99 = total.latency_us.p99.max(stats.latency_us.p99);
    total.latency_us.max = total.latency_us.max.max(stats.latency_us.max);
    total.connections.opened += stats.connections.opened;
    total.connections.closed += stats.connections.closed;
    total.connections.refused += stats.connections.refused;
    total.connections.failed += stats.connections.failed;
    total.connections.active += stats.connections.active;
    // Identity: uptime takes the max (the oldest backend), the build
    // is the first one reported (they should all agree), and the
    // per-device slot lists concatenate across backends.
    total.server.uptime_s = total.server.uptime_s.max(stats.server.uptime_s);
    if total.server.build.is_empty() {
        total.server.build = stats.server.build.clone();
    }
    total
        .server
        .slots
        .extend(stats.server.slots.iter().cloned());
}

/// The typed error code of a serialized response body, if it is an
/// error response (same exact-prefix check the daemon uses — bodies
/// are trusted output of the protocol serializer).
fn error_code_of(body: &str) -> Option<&str> {
    let rest = body.strip_prefix("{\"error\":{\"code\":\"")?;
    rest.split('"').next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BackendSpec;

    fn config(backends: &[&str]) -> RouterConfig {
        RouterConfig {
            backends: backends
                .iter()
                .map(|s| s.parse::<BackendSpec>().unwrap())
                .collect(),
            ..RouterConfig::default()
        }
    }

    #[test]
    fn startup_requires_backends_and_devices() {
        assert!(matches!(
            Router::new(RouterConfig::default()),
            Err(RouterError::NoBackends)
        ));
        // Explicit device lists defer connections, so construction
        // succeeds with nothing listening.
        let router = Router::new(config(&[
            "127.0.0.1:1=titan-x",
            "127.0.0.1:2=titan-x,tesla-p100",
        ]))
        .unwrap();
        assert_eq!(router.devices(), vec![Device::TitanX, Device::TeslaP100]);
        let shards = &router.shards;
        assert_eq!(shards[0].1, vec![0, 1]);
        assert_eq!(shards[1].1, vec![1]);
        // Discovery against nothing fails fast.
        let Err(err) = Router::new(config(&["127.0.0.1:1"])) else {
            panic!("discovery against a dead address must fail");
        };
        assert!(matches!(err, RouterError::Discovery { .. }), "{err}");
        assert!(err.to_string().contains("127.0.0.1:1"), "{err}");
    }

    #[test]
    fn unknown_and_unserved_devices_answer_backend_identical_bytes() {
        let router = Router::new(config(&["127.0.0.1:1=titan-x"])).unwrap();
        let unknown =
            router.handle_line("{\"op\":\"predict\",\"device\":\"gtx-9000\",\"source\":\"k\"}");
        assert!(unknown.contains("\"code\":\"unknown_device\""), "{unknown}");
        assert!(
            unknown.contains("titan-x, tesla-p100, tesla-k20c"),
            "{unknown}"
        );
        let unserved =
            router.handle_line("{\"op\":\"predict\",\"device\":\"tesla-p100\",\"source\":\"k\"}");
        assert_eq!(
            unserved,
            ErrorBody::device_not_served(Device::TeslaP100, &[Device::TitanX])
                .into_response()
                .to_json()
        );
        // Malformed lines are counted and answered typed.
        let bad = router.handle_line("not json");
        assert!(bad.contains("\"code\":\"bad_request\""), "{bad}");
        assert_eq!(router.snapshot().counters.malformed, 1);
    }

    #[test]
    fn dead_replicas_answer_overloaded_and_open_circuits() {
        let mut cfg = config(&["127.0.0.1:1=titan-x", "127.0.0.1:2=titan-x"]);
        cfg.failure_threshold = 1;
        let router = Router::new(cfg).unwrap();
        let line = "{\"op\":\"predict\",\"device\":\"titan-x\",\"source\":\"kernel\"}";
        let first = router.handle_line(line);
        assert!(first.contains("\"code\":\"overloaded\""), "{first}");
        // Both circuits opened after one failure each; the next call
        // is rejected without touching the network.
        let snap = router.snapshot();
        assert!(snap
            .backends
            .iter()
            .all(|b| b.state == crate::wire::CircuitState::Open));
        let second = router.handle_line(line);
        assert!(second.contains("\"code\":\"overloaded\""), "{second}");
        assert_eq!(router.snapshot().counters.broken_circuit, 2);
    }
}
