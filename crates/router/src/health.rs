//! The health-check loop: one router-owned thread probing every
//! backend on a fixed cadence.
//!
//! Each round sends a `devices` probe through the normal forwarding
//! path, so the probes drive the breaker state machine: failures open
//! circuits even when no client traffic is flowing, and after a
//! backend recovers the half-open probe closes the circuit again —
//! clients never have to pay for the discovery themselves. Successful
//! probes also refresh the cached device inventory the router's
//! `devices` aggregation answers from.

use std::time::{Duration, Instant};

use crate::server::Router;

/// Sleep granularity while waiting for the next probe round, so
/// shutdown is noticed promptly.
const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

/// Probe every backend until the router shuts down. Run by
/// [`Router::serve`] in its own scoped thread.
pub(crate) fn run(router: &Router, interval: Duration) {
    while !router.is_shutting_down() {
        for backend in router.backends() {
            if router.is_shutting_down() {
                return;
            }
            let _ = backend.probe();
        }
        let round_end = Instant::now() + interval;
        while Instant::now() < round_end {
            if router.is_shutting_down() {
                return;
            }
            std::thread::sleep(SHUTDOWN_POLL.min(interval));
        }
    }
}
