//! Router-specific wire vocabulary: the circuit-breaker state names
//! published in the `router` section of the stats response, and the
//! snapshot types that section is built from.
//!
//! The state strings are pinned by `crates/serve/wire_inventory.txt`
//! (`state` lines) and checked by `gpufreq analyze`
//! (wire-string-drift): renaming one here without updating the
//! inventory — and every dashboard scraping it — fails the lint.
//!
//! Everything else the router speaks is the serve line protocol
//! (`gpufreq_serve::protocol`), forwarded byte-for-byte; this module
//! deliberately adds no new ops, error codes, or routes.

use serde::Value;

/// Circuit-breaker state of one backend, as published in
/// `router.backends[].state`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Healthy: requests flow freely.
    Closed,
    /// Tripped: requests are rejected without touching the backend
    /// until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe request is admitted; its
    /// outcome closes or re-opens the circuit.
    HalfOpen,
}

impl CircuitState {
    /// Every state, in lifecycle order.
    pub const ALL: [CircuitState; 3] = [
        CircuitState::Closed,
        CircuitState::Open,
        CircuitState::HalfOpen,
    ];

    /// The stable wire name (pinned by the wire inventory).
    pub const fn as_str(self) -> &'static str {
        match self {
            CircuitState::Closed => "closed",
            CircuitState::Open => "open",
            CircuitState::HalfOpen => "half_open",
        }
    }
}

impl std::fmt::Display for CircuitState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Router-level counters published in the `router` stats section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterCounters {
    /// Requests successfully forwarded to a backend.
    pub routed: u64,
    /// Failover attempts: a request re-sent to another replica after
    /// its preferred one failed or reported `overloaded`.
    pub retried: u64,
    /// Requests turned away from a backend by an open circuit.
    pub broken_circuit: u64,
    /// Lines or HTTP bodies that failed to parse at the router.
    pub malformed: u64,
}

/// One backend's health, as published in `router.backends[]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendSnapshot {
    /// The backend's `host:port` address.
    pub addr: String,
    /// Device ids this backend serves.
    pub devices: Vec<String>,
    /// Current circuit-breaker state.
    pub state: CircuitState,
    /// Client requests forwarded to this backend (probes excluded).
    pub requests: u64,
    /// Health probes sent to this backend.
    pub probes: u64,
    /// Forwarding failures: connection errors, transport errors, and
    /// typed `overloaded` responses.
    pub failures: u64,
    /// Requests currently outstanding against this backend.
    pub in_flight: u64,
}

/// The full `router` stats section: router counters plus per-backend
/// health.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouterSnapshot {
    /// Router-level counters.
    pub counters: RouterCounters,
    /// Per-backend health, in `--backend` argument order.
    pub backends: Vec<BackendSnapshot>,
}

impl RouterSnapshot {
    /// The `router` section as a JSON value, ready to splice into the
    /// aggregated stats response. Field order is fixed so the output
    /// is byte-stable.
    pub fn to_value(&self) -> Value {
        let c = &self.counters;
        let backends = self
            .backends
            .iter()
            .map(|b| {
                Value::Object(vec![
                    ("addr".to_string(), Value::String(b.addr.clone())),
                    (
                        "devices".to_string(),
                        Value::Array(b.devices.iter().map(|d| Value::String(d.clone())).collect()),
                    ),
                    (
                        "state".to_string(),
                        Value::String(b.state.as_str().to_string()),
                    ),
                    ("requests".to_string(), uint(b.requests)),
                    ("probes".to_string(), uint(b.probes)),
                    ("failures".to_string(), uint(b.failures)),
                    ("in_flight".to_string(), uint(b.in_flight)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("routed".to_string(), uint(c.routed)),
            ("retried".to_string(), uint(c.retried)),
            ("broken_circuit".to_string(), uint(c.broken_circuit)),
            ("malformed".to_string(), uint(c.malformed)),
            ("backends".to_string(), Value::Array(backends)),
        ])
    }
}

fn uint(n: u64) -> Value {
    Value::Number(serde::Number::U64(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_names_are_the_pinned_wire_strings() {
        let names: Vec<&str> = CircuitState::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, ["closed", "open", "half_open"]);
    }

    #[test]
    fn snapshot_serializes_with_stable_field_order() {
        let snap = RouterSnapshot {
            counters: RouterCounters {
                routed: 7,
                retried: 1,
                broken_circuit: 2,
                malformed: 0,
            },
            backends: vec![BackendSnapshot {
                addr: "127.0.0.1:7070".to_string(),
                devices: vec!["titan-x".to_string()],
                state: CircuitState::Open,
                requests: 9,
                probes: 4,
                failures: 3,
                in_flight: 0,
            }],
        };
        let json = serde_json::to_string(&snap.to_value()).unwrap();
        assert_eq!(
            json,
            "{\"routed\":7,\"retried\":1,\"broken_circuit\":2,\"malformed\":0,\
             \"backends\":[{\"addr\":\"127.0.0.1:7070\",\"devices\":[\"titan-x\"],\
             \"state\":\"open\",\"requests\":9,\"probes\":4,\"failures\":3,\
             \"in_flight\":0}]}"
        );
    }
}
