//! Router configuration: backend specs as given on the command line,
//! plus the operational knobs (in-flight caps, breaker thresholds,
//! probe cadence).

use std::str::FromStr;
use std::time::Duration;

use gpufreq_sim::Device;

/// One `--backend` argument: `addr` or `addr=device,device,...`.
///
/// With an explicit device list the router shards exactly as told;
/// without one it asks the backend (a `devices` probe at startup) and
/// serves whatever the backend serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendSpec {
    /// The backend's `host:port` address.
    pub addr: String,
    /// Devices this backend serves; empty means "discover at startup".
    pub devices: Vec<Device>,
}

impl FromStr for BackendSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<BackendSpec, String> {
        let (addr, devices) = match s.split_once('=') {
            Some((addr, list)) => {
                let mut devices = Vec::new();
                for part in list.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        return Err(format!("empty device id in backend spec `{s}`"));
                    }
                    let device: Device = part.parse().map_err(|e| format!("{e}"))?;
                    if devices.contains(&device) {
                        return Err(format!(
                            "device `{device}` listed twice in backend spec `{s}`"
                        ));
                    }
                    devices.push(device);
                }
                (addr, devices)
            }
            None => (s, Vec::new()),
        };
        let addr = addr.trim();
        if addr.is_empty() {
            return Err(format!("empty address in backend spec `{s}`"));
        }
        if !addr.contains(':') {
            return Err(format!(
                "backend address `{addr}` is not host:port (in spec `{s}`)"
            ));
        }
        Ok(BackendSpec {
            addr: addr.to_string(),
            devices,
        })
    }
}

/// Operational knobs for the router. [`Default`] gives the values the
/// CLI uses; tests tighten the timings.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The backends to fan out to, in `--backend` argument order.
    pub backends: Vec<BackendSpec>,
    /// Max outstanding requests per backend before the router answers
    /// `overloaded` itself (after trying the other replicas).
    pub max_in_flight: usize,
    /// Max idle pooled connections kept per backend.
    pub pool_idle: usize,
    /// Consecutive failures that open a backend's circuit.
    pub failure_threshold: u32,
    /// How long an open circuit waits before admitting a probe.
    pub cooldown: Duration,
    /// Health-check cadence (a `devices` probe per backend).
    pub probe_interval: Duration,
    /// Max concurrent client connections at the router.
    pub max_connections: usize,
    /// Per-call read timeout on backend connections; `None` blocks
    /// indefinitely (a hung backend then holds its in-flight slot, so
    /// the default is finite).
    pub read_timeout: Option<Duration>,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            backends: Vec::new(),
            max_in_flight: 64,
            pool_idle: 8,
            failure_threshold: 3,
            cooldown: Duration::from_secs(1),
            probe_interval: Duration::from_millis(500),
            max_connections: 256,
            read_timeout: Some(Duration::from_secs(60)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_bare_addr_and_device_lists() {
        let bare: BackendSpec = "127.0.0.1:7070".parse().unwrap();
        assert_eq!(bare.addr, "127.0.0.1:7070");
        assert!(bare.devices.is_empty());

        let pinned: BackendSpec = "10.0.0.2:7071=titan-x, tesla-p100".parse().unwrap();
        assert_eq!(pinned.addr, "10.0.0.2:7071");
        assert_eq!(pinned.devices, vec![Device::TitanX, Device::TeslaP100]);
    }

    #[test]
    fn spec_rejects_bad_shapes() {
        for bad in [
            "",
            "noport",
            "=titan-x",
            "127.0.0.1:7070=",
            "127.0.0.1:7070=gtx-9000",
            "127.0.0.1:7070=titan-x,titan-x",
        ] {
            assert!(bad.parse::<BackendSpec>().is_err(), "accepted `{bad}`");
        }
        // Unknown devices surface the registry's id list.
        let err = "127.0.0.1:7070=gtx-9000"
            .parse::<BackendSpec>()
            .unwrap_err();
        assert!(err.contains("titan-x, tesla-p100, tesla-k20c"), "{err}");
    }
}
