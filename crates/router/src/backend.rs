//! One backend daemon as seen from the router: a pooled set of
//! [`LineClient`] connections behind a circuit breaker and a bounded
//! in-flight counter.
//!
//! All mutable state sits in one mutex (`BackendState`) held only
//! for bookkeeping — never across a network call. A call takes a
//! pooled connection (or a permit to dial a new one) under the lock,
//! performs the exchange unlocked, then re-locks to return the
//! connection and record the outcome with the breaker.

use std::io;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use gpufreq_obs::StageSet;
use gpufreq_serve::protocol::{DeviceInfo, ErrorBody, ErrorCode, Request, Response};
use gpufreq_serve::LineClient;
use gpufreq_sim::Device;

use crate::breaker::{Admit, Breaker};
use crate::config::RouterConfig;
use crate::wire::BackendSnapshot;

/// The serialized prefix of a typed `overloaded` error response —
/// checked against the protocol serializer by a unit test below so the
/// two cannot drift.
const OVERLOADED_PREFIX: &str = "{\"error\":{\"code\":\"overloaded\"";

/// Why a forwarding attempt did not produce a backend response.
#[derive(Debug)]
pub enum CallError {
    /// The circuit is open: the backend was not contacted.
    Broken,
    /// The backend is at its in-flight cap: not contacted.
    Busy,
    /// Connecting or exchanging failed at the transport layer.
    Io(io::Error),
    /// The backend answered, but with a typed `overloaded` rejection
    /// (the raw response line, relayable if every replica says so).
    Overloaded(String),
}

/// Mutable per-backend state, lock-protected as one unit.
struct BackendState {
    /// Idle pooled connections (LIFO: reuse the warmest socket).
    idle: Vec<LineClient>,
    /// Outstanding requests against this backend.
    in_flight: u64,
    breaker: Breaker,
    /// Client requests forwarded (health probes counted separately).
    requests: u64,
    /// Health probes sent (router-originated `devices` checks).
    probes: u64,
    /// Transport failures + `overloaded` rejections.
    failures: u64,
    /// Device inventory from the most recent successful probe.
    info: Option<Vec<DeviceInfo>>,
}

/// One backend daemon: address, served devices, pooled connections,
/// breaker.
pub struct Backend {
    addr: String,
    devices: Vec<Device>,
    max_in_flight: u64,
    pool_idle: usize,
    read_timeout: Option<std::time::Duration>,
    state: Mutex<BackendState>,
    /// Router-shared per-stage histograms; when set, every fresh dial
    /// records a `connect` span. Set once by `Router::new`.
    stages: OnceLock<Arc<StageSet>>,
}

impl Backend {
    /// A backend at `addr` serving `devices`, with `config`'s breaker
    /// and pool knobs. `info` seeds the device-inventory cache when
    /// startup discovery already fetched it.
    pub fn new(
        addr: String,
        devices: Vec<Device>,
        info: Option<Vec<DeviceInfo>>,
        config: &RouterConfig,
    ) -> Backend {
        Backend {
            addr,
            devices,
            max_in_flight: config.max_in_flight.max(1) as u64,
            pool_idle: config.pool_idle,
            read_timeout: config.read_timeout,
            state: Mutex::new(BackendState {
                idle: Vec::new(),
                in_flight: 0,
                breaker: Breaker::new(config.failure_threshold, config.cooldown),
                requests: 0,
                probes: 0,
                failures: 0,
                info,
            }),
            stages: OnceLock::new(),
        }
    }

    /// Share the router's per-stage histograms with this backend so
    /// fresh dials record `connect` spans. Later calls are ignored
    /// (the first registration wins).
    pub(crate) fn attach_stages(&self, stages: Arc<StageSet>) {
        let _ = self.stages.set(stages);
    }

    /// The backend's `host:port` address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The devices this backend serves (fixed at router startup).
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    fn lock(&self) -> MutexGuard<'_, BackendState> {
        // analyze:allow(panic-in-request-path, reason = "a poisoned lock means a router thread panicked mid-bookkeeping; state is unrecoverable and propagating the panic is the faithful report")
        self.state.lock().expect("backend state poisoned")
    }

    /// Forward one raw request line, respecting the breaker and the
    /// in-flight cap. On success returns the raw response line with
    /// the connection back in the pool.
    pub fn call(&self, line: &str) -> Result<String, CallError> {
        self.call_flagged(line, false)
    }

    /// [`Backend::call`] with an explicit probe flag: probe traffic is
    /// counted in its own `probes` counter so the `requests` counter
    /// reflects client load only. Breaker and in-flight bookkeeping
    /// are identical either way.
    fn call_flagged(&self, line: &str, is_probe: bool) -> Result<String, CallError> {
        let pooled = {
            let mut st = self.lock();
            if st.in_flight >= self.max_in_flight {
                return Err(CallError::Busy);
            }
            if st.breaker.admit(Instant::now()) == Admit::No {
                return Err(CallError::Broken);
            }
            st.in_flight += 1;
            if is_probe {
                st.probes += 1;
            } else {
                st.requests += 1;
            }
            st.idle.pop()
        };
        let outcome = self.exchange(pooled, line);
        let mut st = self.lock();
        st.in_flight -= 1;
        match outcome {
            Ok((client, response)) => {
                // The connection stayed response-aligned either way;
                // pool it. A typed `overloaded` still counts against
                // the breaker — the backend told us to back off.
                if st.idle.len() < self.pool_idle {
                    st.idle.push(client);
                }
                if response.starts_with(OVERLOADED_PREFIX) {
                    st.failures += 1;
                    st.breaker.record_failure(Instant::now());
                    Err(CallError::Overloaded(response))
                } else {
                    st.breaker.record_success();
                    Ok(response)
                }
            }
            Err(e) => {
                // The stream may hold a half-read response; the
                // connection was already dropped in `exchange`.
                st.failures += 1;
                st.breaker.record_failure(Instant::now());
                Err(CallError::Io(e))
            }
        }
    }

    /// Perform one exchange outside the lock, dialing if no pooled
    /// connection was available.
    fn exchange(&self, pooled: Option<LineClient>, line: &str) -> io::Result<(LineClient, String)> {
        let mut client = match pooled {
            Some(client) => client,
            None => {
                let dial = Instant::now();
                let client = LineClient::connect(&self.addr)?;
                client.set_read_timeout(self.read_timeout)?;
                if let Some(stages) = self.stages.get() {
                    stages.observe_us("connect", dial.elapsed().as_micros() as u64);
                }
                client
            }
        };
        let response = client.call(line)?;
        Ok((client, response))
    }

    /// Health-check: a `devices` probe through the normal [`Backend::call`]
    /// path, so an open breaker gates probes exactly like requests
    /// (the cooldown/half-open machinery decides when the network is
    /// touched again). A successful probe refreshes the cached device
    /// inventory; an unparseable answer counts as a failure.
    pub fn probe(&self) -> Option<Vec<DeviceInfo>> {
        let response = self.call_flagged(&Request::Devices.to_json(), true).ok()?;
        match Response::parse(&response) {
            Ok(Response::Devices { devices }) => {
                self.lock().info = Some(devices.clone());
                Some(devices)
            }
            _ => {
                let mut st = self.lock();
                st.failures += 1;
                st.breaker.record_failure(Instant::now());
                None
            }
        }
    }

    /// The device inventory from the most recent successful probe.
    pub fn info(&self) -> Option<Vec<DeviceInfo>> {
        self.lock().info.clone()
    }

    /// Health snapshot for the `router` stats section.
    pub fn snapshot(&self) -> BackendSnapshot {
        let st = self.lock();
        BackendSnapshot {
            addr: self.addr.clone(),
            devices: self.devices.iter().map(|d| d.id().to_string()).collect(),
            state: st.breaker.state(),
            requests: st.requests,
            probes: st.probes,
            failures: st.failures,
            in_flight: st.in_flight,
        }
    }

    /// Build an `overloaded` rejection for requests no replica could
    /// take (every circuit open, every pool at its cap, or every
    /// transport attempt failed).
    pub fn all_unavailable(device: Device) -> String {
        ErrorBody::new(
            ErrorCode::Overloaded,
            format!("no replica for `{}` is available; retry later", device.id()),
        )
        .into_response()
        .to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::CircuitState;

    #[test]
    fn overloaded_prefix_matches_the_protocol_serializer() {
        let body = ErrorBody::new(ErrorCode::Overloaded, "queue full; retry later")
            .into_response()
            .to_json();
        assert!(body.starts_with(OVERLOADED_PREFIX), "{body}");
        // Other codes must not match, or healthy errors would trip
        // the breaker.
        let kernel = ErrorBody::new(ErrorCode::Kernel, "parse error")
            .into_response()
            .to_json();
        assert!(!kernel.starts_with(OVERLOADED_PREFIX), "{kernel}");
    }

    #[test]
    fn unreachable_backend_trips_the_breaker_without_leaking_slots() {
        // A port from the TEST-NET-3 doc range refuses immediately.
        let config = RouterConfig {
            failure_threshold: 2,
            ..RouterConfig::default()
        };
        let backend = Backend::new(
            "127.0.0.1:1".to_string(),
            vec![Device::TitanX],
            None,
            &config,
        );
        assert!(matches!(
            backend.call("{\"op\":\"devices\"}"),
            Err(CallError::Io(_))
        ));
        assert!(matches!(
            backend.call("{\"op\":\"devices\"}"),
            Err(CallError::Io(_))
        ));
        // Threshold reached: circuit open, third call never dials.
        assert!(matches!(
            backend.call("{\"op\":\"devices\"}"),
            Err(CallError::Broken)
        ));
        let snap = backend.snapshot();
        assert_eq!(snap.state, CircuitState::Open);
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.failures, 2);
    }
}
