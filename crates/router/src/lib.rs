//! `gpufreq-router`: the horizontal scale-out tier of the serving
//! stack — a device-sharded router fronting replicated `gpufreq serve`
//! daemons.
//!
//! The router owns client connections (JSON-lines and the HTTP
//! gateway, same surfaces as a daemon) and forwards every request over
//! the **existing line protocol** — it computes no predictions and
//! holds no models, so backends can be added, drained, and restarted
//! behind a stable client address.
//!
//! # Routing
//!
//! Two levels, both deterministic:
//!
//! 1. **Shard by device**: the request's `device` field picks the set
//!    of backends (replicas) serving that device.
//! 2. **Replica by source-hash**: within a shard,
//!    `key_hash(device, source) % replicas` — the same FNV-1a hash the
//!    backends key their front caches with — picks the replica, so a
//!    given kernel always lands on the same backend and the replicas'
//!    warm caches stay disjoint. `predict_batch` splits by the same
//!    rule and the responses are merged back in request order.
//!
//! Responses are **byte-identical** to a single-backend run: single-
//! shard traffic is relayed verbatim, and split batches are merged by
//! splicing the backends' raw result-slot bytes (never re-serializing
//! a prediction). The record/replay acceptance harness in
//! `tests/acceptance.rs` pins this end-to-end.
//!
//! # Operation
//!
//! A health thread probes every backend (`devices`) on a fixed
//! cadence; each backend sits behind a circuit breaker
//! ([`wire::CircuitState`]) that opens on connection failures or typed
//! `overloaded` responses, rejects while open, and re-closes via a
//! half-open probe. In-flight requests per backend are bounded.
//! Failed replicas are failed over in ring order; when no replica can
//! take a request the router answers the protocol's own typed
//! `overloaded` error. `stats` aggregates the backends' snapshots and
//! appends a `router` section with per-backend health.

#![deny(missing_docs)]

pub mod backend;
pub mod breaker;
pub mod config;
pub(crate) mod health;
pub mod route;
pub mod server;
pub mod wire;

pub use config::{BackendSpec, RouterConfig};
pub use server::{Router, RouterError, ROUTER_STAGE_NAMES};
pub use wire::{BackendSnapshot, CircuitState, RouterCounters, RouterSnapshot};
