//! Lock-free serving metrics: request counters by kind plus a
//! power-of-two latency histogram.
//!
//! Latencies are recorded in microseconds into 40 buckets where bucket
//! `i` covers `[2^i, 2^(i+1))` µs (bucket 0 additionally absorbs 0).
//! Quantiles are reported as the **upper bound** of the bucket the
//! quantile falls in — a conservative ≤2× over-approximation that
//! needs no stored samples, no locks, and no floating point, which is
//! all a `stats` request costs under load.

use crate::protocol::{ConnectionStats, LatencyStats, RequestCounts};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets.
pub(crate) const BUCKETS: usize = 40;

/// Aggregate serving metrics; all methods take `&self` and are safe to
/// call from every worker and connection thread concurrently.
#[derive(Debug)]
pub struct Metrics {
    total: AtomicU64,
    predict: AtomicU64,
    predict_batch: AtomicU64,
    batch_kernels: AtomicU64,
    devices: AtomicU64,
    stats: AtomicU64,
    metrics: AtomicU64,
    shutdown: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    reload: AtomicU64,
    rejected_p99: AtomicU64,
    rejected_quota: AtomicU64,
    conn_opened: AtomicU64,
    conn_closed: AtomicU64,
    conn_refused: AtomicU64,
    conn_failed: AtomicU64,
    latency_max_us: AtomicU64,
    latency_sum_us: AtomicU64,
    latency_buckets: [AtomicU64; BUCKETS],
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Metrics {
        Metrics {
            total: AtomicU64::new(0),
            predict: AtomicU64::new(0),
            predict_batch: AtomicU64::new(0),
            batch_kernels: AtomicU64::new(0),
            devices: AtomicU64::new(0),
            stats: AtomicU64::new(0),
            metrics: AtomicU64::new(0),
            shutdown: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            reload: AtomicU64::new(0),
            rejected_p99: AtomicU64::new(0),
            rejected_quota: AtomicU64::new(0),
            conn_opened: AtomicU64::new(0),
            conn_closed: AtomicU64::new(0),
            conn_refused: AtomicU64::new(0),
            conn_failed: AtomicU64::new(0),
            latency_max_us: AtomicU64::new(0),
            latency_sum_us: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Count one incoming protocol line (well-formed or not).
    pub fn count_line(&self) {
        bump(&self.total, 1);
    }

    /// Count one `predict` request.
    pub fn count_predict(&self) {
        bump(&self.predict, 1);
    }

    /// Count one `predict_batch` request carrying `kernels` sources.
    pub fn count_predict_batch(&self, kernels: usize) {
        bump(&self.predict_batch, 1);
        bump(&self.batch_kernels, kernels as u64);
    }

    /// Count one `devices` request.
    pub fn count_devices(&self) {
        bump(&self.devices, 1);
    }

    /// Count one `stats` request.
    pub fn count_stats(&self) {
        bump(&self.stats, 1);
    }

    /// Count one `metrics` request (the exposition verb).
    pub fn count_metrics(&self) {
        bump(&self.metrics, 1);
    }

    /// Count one `shutdown` request.
    pub fn count_shutdown(&self) {
        bump(&self.shutdown, 1);
    }

    /// Count one error response (any code except `overloaded`).
    pub fn count_error(&self) {
        bump(&self.errors, 1);
    }

    /// Count one backpressure rejection (`overloaded`).
    pub fn count_rejected(&self) {
        bump(&self.rejected, 1);
    }

    /// Count one `reload` request (admin model hot-swap).
    pub fn count_reload(&self) {
        bump(&self.reload, 1);
    }

    /// Count one admission rejection caused by the windowed-p99 target.
    pub fn count_rejected_p99(&self) {
        bump(&self.rejected_p99, 1);
    }

    /// Count one admission rejection caused by a per-client quota.
    pub fn count_rejected_quota(&self) {
        bump(&self.rejected_quota, 1);
    }

    /// Count one accepted connection (line or HTTP).
    pub fn count_conn_opened(&self) {
        bump(&self.conn_opened, 1);
    }

    /// Count one finished connection (its thread exited).
    pub fn count_conn_closed(&self) {
        bump(&self.conn_closed, 1);
    }

    /// Count one connection refused at the concurrent-connection cap.
    pub fn count_conn_refused(&self) {
        bump(&self.conn_refused, 1);
    }

    /// Count one connection dropped because socket setup
    /// (`try_clone`/`set_read_timeout`) failed.
    pub fn count_conn_failed(&self) {
        bump(&self.conn_failed, 1);
    }

    /// Record one serving latency (request read → response body
    /// ready).
    pub fn observe_us(&self, us: u64) {
        // ordering: the running maximum is telemetry like the
        // counters; the fetch_max RMW itself is atomic, and nothing
        // synchronizes on its result.
        self.latency_max_us.fetch_max(us, Ordering::Relaxed);
        bump(&self.latency_sum_us, us);
        bump(&self.latency_buckets[bucket_index(us)], 1);
    }

    /// The request-counter snapshot.
    pub fn request_counts(&self) -> RequestCounts {
        RequestCounts {
            total: read(&self.total),
            predict: read(&self.predict),
            predict_batch: read(&self.predict_batch),
            batch_kernels: read(&self.batch_kernels),
            devices: read(&self.devices),
            stats: read(&self.stats),
            metrics: read(&self.metrics),
            shutdown: read(&self.shutdown),
            errors: read(&self.errors),
            rejected: read(&self.rejected),
            reload: read(&self.reload),
            rejected_p99: read(&self.rejected_p99),
            rejected_quota: read(&self.rejected_quota),
        }
    }

    /// The connection-counter snapshot. `active` is derived
    /// (`opened - closed`), so a connection mid-teardown may be counted
    /// active for an instant longer — fine for a diagnostics gauge.
    pub fn connection_counts(&self) -> ConnectionStats {
        let opened = read(&self.conn_opened);
        let closed = read(&self.conn_closed);
        ConnectionStats {
            opened,
            closed,
            refused: read(&self.conn_refused),
            failed: read(&self.conn_failed),
            active: opened.saturating_sub(closed),
        }
    }

    /// Raw latency-histogram bucket counts — the admission controller
    /// diffs two snapshots to compute a *windowed* p99 over recent
    /// requests only.
    pub fn latency_bucket_counts(&self) -> Vec<u64> {
        self.latency_buckets.iter().map(read).collect()
    }

    /// The whole-request latency histogram as an exposition-ready
    /// snapshot (same power-of-two bucket layout as the per-stage
    /// histograms in `gpufreq-obs`).
    pub fn latency_snapshot(&self) -> gpufreq_obs::HistogramSnapshot {
        let buckets: Vec<u64> = self.latency_buckets.iter().map(read).collect();
        gpufreq_obs::HistogramSnapshot {
            count: buckets.iter().sum(),
            sum_us: read(&self.latency_sum_us),
            max_us: read(&self.latency_max_us),
            buckets,
        }
    }

    /// The latency-histogram snapshot (p50/p95/p99 as bucket upper
    /// bounds, max exact).
    pub fn latency(&self) -> LatencyStats {
        let counts: Vec<u64> = self.latency_buckets.iter().map(read).collect();
        let count: u64 = counts.iter().sum();
        LatencyStats {
            count,
            p50: quantile(&counts, count, 0.50),
            p95: quantile(&counts, count, 0.95),
            p99: quantile(&counts, count, 0.99),
            max: read(&self.latency_max_us),
        }
    }
}

/// Add to a telemetry counter. Every counter bump in this module funnels
/// through here so the memory-ordering argument lives in one place.
fn bump(counter: &AtomicU64, n: u64) {
    // ordering: pure event counters — a bump publishes no other memory,
    // and totals stay exact regardless because fetch_add is a single
    // atomic RMW; Relaxed is sufficient and cheapest on the hot path.
    counter.fetch_add(n, Ordering::Relaxed);
}

/// Read a telemetry counter for a snapshot.
fn read(counter: &AtomicU64) -> u64 {
    // ordering: snapshots are diagnostics; a `stats` response may tear
    // between counters (e.g. `errors` bumped but `total` not yet), so
    // no acquire pairing would buy anything.
    counter.load(Ordering::Relaxed)
}

/// The histogram bucket for a latency of `us` microseconds.
fn bucket_index(us: u64) -> usize {
    (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1)
}

/// Upper-bound `q`-quantile over an explicit bucket-count vector (its
/// total derived) — shared with the admission controller, which feeds
/// it the *delta* between two histogram snapshots for a windowed p99.
pub(crate) fn quantile_from_counts(counts: &[u64], q: f64) -> u64 {
    quantile(counts, counts.iter().sum(), q)
}

/// Upper bound (µs) of the bucket the `q`-quantile falls in; 0 when
/// nothing was observed.
fn quantile(counts: &[u64], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    // The rank of the quantile observation, 1-based, clamped into range.
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper_bound_us(i);
        }
    }
    bucket_upper_bound_us(BUCKETS - 1)
}

/// Largest latency (µs) a bucket covers.
fn bucket_upper_bound_us(index: usize) -> u64 {
    (1u64 << (index + 1)) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_expected_ranges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let m = Metrics::new();
        assert_eq!(m.latency().count, 0);
        assert_eq!(m.latency().p99, 0);
        // 90 fast observations at ~8µs, 10 slow at ~4096µs.
        for _ in 0..90 {
            m.observe_us(8);
        }
        for _ in 0..10 {
            m.observe_us(4096);
        }
        let lat = m.latency();
        assert_eq!(lat.count, 100);
        assert_eq!(lat.p50, 15, "8µs falls in [8,16)");
        assert_eq!(lat.p95, 8191, "4096µs falls in [4096,8192)");
        assert_eq!(lat.p99, 8191);
        assert_eq!(lat.max, 4096, "max is exact");
    }

    #[test]
    fn request_counts_accumulate() {
        let m = Metrics::new();
        m.count_line();
        m.count_line();
        m.count_predict();
        m.count_predict_batch(7);
        m.count_error();
        m.count_rejected();
        let c = m.request_counts();
        assert_eq!(c.total, 2);
        assert_eq!(c.predict, 1);
        assert_eq!(c.predict_batch, 1);
        assert_eq!(c.batch_kernels, 7);
        assert_eq!(c.errors, 1);
        assert_eq!(c.rejected, 1);
    }
}
