//! The client-side protocol codec: framing helpers and a small
//! synchronous line-protocol client shared by everything that *talks
//! to* a daemon — the `gpufreq client` CLI, the `loadgen` harness, the
//! router's backend connections, and the record/replay acceptance
//! tests.
//!
//! Before this module each of those re-derived the framing privately
//! (loadgen carried its own HTTP framer); now the literals live in one
//! place next to [`protocol`](crate::protocol) and a unit test pins
//! the two against each other so they cannot drift.
//!
//! The codec also defines the **trace format** of the acceptance
//! harness: one JSON object per line, `{"send":"<request line>",
//! "recv":"<response line>"}`, written by `gpufreq client --record`
//! and replayed byte-for-byte by `tests/acceptance.rs`.

use crate::protocol::Request;
use serde::Value;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Frame a request as one protocol line, trailing `\n` included.
pub fn frame_line(request: &Request) -> String {
    let mut line = request.to_json();
    line.push('\n');
    line
}

/// Frame a keep-alive HTTP `POST` around a JSON body, matching the
/// gateway's expectations (`content-type` + `content-length`, no
/// chunking).
pub fn http_post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\ncontent-type: application/json\r\n\
         content-length: {}\r\n\r\n{}",
        body.len(),
        body
    )
}

/// Frame a close-delimited HTTP `GET` (one-shot probes).
pub fn http_get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n")
}

/// Read one HTTP response off the wire and return its JSON body
/// (`line` is scratch, reused across calls). The gateway always sends
/// `content-length`, so no chunked decoding is needed.
pub fn read_http_body<R: BufRead>(reader: &mut R, line: &mut String) -> Result<String, String> {
    line.clear();
    if reader.read_line(line).map_err(|e| e.to_string())? == 0 {
        return Err("server closed the connection mid-response".into());
    }
    if !line.starts_with("HTTP/1.1 ") {
        return Err(format!("not an HTTP response: `{}`", line.trim()));
    }
    let mut content_length = 0usize;
    loop {
        line.clear();
        if reader.read_line(line).map_err(|e| e.to_string())? == 0 {
            return Err("connection closed mid-headers".into());
        }
        let header = line.trim();
        if header.is_empty() {
            break;
        }
        let lower = header.to_ascii_lowercase();
        if let Some(value) = lower.strip_prefix("content-length:") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| format!("bad content-length `{header}`"))?;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    String::from_utf8(body).map_err(|e| e.to_string())
}

/// A synchronous client connection speaking the JSON-lines protocol:
/// write request lines, read response lines, strictly in order (the
/// server's in-order contract makes pipelining safe — callers may
/// [`send`](LineClient::send) several lines before
/// [`recv`](LineClient::recv)ing).
///
/// Responses are trusted server output and are *not* size-bounded
/// here — a large `predict_batch` legitimately answers with one line
/// far beyond the server's per-request bound.
#[derive(Debug)]
pub struct LineClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    line: String,
}

impl LineClient {
    /// Connect to `addr` (`host:port`).
    pub fn connect(addr: &str) -> io::Result<LineClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(LineClient {
            writer,
            // Responses are ~25 KB lines; the default 8 KB buffer
            // would cost several reads per response.
            reader: BufReader::with_capacity(256 * 1024, stream),
            line: String::new(),
        })
    }

    /// Bound how long a [`recv`](LineClient::recv) may block (`None`
    /// blocks forever). A timed-out read returns an error and the
    /// connection should be discarded — the stream is no longer
    /// response-aligned.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Write one already-serialized request line (no trailing newline)
    /// and flush.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Read the next response line (trailing newline stripped). EOF is
    /// an [`io::ErrorKind::UnexpectedEof`] error — the protocol closes
    /// only after a `shutdown` acknowledgement the caller has already
    /// read.
    pub fn recv(&mut self) -> io::Result<String> {
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(self.line.trim_end_matches(['\r', '\n']).to_string())
    }

    /// Send one raw request line and read its response line.
    pub fn call(&mut self, line: &str) -> io::Result<String> {
        self.send(line)?;
        self.recv()
    }

    /// Send one typed request and read its (raw) response line.
    pub fn request(&mut self, request: &Request) -> io::Result<String> {
        self.call(&request.to_json())
    }
}

/// One recorded request/response exchange of a serve session — the
/// unit of the record/replay acceptance format. Both sides are the
/// *raw wire lines* (newlines stripped), so a replay diffs responses
/// byte-for-byte without any re-serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// The request line as sent.
    pub send: String,
    /// The response line as received.
    pub recv: String,
}

impl TraceEntry {
    /// Serialize to one compact JSON line (without the trailing `\n`).
    pub fn to_json(&self) -> String {
        let value = Value::Object(vec![
            ("send".to_string(), Value::String(self.send.clone())),
            ("recv".to_string(), Value::String(self.recv.clone())),
        ]);
        // analyze:allow(panic-in-request-path, reason = "a two-string object serializes infallibly; this also only runs in the recording client and tests")
        serde_json::to_string(&value).expect("trace entry serialization is infallible")
    }

    /// Parse one trace line.
    pub fn parse(line: &str) -> Result<TraceEntry, String> {
        let value: Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
        let entries = serde::expect_object(&value, "TraceEntry").map_err(|e| e.to_string())?;
        Ok(TraceEntry {
            send: serde::field(entries, "send", "TraceEntry").map_err(|e| e.to_string())?,
            recv: serde::field(entries, "recv", "TraceEntry").map_err(|e| e.to_string())?,
        })
    }
}

/// Parse a whole trace file's contents (blank lines and `#` comments
/// ignored), with 1-based line numbers in errors.
pub fn parse_trace(contents: &str) -> Result<Vec<TraceEntry>, String> {
    contents
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(|(i, l)| TraceEntry::parse(l).map_err(|e| format!("trace line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Route;
    use crate::protocol::Response;

    /// The framing helpers and the protocol/gateway literals must
    /// describe the same wire — this is the drift guard the loadgen
    /// port rides on.
    #[test]
    fn codec_and_protocol_literals_stay_in_sync() {
        let requests = [
            Request::Predict {
                device: "titan-x".into(),
                source: "__kernel void k() {}".into(),
            },
            Request::PredictBatch {
                device: "titan-x".into(),
                sources: vec!["a".into(), "b".into()],
            },
            Request::Devices,
            Request::Stats,
            Request::Metrics,
            Request::Reload {
                device: "titan-x".into(),
                path: "/tmp/m.json".into(),
            },
            Request::Shutdown,
        ];
        for request in &requests {
            // A framed line is exactly the protocol serialization plus
            // the newline, and parses back to the same request.
            let line = frame_line(request);
            assert!(line.ends_with('\n'));
            let stripped = line.trim_end();
            assert_eq!(stripped, request.to_json());
            assert_eq!(&Request::parse(stripped).unwrap(), request);
            // The framed line carries the wire op tag verbatim.
            assert!(stripped.contains(&format!("\"op\":\"{}\"", request.op())));
        }
        // The HTTP POST framer targets paths the gateway actually
        // routes, with an exact content-length.
        let body = requests[0].to_json();
        let post = http_post(Route::Predict.as_str(), &body);
        assert!(post.starts_with("POST /predict HTTP/1.1\r\n"));
        assert!(post.contains(&format!("content-length: {}\r\n", body.len())));
        assert!(post.ends_with(&format!("\r\n\r\n{body}")));
        assert_eq!(Route::resolve("/predict"), Some(Route::Predict));
        let get = http_get(Route::Stats.as_str());
        assert!(get.starts_with("GET /stats HTTP/1.1\r\n"));
        assert_eq!(Route::resolve("/stats"), Some(Route::Stats));
    }

    #[test]
    fn http_body_reader_round_trips_gateway_framing() {
        let body = "{\"ok\":\"shutdown\"}";
        let reply = format!(
            "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\n\
             content-length: {}\r\nconnection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let mut reader = BufReader::new(reply.as_bytes());
        let mut scratch = String::new();
        assert_eq!(read_http_body(&mut reader, &mut scratch).unwrap(), body);
        assert!(matches!(Response::parse(body), Ok(Response::Shutdown)));
        // Not-HTTP garbage is a typed error, not a hang.
        let mut reader = BufReader::new(&b"{\"ok\":\"predict\"}\n"[..]);
        assert!(read_http_body(&mut reader, &mut scratch)
            .unwrap_err()
            .contains("not an HTTP response"));
    }

    #[test]
    fn trace_entries_round_trip_and_files_parse() {
        let entry = TraceEntry {
            send: "{\"op\":\"devices\"}".into(),
            recv: "{\"ok\":\"devices\",\"devices\":[]}".into(),
        };
        let line = entry.to_json();
        assert_eq!(TraceEntry::parse(&line).unwrap(), entry);
        let file = format!("# recorded session\n\n{line}\n{line}\n");
        let parsed = parse_trace(&file).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], entry);
        // Errors carry the 1-based line number.
        let err = parse_trace("{\"op\":1}").unwrap_err();
        assert!(err.starts_with("trace line 1:"), "{err}");
    }
}
