//! Hot-swappable planner slots for zero-downtime model reloads.
//!
//! Each served device owns one [`PlannerSlot`] — an `ArcSwap`-style
//! cell hand-rolled on `Mutex<Arc<TrainedPlanner>>` (this workspace is
//! dependency-free by design). A request grabs the current `Arc` once
//! and keeps predicting on that model even if an admin swaps the slot
//! mid-request: the old planner is only dropped when the last in-flight
//! request releases it, so a reload never drops a connection or tears a
//! response.
//!
//! The mutex is held only for the pointer clone/replace (nanoseconds),
//! never across a prediction, so slots add no meaningful contention to
//! the request path. The version counter exists purely so operators can
//! tell *which* model answered (`reload` responses echo it); it
//! synchronizes nothing.

use gpufreq_core::TrainedPlanner;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// One device's current model: cheap to read, atomically replaceable.
#[derive(Debug)]
pub struct PlannerSlot {
    current: Mutex<Arc<TrainedPlanner>>,
    version: AtomicU64,
}

impl PlannerSlot {
    /// A slot serving `planner` at version 1.
    pub fn new(planner: TrainedPlanner) -> PlannerSlot {
        PlannerSlot {
            current: Mutex::new(Arc::new(planner)),
            version: AtomicU64::new(1),
        }
    }

    /// The model currently serving. The returned `Arc` stays valid
    /// across a concurrent [`swap`](PlannerSlot::swap) — in-flight
    /// requests finish on the model they started with.
    pub fn get(&self) -> Arc<TrainedPlanner> {
        Arc::clone(&lock(&self.current))
    }

    /// Replace the model, returning the new slot version. Readers that
    /// already hold the previous `Arc` are unaffected.
    pub fn swap(&self, planner: TrainedPlanner) -> u64 {
        let next = Arc::new(planner);
        *lock(&self.current) = next;
        // ordering: the version is operator telemetry — the planner
        // itself is published by the mutex above, nothing reads the
        // counter to synchronize, so Relaxed suffices.
        self.version.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The current slot version (1 = the model the server started
    /// with; each successful reload increments it).
    pub fn version(&self) -> u64 {
        // ordering: telemetry read (see `swap`).
        self.version.load(Ordering::Relaxed)
    }
}

/// Lock the slot mutex, propagating a poisoned-lock panic — the same
/// policy as the queue module: a poisoned slot means another thread
/// panicked mid-swap, and serving an indeterminate model would be
/// worse than taking this thread down too.
fn lock(mutex: &Mutex<Arc<TrainedPlanner>>) -> MutexGuard<'_, Arc<TrainedPlanner>> {
    // analyze:allow(panic-in-request-path, reason = "a poisoned slot mutex means a swap panicked half-way; propagating is the only sound option")
    mutex.lock().expect("planner slot poisoned")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_core::{Corpus, ModelConfig, Planner};

    fn fast_planner() -> TrainedPlanner {
        Planner::builder()
            .corpus(Corpus::Fast)
            .settings(6)
            .model_config(ModelConfig::relaxed())
            .train()
            .expect("fast corpus trains")
    }

    #[test]
    fn swap_bumps_the_version_and_old_readers_keep_their_model() {
        let planner = fast_planner();
        let slot = PlannerSlot::new(planner.clone());
        assert_eq!(slot.version(), 1);
        let held = slot.get();
        assert_eq!(slot.swap(planner.clone()), 2);
        assert_eq!(slot.version(), 2);
        // The pre-swap Arc is still alive and usable.
        assert_eq!(held.device(), slot.get().device());
        assert!(!Arc::ptr_eq(&held, &slot.get()), "the slot moved on");
        assert_eq!(slot.swap(planner), 3);
    }
}
