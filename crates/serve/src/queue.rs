//! Bounded MPSC plumbing for the worker pool: a capacity-bounded job
//! queue with *reject-don't-block* semantics, plus the per-request
//! response [`Slot`] and the per-connection in-order [`ResponseLane`].
//!
//! The acceptor side never blocks on a full queue: [`BoundedQueue::try_push`]
//! fails immediately so the connection can answer with a typed
//! `overloaded` error — explicit backpressure instead of unbounded
//! buffering or a stalled accept loop. Workers block on
//! [`BoundedQueue::pop`] until a job arrives or the queue is closed
//! and drained.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Lock a queue-structure mutex. Every lock in this module funnels
/// through here so the poisoning policy lives in one place: a poisoned
/// mutex means another thread panicked while mutating queue state, and
/// handing out possibly half-updated jobs or responses would corrupt
/// the served byte stream — propagating the panic is the only sound
/// option.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // analyze:allow(panic-in-request-path, reason = "poisoned queue state is unrecoverable; propagating the original panic is the only sound option")
    mutex.lock().expect("queue mutex poisoned")
}

/// Re-block on a condvar, with the same poisoning policy as [`lock`].
fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    // analyze:allow(panic-in-request-path, reason = "poisoned queue state is unrecoverable; propagating the original panic is the only sound option")
    condvar.wait(guard).expect("queue mutex poisoned")
}

/// Why [`BoundedQueue::try_push`] returned the item instead of
/// queueing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — backpressure; the caller should
    /// answer `overloaded`.
    Full,
    /// The queue was closed (the server is shutting down).
    Closed,
}

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A thread-safe FIFO bounded to `capacity` items.
///
/// Closing the queue rejects further pushes while letting consumers
/// drain what was already accepted — exactly the shutdown semantics
/// the server needs (`shutdown` is acknowledged, queued work still
/// completes, new work is refused).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        lock(&self.inner).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue without blocking; on failure the item is returned to
    /// the caller together with the reason.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut inner = lock(&self.inner);
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue, waiting for space when the queue is full — the
    /// flow-control flavor single-stream replay uses (pausing the
    /// reader is a pipe's natural backpressure, and it keeps replayed
    /// responses independent of worker timing). Only a closed queue
    /// returns the item.
    pub fn push_wait(&self, item: T) -> Result<(), (T, PushError)> {
        let mut inner = lock(&self.inner);
        loop {
            if inner.closed {
                return Err((item, PushError::Closed));
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = wait(&self.not_full, inner);
        }
    }

    /// Block until an item is available (returning it) or the queue is
    /// closed *and* drained (returning `None` — the worker's exit
    /// signal).
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = wait(&self.not_empty, inner);
        }
    }

    /// Refuse further pushes; already-queued items remain poppable.
    /// Idempotent.
    pub fn close(&self) {
        lock(&self.inner).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`close`](BoundedQueue::close) was called.
    pub fn is_closed(&self) -> bool {
        lock(&self.inner).closed
    }
}

/// A write-once response cell: the connection thread waits on it, a
/// worker (or the inline fast path) fills it exactly once.
#[derive(Debug, Default)]
pub struct Slot {
    body: Mutex<Option<String>>,
    ready: Condvar,
}

impl Slot {
    /// An empty slot.
    pub fn new() -> Slot {
        Slot::default()
    }

    /// A slot that is already filled — for responses produced inline
    /// (parse errors, backpressure rejections) that still flow through
    /// the in-order response lane.
    pub fn filled(body: String) -> Slot {
        Slot {
            body: Mutex::new(Some(body)),
            ready: Condvar::new(),
        }
    }

    /// Fill the slot. Filling twice is a bug and panics.
    pub fn fill(&self, body: String) {
        let mut slot = lock(&self.body);
        assert!(slot.is_none(), "response slot filled twice");
        *slot = Some(body);
        drop(slot);
        self.ready.notify_all();
    }

    /// Block until the slot is filled and take the body.
    pub fn wait(&self) -> String {
        let mut slot = lock(&self.body);
        loop {
            if let Some(body) = slot.take() {
                return body;
            }
            slot = wait(&self.ready, slot);
        }
    }

    /// Take the body if it is already filled, without blocking.
    pub fn try_take(&self) -> Option<String> {
        lock(&self.body).take()
    }
}

/// The per-connection in-order response lane: the reader pushes one
/// [`Slot`] per request *in request order*; the connection's writer
/// thread pops slots in that same order, waits for each body, and
/// writes it — so responses are always emitted in request order no
/// matter which worker finishes first. This is what makes the served
/// byte stream independent of the worker count.
#[derive(Debug, Default)]
pub struct ResponseLane {
    inner: Mutex<LaneInner>,
    ready: Condvar,
    /// Set by the writer when its socket died: the reader must stop
    /// accepting requests for a client that can never see the answers.
    poisoned: AtomicBool,
}

#[derive(Debug, Default)]
struct LaneInner {
    slots: VecDeque<std::sync::Arc<Slot>>,
    closed: bool,
}

impl ResponseLane {
    /// An empty lane.
    pub fn new() -> ResponseLane {
        ResponseLane::default()
    }

    /// Append the next request's slot (request order = push order).
    pub fn push(&self, slot: std::sync::Arc<Slot>) {
        let mut inner = lock(&self.inner);
        inner.slots.push_back(slot);
        drop(inner);
        self.ready.notify_all();
    }

    /// No more slots will be pushed; the writer drains what remains
    /// and stops.
    pub fn close(&self) {
        lock(&self.inner).closed = true;
        self.ready.notify_all();
    }

    /// Next slot in request order, or `None` once closed and drained.
    pub fn next(&self) -> Option<std::sync::Arc<Slot>> {
        let mut inner = lock(&self.inner);
        loop {
            if let Some(slot) = inner.slots.pop_front() {
                return Some(slot);
            }
            if inner.closed {
                return None;
            }
            inner = wait(&self.ready, inner);
        }
    }

    /// Next slot if one is queued right now, without waiting for the
    /// reader. `None` means "nothing queued at this instant" — it does
    /// NOT mean the lane is drained; only [`next`](ResponseLane::next)
    /// can report that.
    pub fn try_next(&self) -> Option<std::sync::Arc<Slot>> {
        lock(&self.inner).slots.pop_front()
    }

    /// Mark the lane's writer as dead (its socket failed). The writer
    /// keeps draining already-queued slots so producers never block,
    /// but the connection's reader must stop enqueueing new work —
    /// every response from here on is undeliverable.
    pub fn poison(&self) {
        // ordering: the flag is a standalone kill signal — the reader
        // acts on the boolean alone and no other memory is published
        // through it, so Relaxed suffices on both sides of the pair.
        self.poisoned.store(true, Ordering::Relaxed);
    }

    /// Whether [`poison`](ResponseLane::poison) was called — the
    /// reader's cue to stop pumping requests for this connection.
    pub fn is_poisoned(&self) -> bool {
        // ordering: see `poison` — a lone flag, nothing published.
        self.poisoned.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_rejects_when_full_and_after_close() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.capacity(), 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.try_push(4), Err((4, PushError::Closed)));
        // Closed but not drained: consumers still see the items.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "closed + drained = worker exit");
    }

    #[test]
    fn push_wait_blocks_until_space_then_succeeds() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push_wait(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1), "pop frees a slot and wakes the pusher");
        assert!(pusher.join().unwrap().is_ok());
        assert_eq!(q.pop(), Some(2));
        // Closing while a pusher waits returns the item.
        q.try_push(3).unwrap();
        let q3 = Arc::clone(&q);
        let blocked = std::thread::spawn(move || q3.push_wait(4));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(blocked.join().unwrap(), Err((4, PushError::Closed)));
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(handle.join().unwrap(), Some(42));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err((2, PushError::Full)));
    }

    #[test]
    fn lane_preserves_push_order_even_with_out_of_order_fills() {
        let lane = ResponseLane::new();
        let a = Arc::new(Slot::new());
        let b = Arc::new(Slot::new());
        lane.push(Arc::clone(&a));
        lane.push(Arc::clone(&b));
        lane.close();
        // Fill in reverse order; the lane still yields a before b.
        b.fill("second".into());
        a.fill("first".into());
        assert_eq!(lane.next().unwrap().wait(), "first");
        assert_eq!(lane.next().unwrap().wait(), "second");
        assert!(lane.next().is_none());
    }

    #[test]
    fn prefilled_slot_is_immediately_ready() {
        let slot = Slot::filled("done".into());
        assert_eq!(slot.wait(), "done");
    }

    #[test]
    fn a_poisoned_lane_still_drains_but_reports_the_dead_writer() {
        let lane = ResponseLane::new();
        assert!(!lane.is_poisoned());
        let slot = Arc::new(Slot::filled("queued before the writer died".into()));
        lane.push(Arc::clone(&slot));
        lane.poison();
        assert!(lane.is_poisoned());
        // Draining still works — only *new* work is the reader's
        // responsibility to stop.
        lane.close();
        assert!(lane.next().is_some());
        assert!(lane.next().is_none());
        assert!(lane.is_poisoned(), "poison is sticky");
    }
}
