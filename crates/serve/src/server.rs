//! The prediction server: planners for every served device, a worker
//! pool behind a bounded queue, the response front cache, and the
//! TCP/stdio serving loops.
//!
//! # Determinism
//!
//! For every request except `stats` (a live metrics snapshot by
//! definition), the response body is a pure function of the request
//! and the loaded models: workers merge nothing, each request's
//! response is computed independently, and the per-connection
//! [`ResponseLane`] emits bodies strictly in request order. Replaying
//! a recorded request stream therefore produces **byte-identical**
//! response bodies at any worker count — pinned by
//! `tests/determinism.rs` at the workspace root, the serving-side twin
//! of the engine's serial-vs-parallel contract. Cache hits replay the
//! exact bytes that were first computed, so the front cache cannot
//! introduce drift either. Admission control (windowed-p99
//! backpressure, per-client quotas) gates only requests arriving over
//! a socket — the in-process replay path carries no peer and is always
//! admitted, so the contract survives any admission configuration.
//!
//! Within one stream, requests after a `shutdown` are answered with a
//! typed `shutting_down` error by the stream's own reader (not raced
//! through the draining queue), keeping even the drain deterministic;
//! and single-stream replay ([`Server::serve_lines`]) applies
//! backpressure by *pausing the reader* on a full queue (a pipe's
//! natural flow control), so the contract holds for streams of any
//! length. Only genuinely concurrent effects are outside it: across
//! *concurrent TCP connections* the shutdown point, `overloaded`
//! rejections, and the visibility point of a model hot-swap are
//! inherently timing-dependent, as on any real server.

use crate::admission::{Admission, AdmissionConfig, Rejection};
use crate::cache::{key_hash, FrontCache};
use crate::metrics::Metrics;
use crate::protocol::{
    CacheStats, DeviceInfo, ErrorBody, ErrorCode, QueueStats, Request, Response, ServerInfo,
    ServerStats, SlotInfo,
};
use crate::queue::{BoundedQueue, PushError, ResponseLane, Slot};
use crate::reload::PlannerSlot;
use gpufreq_core::{ascii_table, ProfileCache, TrainedPlanner};
use gpufreq_obs::{trace, Exposition, SpanRecorder, StageSet, TraceLog};
use gpufreq_sim::Device;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{IpAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::Scope;
use std::time::{Duration, Instant};

/// How often the nonblocking accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Read timeout on accepted sockets, so connection readers notice a
/// server-wide shutdown even while their client is idle. Public so the
/// router front end polls at the same cadence.
pub const READ_POLL: Duration = Duration::from_millis(200);

/// Requests larger than this are answered with `bad_request` instead
/// of being parsed (a kernel source is kilobytes; a megabyte line is
/// not a kernel). The pump discards — never buffers — bytes beyond
/// the bound, so oversized (or newline-less) input cannot grow server
/// memory. The HTTP gateway applies the same bound to request bodies,
/// and the router enforces it on both its client and backend sides.
pub const MAX_LINE_BYTES: usize = 4 << 20;

/// The daemon's per-stage span names, in pipeline order: admission
/// gating, queue wait, front-cache lookup, kernel parse+analysis, SVR
/// scoring, and the response write (recorded per flush, not per
/// request, because the writer coalesces bodies).
pub const STAGE_NAMES: [&str; 6] = [
    "admission",
    "queue_wait",
    "cache_lookup",
    "analyze",
    "score",
    "write",
];

/// The build revision baked in at compile time (`GPUFREQ_BUILD_REV`);
/// empty for local builds.
pub fn build_rev() -> &'static str {
    option_env!("GPUFREQ_BUILD_REV").unwrap_or("")
}

/// Append the request's trace id to an already-serialized response
/// body (no-op for untraced requests, so their bytes stay pinned).
fn attach_trace(body: String, trace_id: Option<&str>) -> String {
    match trace_id {
        Some(id) => trace::attach(&body, id),
        None => body,
    }
}

/// The typed error code of a serialized response body, if it is an
/// error response. Bodies are trusted output of this process, so the
/// prefix check is exact (the serializer puts `error.code` first).
fn error_code_of(body: &str) -> Option<&str> {
    let rest = body.strip_prefix("{\"error\":{\"code\":\"")?;
    rest.split('"').next()
}

/// The `bad_request` body for a line crossing [`MAX_LINE_BYTES`].
fn oversize_error() -> ErrorBody {
    ErrorBody::new(
        ErrorCode::BadRequest,
        format!("request line exceeds {MAX_LINE_BYTES} bytes"),
    )
}

/// Append `bytes` to the line buffer unless that would cross
/// [`MAX_LINE_BYTES`]; past the bound the line is marked overflowed
/// and everything further is dropped on the floor.
fn append_bounded(buf: &mut Vec<u8>, bytes: &[u8], overflowed: &mut bool) {
    if *overflowed || buf.len() + bytes.len() > MAX_LINE_BYTES {
        *overflowed = true;
    } else {
        buf.extend_from_slice(bytes);
    }
}

/// Sizing knobs for a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads executing requests (minimum 1). Responses are
    /// byte-identical for every value; only throughput changes.
    pub workers: usize,
    /// Bound of the request queue; a full queue rejects with a typed
    /// `overloaded` error instead of blocking the acceptor.
    pub queue_capacity: usize,
    /// Total entries of the response front cache (0 disables it).
    pub cache_capacity: usize,
    /// Shards of the front cache (more shards, less lock contention).
    pub cache_shards: usize,
    /// Entry bound of the shared kernel-analysis cache (0 =
    /// unbounded).
    pub analysis_cache_capacity: usize,
    /// Concurrent-connection cap across both listeners (minimum 1).
    /// Connections past the bound receive a typed `overloaded`
    /// refusal and are closed instead of spawning an unbounded thread.
    pub max_connections: usize,
    /// Admission-control gates (windowed-p99 target, per-client
    /// quotas); both default to off.
    pub admission: AdmissionConfig,
}

impl Default for ServerConfig {
    /// All cores (capped at 8) workers, a 256-deep queue, a 4096-entry
    /// front cache over 16 shards, a 1024-entry analysis cache, a
    /// 256-connection cap, admission gates off.
    fn default() -> ServerConfig {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
            queue_capacity: 256,
            cache_capacity: 4096,
            cache_shards: 16,
            analysis_cache_capacity: 1024,
            max_connections: 256,
            admission: AdmissionConfig::default(),
        }
    }
}

/// Why a [`Server`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No planners were supplied.
    NoPlanners,
    /// Two planners target the same device.
    DuplicateDevice(Device),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoPlanners => f.write_str("a server needs at least one trained planner"),
            ServeError::DuplicateDevice(d) => {
                write!(f, "two planners target the same device `{d}`")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Which protocol an accepted socket speaks.
#[derive(Debug, Clone, Copy)]
enum ConnKind {
    /// The canonical JSON-lines protocol.
    Line,
    /// The HTTP/1.1 gateway.
    Http,
}

/// One queued unit of work: the parsed request, the slot its response
/// body goes into, and when it was accepted (for the latency
/// histogram).
#[derive(Debug)]
struct Job {
    request: Request,
    slot: Arc<Slot>,
    accepted: Instant,
    /// Trace id the client sent (echoed in the response body).
    trace: Option<String>,
    /// Socket peer, for the slow-request log.
    peer: Option<IpAddr>,
    /// Time spent in the admission gates before enqueueing (µs).
    admission_us: u64,
}

/// The long-running prediction server. See the [module docs](self) for
/// the determinism contract and [`ServerConfig`] for sizing.
///
/// Construction takes already-trained planners (train them with
/// [`Planner::builder`](gpufreq_core::Planner::builder) or load
/// persisted artifacts); the server pins each planner's engine serial
/// — parallelism comes from the worker pool, one request per worker —
/// and re-homes them onto one shared, bounded analysis cache. Each
/// planner lives in a hot-swappable [`PlannerSlot`], so a `reload`
/// request can replace one device's model from a saved artifact
/// without dropping a single connection.
#[derive(Debug)]
pub struct Server {
    planners: Vec<(Device, PlannerSlot)>,
    analysis_cache: Arc<ProfileCache>,
    front: FrontCache,
    metrics: Metrics,
    queue: BoundedQueue<Job>,
    admission: Admission,
    shutting_down: AtomicBool,
    workers: usize,
    max_connections: usize,
    active_connections: AtomicUsize,
    started: Instant,
    stages: StageSet,
    trace_log: Option<Arc<TraceLog>>,
}

impl Server {
    /// Build a server holding `planners` (one per device).
    ///
    /// # Errors
    /// [`ServeError::NoPlanners`] for an empty list,
    /// [`ServeError::DuplicateDevice`] when two planners target the
    /// same device.
    pub fn new(planners: Vec<TrainedPlanner>, config: ServerConfig) -> Result<Server, ServeError> {
        if planners.is_empty() {
            return Err(ServeError::NoPlanners);
        }
        let analysis_cache = Arc::new(if config.analysis_cache_capacity == 0 {
            ProfileCache::new()
        } else {
            ProfileCache::with_capacity(config.analysis_cache_capacity)
        });
        let mut keyed: Vec<(Device, PlannerSlot)> = Vec::with_capacity(planners.len());
        for planner in planners {
            let device = planner.device();
            if keyed.iter().any(|(d, _)| *d == device) {
                return Err(ServeError::DuplicateDevice(device));
            }
            keyed.push((
                device,
                PlannerSlot::new(
                    planner
                        .with_jobs(Some(1))
                        .with_cache(Arc::clone(&analysis_cache)),
                ),
            ));
        }
        Ok(Server {
            planners: keyed,
            analysis_cache,
            front: FrontCache::new(config.cache_capacity, config.cache_shards),
            metrics: Metrics::new(),
            queue: BoundedQueue::new(config.queue_capacity),
            admission: Admission::new(config.admission),
            shutting_down: AtomicBool::new(false),
            workers: config.workers.max(1),
            max_connections: config.max_connections.max(1),
            active_connections: AtomicUsize::new(0),
            started: Instant::now(),
            stages: StageSet::new(&STAGE_NAMES),
            trace_log: None,
        })
    }

    /// Attach a structured slow-request/error log (see
    /// [`TraceLog`]); qualifying requests are written as JSON lines
    /// carrying the trace id and per-stage breakdown.
    pub fn set_trace_log(&mut self, log: Arc<TraceLog>) {
        self.trace_log = Some(log);
    }

    /// The devices served, in planner order.
    pub fn devices(&self) -> Vec<Device> {
        self.planners.iter().map(|(d, _)| *d).collect()
    }

    /// Whether a `shutdown` request has been accepted.
    pub fn is_shutting_down(&self) -> bool {
        // ordering: Acquire pairs with the Release store in
        // `initiate_shutdown`: a thread that observes `true` also
        // observes everything the initiator did before flipping the
        // flag (previously SeqCst, which bought nothing over the
        // pair — no other atomic participates in this protocol).
        self.shutting_down.load(Ordering::Acquire)
    }

    /// Stop accepting new work (queued work still drains). Idempotent;
    /// also triggered by the `shutdown` request.
    pub fn initiate_shutdown(&self) {
        // ordering: Release publishes the initiator's prior writes to
        // every Acquire load in `is_shutting_down`.
        self.shutting_down.store(true, Ordering::Release);
        self.queue.close();
    }

    /// A live metrics snapshot (the `stats` response payload).
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.metrics.request_counts(),
            connections: self.metrics.connection_counts(),
            front_cache: CacheStats {
                hits: self.front.hits(),
                misses: self.front.misses(),
                evictions: self.front.evictions(),
                len: self.front.len(),
                capacity: self.front.capacity(),
            },
            analysis_cache: CacheStats {
                hits: self.analysis_cache.hits() as u64,
                misses: self.analysis_cache.misses() as u64,
                evictions: self.analysis_cache.evictions() as u64,
                len: self.analysis_cache.len(),
                capacity: self.analysis_cache.capacity().unwrap_or(0),
            },
            queue: QueueStats {
                depth: self.queue.len(),
                capacity: self.queue.capacity(),
            },
            workers: self.workers,
            latency_us: self.metrics.latency(),
            server: self.server_info(),
        }
    }

    /// Process identity: uptime, build revision, and the artifact
    /// version serving in each device slot.
    pub fn server_info(&self) -> ServerInfo {
        ServerInfo {
            uptime_s: self.started.elapsed().as_secs(),
            build: build_rev().to_string(),
            slots: self
                .planners
                .iter()
                .map(|(device, slot)| SlotInfo {
                    device: device.id().to_string(),
                    version: slot.version(),
                })
                .collect(),
        }
    }

    /// Render the Prometheus-style text exposition: request counters,
    /// cache/queue/connection gauges, the whole-request latency
    /// histogram, one histogram per pipeline stage
    /// ([`STAGE_NAMES`]), and trace-log accounting. Served verbatim by
    /// `GET /metrics` and (JSON-wrapped) by the `metrics` line verb.
    pub fn exposition(&self) -> String {
        let stats = self.stats();
        let r = &stats.requests;
        let c = &stats.connections;
        let mut x = Exposition::new();
        x.info(
            "gpufreq_build_info",
            "Build metadata.",
            &[("component", "serve"), ("build", &stats.server.build)],
        );
        x.gauge(
            "gpufreq_uptime_seconds",
            "Seconds since the process started.",
            stats.server.uptime_s,
        );
        for (i, slot) in stats.server.slots.iter().enumerate() {
            x.labeled_gauge(
                "gpufreq_model_slot_version",
                (i == 0).then_some("Artifact version serving per device slot."),
                &[("device", &slot.device)],
                slot.version,
            );
        }
        x.counter(
            "gpufreq_requests_total",
            "Protocol lines received (well-formed or not).",
            r.total,
        );
        for (i, (op, n)) in [
            ("predict", r.predict),
            ("predict_batch", r.predict_batch),
            ("devices", r.devices),
            ("stats", r.stats),
            ("metrics", r.metrics),
            ("reload", r.reload),
            ("shutdown", r.shutdown),
        ]
        .iter()
        .enumerate()
        {
            x.labeled_gauge(
                "gpufreq_requests_by_op",
                (i == 0).then_some("Requests by wire op."),
                &[("op", op)],
                *n,
            );
        }
        x.counter(
            "gpufreq_request_errors_total",
            "Requests answered with a typed error.",
            r.errors,
        );
        x.counter(
            "gpufreq_requests_rejected_total",
            "Requests shed with `overloaded`.",
            r.rejected,
        );
        x.counter(
            "gpufreq_batch_kernels_total",
            "Kernels inside batch requests.",
            r.batch_kernels,
        );
        for (i, (cache, s)) in [
            ("front", &stats.front_cache),
            ("analysis", &stats.analysis_cache),
        ]
        .iter()
        .enumerate()
        {
            let labels = [("cache", *cache)];
            x.labeled_gauge(
                "gpufreq_cache_hits",
                (i == 0).then_some("Cache hits by cache."),
                &labels,
                s.hits,
            );
        }
        for (i, (cache, s)) in [
            ("front", &stats.front_cache),
            ("analysis", &stats.analysis_cache),
        ]
        .iter()
        .enumerate()
        {
            let labels = [("cache", *cache)];
            x.labeled_gauge(
                "gpufreq_cache_misses",
                (i == 0).then_some("Cache misses by cache."),
                &labels,
                s.misses,
            );
        }
        x.gauge(
            "gpufreq_queue_depth",
            "Jobs waiting for a worker.",
            stats.queue.depth as u64,
        );
        x.gauge(
            "gpufreq_queue_capacity",
            "Queue bound before `overloaded`.",
            stats.queue.capacity as u64,
        );
        x.gauge(
            "gpufreq_connections_active",
            "Connections currently served.",
            c.active,
        );
        x.counter(
            "gpufreq_connections_refused_total",
            "Connections refused at the cap.",
            c.refused,
        );
        x.histogram_us(
            "gpufreq_request_latency_us",
            "Whole-request serving latency (request read to response body ready).",
            &self.metrics.latency_snapshot(),
        );
        for (name, h) in self.stages.iter() {
            x.histogram_us(
                &format!("gpufreq_stage_{name}_latency_us"),
                &format!("Latency of the `{name}` stage."),
                &h.snapshot(),
            );
        }
        if let Some(log) = &self.trace_log {
            x.counter(
                "gpufreq_trace_log_written_total",
                "Slow/error records written to the trace log.",
                log.written(),
            );
            x.counter(
                "gpufreq_trace_log_dropped_total",
                "Trace-log records dropped (rate limit or I/O errors).",
                log.dropped(),
            );
        }
        x.finish()
    }

    /// Write one slow-request/error record if a trace log is attached
    /// and the outcome qualifies. A request without a client trace id
    /// gets one minted here so the log line is still greppable.
    fn log_request(
        &self,
        op: &str,
        trace_id: Option<&str>,
        total_us: u64,
        stages: &[(&'static str, u64)],
        body: &str,
        peer: Option<IpAddr>,
    ) {
        let Some(log) = &self.trace_log else { return };
        let error = error_code_of(body);
        if !log.qualifies(total_us, error.is_some()) {
            return;
        }
        let minted;
        let id = match trace_id {
            Some(id) => id,
            None => {
                minted = trace::mint();
                &minted
            }
        };
        let peer = peer.map(|p| p.to_string());
        log.write(&gpufreq_obs::TraceRecord {
            component: "serve",
            trace: id,
            op,
            total_us,
            stages,
            error,
            peer: peer.as_deref(),
        });
    }

    /// Finish a request answered inline (not through the worker pool):
    /// record the latency, absorb `stages` into the per-stage
    /// histograms, write the slow/error log record, and echo the trace
    /// id onto the body.
    fn finish_inline(
        &self,
        op: &str,
        accepted: Instant,
        trace_id: Option<&str>,
        peer: Option<IpAddr>,
        stages: &[(&'static str, u64)],
        body: String,
    ) -> String {
        let total_us = accepted.elapsed().as_micros() as u64;
        self.metrics.observe_us(total_us);
        for (name, us) in stages {
            self.stages.observe_us(name, *us);
        }
        self.log_request(op, trace_id, total_us, stages, &body, peer);
        attach_trace(body, trace_id)
    }

    // ------------------------------------------------------------------
    // Request execution
    // ------------------------------------------------------------------

    /// Resolve a wire device id to a served planner. The returned
    /// `Arc` pins the model for the duration of this request even if a
    /// concurrent `reload` swaps the slot.
    fn resolve(&self, id: &str) -> Result<(Device, Arc<TrainedPlanner>), ErrorBody> {
        let device: Device = id.parse().map_err(|e| ErrorBody::unknown_device(&e))?;
        self.planners
            .iter()
            .find(|(d, _)| *d == device)
            .map(|(d, slot)| (*d, slot.get()))
            .ok_or_else(|| ErrorBody::device_not_served(device, &self.devices()))
    }

    /// Hot-swap one device's model from a saved artifact at `path`:
    /// load + validate the artifact, re-home it onto the shared
    /// analysis cache, swap the slot, and invalidate the device's
    /// front-cache entries so stale bytes cannot be replayed for the
    /// new model. In-flight requests finish on the model they resolved.
    fn reload_model(&self, device_id: &str, path: &str) -> Result<(Device, u64), ErrorBody> {
        let device: Device = device_id
            .parse()
            .map_err(|e| ErrorBody::unknown_device(&e))?;
        let slot = self
            .planners
            .iter()
            .find(|(d, _)| *d == device)
            .map(|(_, slot)| slot)
            .ok_or_else(|| {
                ErrorBody::new(
                    ErrorCode::DeviceNotServed,
                    format!("no model loaded for `{device}`; reload cannot add devices"),
                )
            })?;
        let planner = TrainedPlanner::load_for_device(path, device)
            .map_err(|e| ErrorBody::new(ErrorCode::ReloadFailed, format!("{e}")))?
            .with_jobs(Some(1))
            .with_cache(Arc::clone(&self.analysis_cache));
        let version = slot.swap(planner);
        self.front.invalidate_device(device);
        Ok((device, version))
    }

    /// Execute a `reload` to its serialized response body, counted.
    fn reload_body(&self, device: &str, path: &str) -> String {
        self.metrics.count_reload();
        match self.reload_model(device, path) {
            Ok((device, version)) => Response::Reload { device, version }.to_json(),
            Err(e) => self.error_response(e),
        }
    }

    /// The cached compact-JSON `ParetoPrediction` fragment for one
    /// `(device, source)` pair; a hit skips parsing, analysis and the
    /// SVR scan entirely. Failures are typed and never cached.
    fn prediction_fragment(
        &self,
        device: Device,
        planner: &TrainedPlanner,
        source: &str,
        rec: &mut SpanRecorder,
    ) -> Result<Arc<str>, ErrorBody> {
        let key = key_hash(device, source);
        if let Some(hit) = rec.time("cache_lookup", || self.front.get(key, source)) {
            return Ok(hit);
        }
        // The split below runs exactly `TrainedPlanner::predict_source`
        // (shared-cache analyze, then the SVR scan), just timed as two
        // stages — errors and bytes are identical to the reference.
        let analyzed = match rec.time("analyze", || planner.cache().analyze(source)) {
            Ok(analyzed) => analyzed,
            Err(e) => return Err(ErrorBody::new(ErrorCode::Kernel, format!("{e}"))),
        };
        match rec.time("score", || planner.predict(&analyzed.0)) {
            // `to_compact_json` writes the same bytes as the generic
            // serializer (pinned in `gpufreq_core::predict`) without
            // building a value tree per response.
            Ok(prediction) => {
                let fragment: Arc<str> = Arc::from(prediction.to_compact_json().as_str());
                self.front
                    .insert(key, device, source, Arc::clone(&fragment));
                Ok(fragment)
            }
            Err(e) => Err(ErrorBody::new(ErrorCode::Kernel, format!("{e}"))),
        }
    }

    /// Execute a request into a typed [`Response`] (no front cache, no
    /// metrics) — the reference semantics the fast path is pinned
    /// against, and the API in-process callers use. `reload` performs
    /// the actual hot-swap (it is a side-effectful admin verb).
    pub fn handle(&self, request: &Request) -> Response {
        match request {
            Request::Predict { device, source } => match self.resolve(device) {
                Ok((device, planner)) => match planner.predict_source(source) {
                    Ok(prediction) => Response::Predict { device, prediction },
                    Err(e) => ErrorBody::new(ErrorCode::Kernel, format!("{e}")).into_response(),
                },
                Err(e) => e.into_response(),
            },
            Request::PredictBatch { device, sources } => match self.resolve(device) {
                Ok((device, planner)) => Response::PredictBatch {
                    device,
                    results: planner
                        .predict_batch(sources)
                        .into_iter()
                        .map(|r| match r {
                            Ok(p) => crate::protocol::BatchResult::Ok(p),
                            Err(e) => crate::protocol::BatchResult::Err(ErrorBody::new(
                                ErrorCode::Kernel,
                                format!("{e}"),
                            )),
                        })
                        .collect(),
                },
                Err(e) => e.into_response(),
            },
            Request::Devices => Response::Devices {
                devices: self
                    .planners
                    .iter()
                    .map(|(device, slot)| {
                        let planner = slot.get();
                        let spec = planner.simulator().spec();
                        DeviceInfo {
                            id: device.id().to_string(),
                            name: spec.name.clone(),
                            memory_domains: spec.clocks.supported_memory_clocks().len(),
                            configurations: spec.clocks.actual_configs().len(),
                        }
                    })
                    .collect(),
            },
            Request::Stats => Response::Stats {
                stats: Box::new(self.stats()),
            },
            Request::Metrics => Response::Metrics {
                exposition: self.exposition(),
            },
            Request::Reload { device, path } => match self.reload_model(device, path) {
                Ok((device, version)) => Response::Reload { device, version },
                Err(e) => e.into_response(),
            },
            Request::Shutdown => Response::Shutdown,
        }
    }

    /// Serialized error response, counted.
    fn error_response(&self, error: ErrorBody) -> String {
        self.metrics.count_error();
        error.into_response().to_json()
    }

    /// Count and serialize a request that failed before it parsed into
    /// a protocol [`Request`] — the HTTP gateway's analogue of a
    /// malformed protocol line (unroutable path, wrong method, bad
    /// body), so both surfaces tally malformed traffic identically.
    pub(crate) fn malformed_request_body(&self, error: ErrorBody) -> String {
        self.metrics.count_line();
        self.error_response(error)
    }

    /// Execute a request to its serialized response body — the worker
    /// path: metrics are counted, predictions go through the front
    /// cache, `shutdown` flips the server into draining. Stage timings
    /// are recorded into `rec` (cache lookup, analysis, scoring).
    fn body_for(&self, request: &Request, rec: &mut SpanRecorder) -> String {
        match request {
            Request::Predict { device, source } => {
                self.metrics.count_predict();
                match self.resolve(device) {
                    Ok((device, planner)) => {
                        match self.prediction_fragment(device, &planner, source, rec) {
                            Ok(fragment) => format!(
                                "{{\"ok\":\"predict\",\"device\":\"{}\",\"prediction\":{}}}",
                                device.id(),
                                fragment
                            ),
                            Err(e) => self.error_response(e),
                        }
                    }
                    Err(e) => self.error_response(e),
                }
            }
            Request::PredictBatch { device, sources } => {
                self.metrics.count_predict_batch(sources.len());
                match self.resolve(device) {
                    Ok((device, planner)) => {
                        let mut body = format!(
                            "{{\"ok\":\"predict_batch\",\"device\":\"{}\",\"results\":[",
                            device.id()
                        );
                        for (i, source) in sources.iter().enumerate() {
                            if i > 0 {
                                body.push(',');
                            }
                            match self.prediction_fragment(device, &planner, source, rec) {
                                Ok(fragment) => {
                                    body.push_str("{\"prediction\":");
                                    body.push_str(&fragment);
                                    body.push('}');
                                }
                                Err(e) => {
                                    body.push_str("{\"error\":");
                                    body.push_str(
                                        &serde_json::to_string(&e)
                                            // analyze:allow(panic-in-request-path, reason = "ErrorBody is a struct of plain strings; serializing it cannot fail")
                                            .expect("error serialization is infallible"),
                                    );
                                    body.push('}');
                                }
                            }
                        }
                        body.push_str("]}");
                        body
                    }
                    Err(e) => self.error_response(e),
                }
            }
            Request::Devices => {
                self.metrics.count_devices();
                self.handle(request).to_json()
            }
            Request::Stats => {
                self.metrics.count_stats();
                self.handle(request).to_json()
            }
            Request::Metrics => {
                self.metrics.count_metrics();
                self.handle(request).to_json()
            }
            Request::Reload { device, path } => self.reload_body(device, path),
            Request::Shutdown => {
                self.metrics.count_shutdown();
                self.initiate_shutdown();
                Response::Shutdown.to_json()
            }
        }
    }

    /// Run the admission gates for `request` from `peer`, returning
    /// the serialized refusal body when a gate rejects. Only predict
    /// work from an actual socket peer is gated: control-plane verbs
    /// must stay reachable on an overloaded server, and the in-process
    /// replay path (`peer` = `None`) must stay deterministic.
    fn admission_error(&self, request: &Request, peer: Option<IpAddr>) -> Option<String> {
        if !matches!(
            request,
            Request::Predict { .. } | Request::PredictBatch { .. }
        ) {
            return None;
        }
        let rejection = self.admission.admit(peer, &self.metrics)?;
        self.metrics.count_rejected();
        let message = match rejection {
            Rejection::P99 => {
                self.metrics.count_rejected_p99();
                "rolling p99 latency is over target; retry later"
            }
            Rejection::Quota => {
                self.metrics.count_rejected_quota();
                "per-client request quota exhausted; slow down"
            }
        };
        Some(
            ErrorBody::new(ErrorCode::Overloaded, message)
                .into_response()
                .to_json(),
        )
    }

    // ------------------------------------------------------------------
    // Worker pool + connection plumbing
    // ------------------------------------------------------------------

    /// One worker: pop jobs until the queue is closed and drained.
    ///
    /// A panic inside request execution must not strand the waiting
    /// connection: it is caught, answered as a typed `internal` error,
    /// and the worker keeps serving.
    fn worker_loop(&self) {
        while let Some(job) = self.queue.pop() {
            let body = self.execute(&job);
            job.slot.fill(body);
        }
    }

    /// Run one job to its response body, catching panics so the
    /// response [`Slot`] is *always* filled (an unfilled slot would
    /// wedge the connection's writer forever). The worker owns the
    /// job's span recorder: queue wait is measured here, execution
    /// stages inside [`body_for`](Server::body_for), and the whole
    /// record feeds the per-stage histograms and the slow log.
    fn execute(&self, job: &Job) -> String {
        let mut rec = SpanRecorder::start();
        rec.record_us("admission", job.admission_us);
        rec.record_us("queue_wait", job.accepted.elapsed().as_micros() as u64);
        let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.body_for(&job.request, &mut rec)
        }))
        .unwrap_or_else(|_| {
            self.error_response(ErrorBody::new(
                ErrorCode::Internal,
                "internal error while serving the request",
            ))
        });
        let total_us = job.accepted.elapsed().as_micros() as u64;
        self.metrics.observe_us(total_us);
        self.stages.absorb(&rec);
        self.log_request(
            job.request.op(),
            job.trace.as_deref(),
            total_us,
            rec.spans(),
            &body,
            job.peer,
        );
        attach_trace(body, job.trace.as_deref())
    }

    /// Process exactly one queued job — lets tests drive the worker
    /// side by hand without spawning a pool.
    #[cfg(test)]
    fn worker_drain_one(&self) {
        let job = self.queue.pop().expect("a job is queued");
        let body = self.execute(&job);
        job.slot.fill(body);
    }

    /// Execute one already-parsed request synchronously on the calling
    /// thread — the HTTP gateway's entry point. Control-plane verbs
    /// (`shutdown`, `reload`) run inline; everything else goes through
    /// the shared queue + worker pool with the same admission and
    /// backpressure semantics as the line protocol.
    pub(crate) fn execute_direct(
        &self,
        request: Request,
        peer: Option<IpAddr>,
        trace_id: Option<&str>,
    ) -> String {
        self.metrics.count_line();
        let accepted = Instant::now();
        if let Request::Reload { device, path } = &request {
            let body = self.reload_body(device, path);
            return self.finish_inline("reload", accepted, trace_id, peer, &[], body);
        }
        if matches!(request, Request::Shutdown) {
            self.metrics.count_shutdown();
            self.initiate_shutdown();
            let body = Response::Shutdown.to_json();
            return self.finish_inline("shutdown", accepted, trace_id, peer, &[], body);
        }
        let gate = Instant::now();
        let admission = self.admission_error(&request, peer);
        let admission_us = gate.elapsed().as_micros() as u64;
        if let Some(body) = admission {
            return self.finish_inline(
                request.op(),
                accepted,
                trace_id,
                peer,
                &[("admission", admission_us)],
                body,
            );
        }
        let slot = Arc::new(Slot::new());
        let op = request.op();
        let job = Job {
            request,
            slot: Arc::clone(&slot),
            accepted,
            trace: trace_id.map(str::to_string),
            peer,
            admission_us,
        };
        match self.queue.try_push(job) {
            // The worker records latency, spans, and the trace echo
            // when it fills the slot.
            Ok(()) => slot.wait(),
            Err((_, PushError::Full)) => {
                self.metrics.count_rejected();
                let body = ErrorBody::new(
                    ErrorCode::Overloaded,
                    format!(
                        "request queue is full ({} queued); retry later",
                        self.queue.capacity()
                    ),
                )
                .into_response()
                .to_json();
                self.finish_inline(op, accepted, trace_id, peer, &[], body)
            }
            Err((_, PushError::Closed)) => {
                let body = self.error_response(ErrorBody::new(
                    ErrorCode::ShuttingDown,
                    "server is shutting down",
                ));
                self.finish_inline(op, accepted, trace_id, peer, &[], body)
            }
        }
    }

    /// Accept one protocol line: parse, enqueue (or answer inline),
    /// and push the response slot onto the connection's in-order lane.
    ///
    /// `wait_for_space` selects the backpressure flavor: single-stream
    /// replay pauses the reader on a full queue (so replayed responses
    /// never depend on worker timing), while TCP connections reject
    /// with `overloaded` (the acceptor must never block). `peer` feeds
    /// the admission gates; `None` (replay) is always admitted.
    fn accept_line(
        &self,
        line: &str,
        lane: &ResponseLane,
        local_shutdown: &mut bool,
        wait_for_space: bool,
        peer: Option<IpAddr>,
    ) {
        self.metrics.count_line();
        let accepted = Instant::now();
        let trace = trace::extract(line).map(str::to_string);
        let trace_id = trace.as_deref();
        let answer = |op: &str, stages: &[(&'static str, u64)], body: String| {
            lane.push(Arc::new(Slot::filled(
                self.finish_inline(op, accepted, trace_id, peer, stages, body),
            )));
        };
        if line.len() > MAX_LINE_BYTES {
            answer("invalid", &[], self.error_response(oversize_error()));
            return;
        }
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(e) => {
                answer("invalid", &[], self.error_response(e));
                return;
            }
        };
        if *local_shutdown {
            // Deterministic drain: once this stream has asked for
            // shutdown, everything after it is refused by the stream's
            // own reader instead of racing the closing queue.
            answer(
                request.op(),
                &[],
                self.error_response(ErrorBody::new(
                    ErrorCode::ShuttingDown,
                    "server is shutting down",
                )),
            );
            return;
        }
        if matches!(request, Request::Shutdown) {
            // Control-plane: a shutdown must never lose a race against
            // a data-plane queue kept full by busy clients, so it is
            // answered inline instead of queued. Closing the queue
            // refuses *new* work; everything already queued still
            // drains, and this lane keeps emitting responses in
            // request order.
            self.metrics.count_shutdown();
            self.initiate_shutdown();
            *local_shutdown = true;
            answer("shutdown", &[], Response::Shutdown.to_json());
            return;
        }
        if let Request::Reload { device, path } = &request {
            // Control-plane like `shutdown`: a model hot-swap must not
            // lose a race against a full data-plane queue, so it runs
            // inline on the connection's reader thread.
            answer("reload", &[], self.reload_body(device, path));
            return;
        }
        let gate = Instant::now();
        let admission = self.admission_error(&request, peer);
        let admission_us = gate.elapsed().as_micros() as u64;
        if let Some(body) = admission {
            answer(request.op(), &[("admission", admission_us)], body);
            return;
        }
        let slot = Arc::new(Slot::new());
        let op = request.op();
        let job = Job {
            request,
            slot: Arc::clone(&slot),
            accepted,
            trace: trace.clone(),
            peer,
            admission_us,
        };
        let pushed = if wait_for_space {
            self.queue.push_wait(job)
        } else {
            self.queue.try_push(job)
        };
        match pushed {
            Ok(()) => {
                lane.push(slot);
            }
            Err((_, PushError::Full)) => {
                self.metrics.count_rejected();
                let body = ErrorBody::new(
                    ErrorCode::Overloaded,
                    format!(
                        "request queue is full ({} queued); retry later",
                        self.queue.capacity()
                    ),
                )
                .into_response()
                .to_json();
                answer(op, &[], body);
            }
            Err((_, PushError::Closed)) => {
                answer(
                    op,
                    &[],
                    self.error_response(ErrorBody::new(
                        ErrorCode::ShuttingDown,
                        "server is shutting down",
                    )),
                );
            }
        }
    }

    /// Read protocol lines from `reader` until EOF (or, under
    /// shutdown, until the next read timeout), feeding `lane`.
    ///
    /// Lines are assembled through a bounded buffer: once a line
    /// crosses [`MAX_LINE_BYTES`] the rest of it is *discarded as it
    /// streams in* (never accumulated), and the finished line is
    /// answered with a typed `bad_request` — a newline-less firehose
    /// cannot grow server memory. A poisoned lane (the connection's
    /// writer died) stops the pump: answers for a dead client are
    /// undeliverable, so reading more requests for it is pure waste.
    fn pump<R: BufRead>(
        &self,
        mut reader: R,
        lane: &ResponseLane,
        wait_for_space: bool,
        peer: Option<IpAddr>,
    ) {
        let mut buf: Vec<u8> = Vec::new();
        let mut overflowed = false;
        let mut local_shutdown = false;
        loop {
            if lane.is_poisoned() {
                // Regression guard: the writer's socket failed; without
                // this check the reader kept parsing and enqueueing work
                // whose responses could never be delivered.
                break;
            }
            let (consumed, complete) = match reader.fill_buf() {
                Ok([]) => {
                    // EOF: a final unterminated line is still a request.
                    if !buf.is_empty() || overflowed {
                        self.finish_line(
                            &mut buf,
                            &mut overflowed,
                            lane,
                            &mut local_shutdown,
                            wait_for_space,
                            peer,
                        );
                    }
                    break;
                }
                Ok(bytes) => match bytes.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        append_bounded(&mut buf, &bytes[..pos], &mut overflowed);
                        (pos + 1, true)
                    }
                    None => {
                        append_bounded(&mut buf, bytes, &mut overflowed);
                        (bytes.len(), false)
                    }
                },
                // A read timeout (TCP sockets poll at `READ_POLL`):
                // keep any partial line buffered and re-check the
                // shutdown flag.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    if self.is_shutting_down() {
                        break;
                    }
                    continue;
                }
                Err(_) => break,
            };
            reader.consume(consumed);
            if complete {
                self.finish_line(
                    &mut buf,
                    &mut overflowed,
                    lane,
                    &mut local_shutdown,
                    wait_for_space,
                    peer,
                );
            }
            // TCP only: a client that keeps streaming must not pin its
            // connection thread (and with it the daemon) open across a
            // server-wide shutdown — the timeout arm alone never fires
            // while data keeps arriving. Replay streams instead drain
            // to EOF so every recorded line gets its deterministic
            // answer.
            if !wait_for_space && self.is_shutting_down() {
                break;
            }
        }
    }

    /// One assembled line out of [`pump`](Server::pump): answer
    /// oversize and non-UTF-8 lines with typed errors, hand everything
    /// else to [`accept_line`](Server::accept_line). Resets the buffer
    /// for the next line.
    fn finish_line(
        &self,
        buf: &mut Vec<u8>,
        overflowed: &mut bool,
        lane: &ResponseLane,
        local_shutdown: &mut bool,
        wait_for_space: bool,
        peer: Option<IpAddr>,
    ) {
        let line_bytes = std::mem::take(buf);
        if std::mem::take(overflowed) {
            self.metrics.count_line();
            lane.push(Arc::new(Slot::filled(
                self.error_response(oversize_error()),
            )));
            return;
        }
        let Ok(line) = String::from_utf8(line_bytes) else {
            self.metrics.count_line();
            lane.push(Arc::new(Slot::filled(self.error_response(ErrorBody::new(
                ErrorCode::BadRequest,
                "request line is not valid UTF-8",
            )))));
            return;
        };
        let line = line.trim();
        if !line.is_empty() {
            self.accept_line(line, lane, local_shutdown, wait_for_space, peer);
        }
    }

    /// Serve one already-connected byte stream (stdin/stdout, a pipe,
    /// an in-memory transcript): spawn the worker pool, answer every
    /// line in order, then drain and shut down at EOF. Returns the
    /// final metrics snapshot — the daemon's exit summary.
    ///
    /// This is also the replay entry point: determinism tests feed the
    /// same recorded stream at different worker counts and compare the
    /// output bytes.
    pub fn serve_lines<R, W>(&self, reader: R, writer: W) -> io::Result<ServerStats>
    where
        R: BufRead,
        W: Write + Send,
    {
        let lane = ResponseLane::new();
        let write_result = std::thread::scope(|s| {
            for _ in 0..self.workers {
                s.spawn(|| self.worker_loop());
            }
            let lane_ref = &lane;
            let stages = &self.stages;
            let writer_thread = s.spawn(move || Server::write_lane(lane_ref, writer, Some(stages)));
            // Single-stream replay: pause the reader on a full queue
            // instead of rejecting, so the replayed bytes stay
            // independent of worker timing at any stream length.
            self.pump(reader, &lane, true, None);
            lane.close();
            // analyze:allow(panic-in-request-path, reason = "join() only errors if the writer itself panicked; re-raising that panic is the faithful report")
            let result = writer_thread.join().expect("writer thread panicked");
            // Now that every accepted job has been answered, release
            // the workers (the scope joins them).
            self.initiate_shutdown();
            result
        });
        write_result?;
        Ok(self.stats())
    }

    /// Drain `lane` in order into `writer`, one body per line. Each
    /// body and its newline go out in a single write, and any further
    /// responses that are already finished ride along in the same
    /// write (bounded) — a pipelining client wakes once per batch
    /// instead of once per line. The first write error poisons the
    /// lane (so the connection's reader stops accepting new work for a
    /// client that can never see the answers) but draining continues,
    /// so producers never block on a dead connection.
    fn write_lane<W: Write>(
        lane: &ResponseLane,
        mut writer: W,
        stages: Option<&StageSet>,
    ) -> io::Result<()> {
        /// Stop coalescing once a batch reaches this many bytes.
        const BATCH_BYTES: usize = 256 * 1024;
        let mut result = Ok(());
        let mut buf: Vec<u8> = Vec::new();
        // A slot popped by `try_next` whose body was still being
        // computed: it is next in request order, so it opens the
        // following batch.
        let mut carry: Option<std::sync::Arc<Slot>> = None;
        while let Some(slot) = carry.take().or_else(|| lane.next()) {
            buf.clear();
            buf.extend_from_slice(slot.wait().as_bytes());
            buf.push(b'\n');
            while buf.len() < BATCH_BYTES {
                let Some(next) = lane.try_next() else { break };
                match next.try_take() {
                    Some(body) => {
                        buf.extend_from_slice(body.as_bytes());
                        buf.push(b'\n');
                    }
                    None => {
                        carry = Some(next);
                        break;
                    }
                }
            }
            if result.is_ok() {
                let started = Instant::now();
                result = writer.write_all(&buf).and_then(|()| writer.flush());
                if let Some(stages) = stages {
                    // One "write" span per flushed batch, not per
                    // response — that is the unit the socket sees.
                    stages.observe_us("write", started.elapsed().as_micros() as u64);
                }
                if result.is_err() {
                    lane.poison();
                }
            }
        }
        result
    }

    /// Handle one accepted TCP connection: reader + in-order writer.
    ///
    /// Socket setup (`try_clone`, timeouts) can fail under fd
    /// pressure; such connections are dropped, **counted**
    /// (`conn_failed` in the stats), and logged once per process —
    /// they used to vanish silently through `?`.
    fn connection(&self, stream: TcpStream, peer: Option<IpAddr>) {
        let setup = (|| -> io::Result<(BufReader<TcpStream>, TcpStream)> {
            stream.set_nonblocking(false)?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(READ_POLL))?;
            let reader = BufReader::new(stream.try_clone()?);
            Ok((reader, stream))
        })();
        let (reader, writer) = match setup {
            Ok(pair) => pair,
            Err(e) => {
                self.note_setup_failure(&e);
                return;
            }
        };
        let lane = ResponseLane::new();
        std::thread::scope(|s| {
            let lane_ref = &lane;
            let stages = &self.stages;
            let writer_thread = s.spawn(move || Server::write_lane(lane_ref, writer, Some(stages)));
            // TCP: never block the shared acceptor path on a full
            // queue — reject with `overloaded`.
            self.pump(reader, &lane, false, peer);
            lane.close();
            // analyze:allow(panic-in-request-path, reason = "join() only errors if the connection writer panicked; re-raising is the faithful report")
            let _ = writer_thread.join().expect("connection writer panicked");
        });
    }

    /// Record a connection dropped because socket setup failed, and
    /// log the first occurrence (one line per process, not one per
    /// victim — fd exhaustion would otherwise spam the log).
    pub(crate) fn note_setup_failure(&self, error: &io::Error) {
        self.metrics.count_conn_failed();
        static LOGGED: std::sync::Once = std::sync::Once::new();
        LOGGED.call_once(|| {
            eprintln!(
                "[gpufreq-serve] dropping connection: socket setup failed: {error} \
                 (further occurrences counted as conn_failed, not logged)"
            );
        });
    }

    /// Try to claim a connection slot under the cap. On success the
    /// caller owns one decrement (performed when the connection thread
    /// exits).
    fn claim_connection_slot(&self) -> bool {
        let gate = &self.active_connections;
        let claim = |n: usize| (n < self.max_connections).then_some(n + 1);
        // ordering: the active-connection gate is a self-contained
        // counter — no other memory is published through it (each
        // connection's state is created by the thread that owns it),
        // so the RMW and the paired decrement can both be Relaxed; the
        // fetch_update CAS alone guarantees the cap is never crossed.
        gate.fetch_update(Ordering::Relaxed, Ordering::Relaxed, claim)
            .is_ok()
    }

    /// Refuse a connection past the cap: count it and make a
    /// best-effort attempt to deliver a typed `overloaded` refusal
    /// (JSON line or HTTP 503, by listener) before dropping the
    /// socket. The write is nonblocking so a victim's socket can never
    /// stall the shared acceptor; the payload is far below any send
    /// buffer, so it lands whole or the peer was unreachable anyway.
    fn refuse_connection(&self, mut stream: TcpStream, kind: ConnKind) {
        self.metrics.count_conn_refused();
        let body = ErrorBody::new(
            ErrorCode::Overloaded,
            format!(
                "connection cap reached ({} active); retry later",
                self.max_connections
            ),
        )
        .into_response()
        .to_json();
        let payload = match kind {
            ConnKind::Line => format!("{body}\n"),
            ConnKind::Http => crate::http::refusal_payload(&body),
        };
        stream.set_nonblocking(true).ok();
        let _ = stream.write_all(payload.as_bytes());
    }

    /// Gate one accepted socket through the connection cap and spawn
    /// its handler thread into `scope`.
    fn dispatch<'scope, 'env>(
        &'env self,
        scope: &'scope Scope<'scope, 'env>,
        stream: TcpStream,
        peer: IpAddr,
        kind: ConnKind,
    ) {
        if !self.claim_connection_slot() {
            self.refuse_connection(stream, kind);
            return;
        }
        self.metrics.count_conn_opened();
        scope.spawn(move || {
            match kind {
                ConnKind::Line => self.connection(stream, Some(peer)),
                ConnKind::Http => crate::http::serve_http_connection(self, stream, peer),
            }
            // ordering: see `claim_connection_slot` — a bare counter.
            self.active_connections.fetch_sub(1, Ordering::Relaxed);
            self.metrics.count_conn_closed();
        });
    }

    /// Accept sockets from `listener` until shutdown, dispatching each
    /// through the connection cap. Runs for both the JSON-lines
    /// listener and the optional HTTP listener; both share the cap,
    /// the worker pool, and the caches.
    fn accept_loop<'scope, 'env>(
        &'env self,
        scope: &'scope Scope<'scope, 'env>,
        listener: &TcpListener,
        kind: ConnKind,
    ) {
        loop {
            if self.is_shutting_down() {
                break;
            }
            match listener.accept() {
                Ok((stream, peer)) => self.dispatch(scope, stream, peer.ip(), kind),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // A transient accept failure must not kill the
                    // daemon; log and keep serving.
                    eprintln!("[gpufreq-serve] accept error: {e}");
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
    }

    /// Serve TCP connections on `listener` until a `shutdown` request
    /// arrives, then drain and return the final metrics snapshot.
    ///
    /// Each connection gets its own reader and in-order writer thread;
    /// all of them share the worker pool, queue, caches and metrics.
    pub fn serve(&self, listener: TcpListener) -> io::Result<ServerStats> {
        self.serve_with_http(listener, None)
    }

    /// Like [`serve`](Server::serve), with an optional second listener
    /// answering the HTTP/1.1 gateway (see [`crate::http`]). Both
    /// listeners share one server core: the same worker pool, queue,
    /// caches, metrics, admission gates, and connection cap — a
    /// `shutdown` from either side drains both.
    pub fn serve_with_http(
        &self,
        listener: TcpListener,
        http: Option<TcpListener>,
    ) -> io::Result<ServerStats> {
        listener.set_nonblocking(true)?;
        if let Some(h) = &http {
            h.set_nonblocking(true)?;
        }
        std::thread::scope(|s| {
            for _ in 0..self.workers {
                s.spawn(|| self.worker_loop());
            }
            if let Some(http) = &http {
                s.spawn(move || self.accept_loop(s, http, ConnKind::Http));
            }
            self.accept_loop(s, &listener, ConnKind::Line);
            // Shutdown: the queue is closed, workers drain and exit,
            // connection threads notice the flag at their next read
            // timeout; the scope joins them all.
        });
        Ok(self.stats())
    }
}

/// Render a [`ServerStats`] snapshot as the human-readable summary
/// table the CLI prints on exit and `loadgen` prints per mix.
pub fn render_stats_table(stats: &ServerStats) -> String {
    let r = &stats.requests;
    let c = &stats.connections;
    let hit_rate = |hits: u64, misses: u64| -> String {
        let total = hits + misses;
        if total == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * hits as f64 / total as f64)
        }
    };
    let rows = vec![
        vec!["requests".into(), r.total.to_string()],
        vec!["  predict".into(), r.predict.to_string()],
        vec![
            "  predict_batch".into(),
            format!("{} ({} kernels)", r.predict_batch, r.batch_kernels),
        ],
        vec!["  errors".into(), r.errors.to_string()],
        vec!["  rejected (overloaded)".into(), r.rejected.to_string()],
        vec![
            "    by p99 target / quota".into(),
            format!("{}/{}", r.rejected_p99, r.rejected_quota),
        ],
        vec!["  reload".into(), r.reload.to_string()],
        vec![
            "connections opened/active".into(),
            format!("{}/{}", c.opened, c.active),
        ],
        vec![
            "connections refused/failed".into(),
            format!("{}/{}", c.refused, c.failed),
        ],
        vec![
            "front cache hit rate".into(),
            hit_rate(stats.front_cache.hits, stats.front_cache.misses),
        ],
        vec![
            "front cache len/capacity".into(),
            format!("{}/{}", stats.front_cache.len, stats.front_cache.capacity),
        ],
        vec![
            "front cache evictions".into(),
            stats.front_cache.evictions.to_string(),
        ],
        vec![
            "analysis cache hit rate".into(),
            hit_rate(stats.analysis_cache.hits, stats.analysis_cache.misses),
        ],
        vec![
            "queue depth/capacity".into(),
            format!("{}/{}", stats.queue.depth, stats.queue.capacity),
        ],
        vec!["workers".into(), stats.workers.to_string()],
        vec![
            "latency p50/p95/p99 (µs)".into(),
            format!(
                "{}/{}/{}",
                stats.latency_us.p50, stats.latency_us.p95, stats.latency_us.p99
            ),
        ],
        vec!["latency max (µs)".into(), stats.latency_us.max.to_string()],
    ];
    ascii_table(&["metric", "value"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::Quota;
    use gpufreq_core::{Corpus, ModelConfig, Planner};
    use std::net::Ipv4Addr;
    use std::sync::OnceLock;

    const SAXPY: &str = "__kernel void saxpy(__global float* x, __global float* y, float a) {
        uint i = get_global_id(0);
        y[i] = a * x[i] + y[i];
    }";

    /// One fast Titan X planner shared by every test in this module
    /// (training once keeps the suite fast).
    fn planner() -> TrainedPlanner {
        static PLANNER: OnceLock<TrainedPlanner> = OnceLock::new();
        PLANNER
            .get_or_init(|| {
                Planner::builder()
                    .corpus(Corpus::Fast)
                    .settings(6)
                    .model_config(ModelConfig::relaxed())
                    .train()
                    .expect("fast corpus trains")
            })
            .clone()
    }

    fn server(config: ServerConfig) -> Server {
        Server::new(vec![planner()], config).expect("one planner is valid")
    }

    fn small_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 64,
            cache_shards: 4,
            analysis_cache_capacity: 32,
            max_connections: 32,
            admission: AdmissionConfig::default(),
        }
    }

    #[test]
    fn construction_rejects_empty_and_duplicate_planners() {
        assert_eq!(
            Server::new(Vec::new(), ServerConfig::default()).unwrap_err(),
            ServeError::NoPlanners
        );
        let err = Server::new(vec![planner(), planner()], ServerConfig::default()).unwrap_err();
        assert_eq!(err, ServeError::DuplicateDevice(Device::TitanX));
        assert!(err.to_string().contains("titan-x"), "{err}");
    }

    #[test]
    fn fast_path_bytes_match_reference_serialization() {
        let server = server(small_config());
        // predict: cold (computes), then warm (cache replay) — both
        // must equal the reference `handle` serialization.
        let body = |request: &Request| server.body_for(request, &mut SpanRecorder::start());
        let predict = Request::predict(Device::TitanX, SAXPY);
        let reference = server.handle(&predict).to_json();
        assert_eq!(body(&predict), reference, "cold");
        assert_eq!(body(&predict), reference, "warm (cache hit)");
        assert!(server.front.hits() >= 1, "second predict hit the cache");
        // predict_batch, with a per-kernel error in the middle slot.
        let batch = Request::predict_batch(
            Device::TitanX,
            vec![SAXPY.into(), "not a kernel".into(), SAXPY.into()],
        );
        assert_eq!(body(&batch), server.handle(&batch).to_json());
        // devices and the error responses too.
        let devices = Request::Devices;
        assert_eq!(body(&devices), server.handle(&devices).to_json());
        for bad in [
            Request::Predict {
                device: "gtx-9000".into(),
                source: SAXPY.into(),
            },
            Request::Predict {
                device: "tesla-p100".into(), // registered but not served
                source: SAXPY.into(),
            },
        ] {
            assert_eq!(body(&bad), server.handle(&bad).to_json());
        }
    }

    #[test]
    fn unknown_and_unserved_devices_are_typed_errors() {
        let server = server(small_config());
        let unknown = server.handle(&Request::Predict {
            device: "gtx-9000".into(),
            source: SAXPY.into(),
        });
        let error = unknown.error().expect("unknown device is an error");
        assert_eq!(error.code, ErrorCode::UnknownDevice);
        assert!(error.message.contains("titan-x"), "{}", error.message);
        let unserved = server.handle(&Request::Predict {
            device: "tesla-k20c".into(),
            source: SAXPY.into(),
        });
        let error = unserved.error().expect("unserved device is an error");
        assert_eq!(error.code, ErrorCode::DeviceNotServed);
        assert!(
            error.message.contains("serving: titan-x"),
            "{}",
            error.message
        );
    }

    #[test]
    fn serve_lines_answers_in_request_order_and_reports_stats() {
        // One worker: with more, the two identical predicts may run
        // concurrently and both miss the front cache — the response
        // bytes are still identical (pinned below and by the root
        // determinism suite), but the hit *counter* would be racy.
        let server = server(ServerConfig {
            workers: 1,
            ..small_config()
        });
        let stream = [
            Request::predict(Device::TitanX, SAXPY).to_json(),
            "this is not json".to_string(),
            Request::Devices.to_json(),
            Request::predict(Device::TitanX, SAXPY).to_json(),
            Request::Stats.to_json(),
            Request::Shutdown.to_json(),
            // After shutdown in the same stream: deterministic refusal.
            Request::Devices.to_json(),
        ]
        .join("\n");
        let mut out = Vec::new();
        let summary = server.serve_lines(stream.as_bytes(), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 7, "one response per request line");
        let parsed: Vec<Response> = lines
            .iter()
            .map(|l| Response::parse(l).expect("every response line parses"))
            .collect();
        assert!(matches!(parsed[0], Response::Predict { .. }));
        assert_eq!(parsed[1].error().unwrap().code, ErrorCode::BadRequest);
        assert!(matches!(parsed[2], Response::Devices { .. }));
        assert_eq!(
            lines[3], lines[0],
            "repeated kernel replays identical bytes"
        );
        assert!(matches!(parsed[4], Response::Stats { .. }));
        assert!(matches!(parsed[5], Response::Shutdown));
        assert_eq!(parsed[6].error().unwrap().code, ErrorCode::ShuttingDown);
        assert_eq!(summary.requests.total, 7);
        assert_eq!(summary.requests.predict, 2);
        assert_eq!(summary.requests.shutdown, 1);
        assert!(summary.requests.errors >= 2);
        assert!(summary.front_cache.hits >= 1);
        assert!(summary.latency_us.count >= 7);
    }

    #[test]
    fn oversize_and_non_utf8_lines_are_typed_errors_mid_stream() {
        let server = server(small_config());
        // A giant newline-less prefix must not be buffered: the line is
        // rejected, and the valid request after it is still served.
        let mut stream: Vec<u8> = Vec::new();
        stream.extend(std::iter::repeat_n(b'x', MAX_LINE_BYTES + 16));
        stream.push(b'\n');
        stream.extend_from_slice(&[0xff, 0xfe, b'\n']); // invalid UTF-8
        stream.extend_from_slice(Request::Devices.to_json().as_bytes());
        stream.push(b'\n');
        let mut out = Vec::new();
        let summary = server.serve_lines(stream.as_slice(), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3, "all three lines answered: {}", lines.len());
        let oversize = Response::parse(lines[0]).unwrap();
        assert_eq!(oversize.error().unwrap().code, ErrorCode::BadRequest);
        assert!(oversize.error().unwrap().message.contains("exceeds"));
        let utf8 = Response::parse(lines[1]).unwrap();
        assert_eq!(utf8.error().unwrap().code, ErrorCode::BadRequest);
        assert!(utf8.error().unwrap().message.contains("UTF-8"));
        assert!(matches!(
            Response::parse(lines[2]).unwrap(),
            Response::Devices { .. }
        ));
        assert_eq!(summary.requests.total, 3);
        assert_eq!(summary.requests.errors, 2);
    }

    #[test]
    fn replay_longer_than_the_queue_never_sees_overloaded() {
        // Single-stream replay pauses the reader on a full queue, so a
        // stream much longer than the queue bound drains without a
        // single `overloaded` rejection — at any worker count.
        let server = server(ServerConfig {
            workers: 2,
            queue_capacity: 2,
            ..small_config()
        });
        let stream = vec![Request::Devices.to_json(); 64].join("\n");
        let mut out = Vec::new();
        let summary = server.serve_lines(stream.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.requests.total, 64);
        assert_eq!(summary.requests.rejected, 0, "replay must not shed load");
        assert_eq!(summary.requests.devices, 64);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 64);
        assert!(lines.iter().all(|l| *l == lines[0]));
    }

    #[test]
    fn full_queue_rejects_with_overloaded_instead_of_blocking() {
        // No workers draining: fill the queue directly.
        let server = server(ServerConfig {
            queue_capacity: 1,
            ..small_config()
        });
        let lane = ResponseLane::new();
        let mut local_shutdown = false;
        let line = Request::Devices.to_json();
        server.accept_line(&line, &lane, &mut local_shutdown, false, None);
        server.accept_line(&line, &lane, &mut local_shutdown, false, None);
        lane.close();
        let first = lane.next().unwrap();
        let second = lane.next().unwrap();
        // The second was rejected inline and is already filled.
        let rejected = Response::parse(&second.wait()).unwrap();
        assert_eq!(rejected.error().unwrap().code, ErrorCode::Overloaded);
        assert_eq!(server.stats().requests.rejected, 1);
        assert_eq!(server.stats().queue.depth, 1);
        // Drain the queued job so `first` fills.
        server.worker_drain_one();
        assert!(matches!(
            Response::parse(&first.wait()).unwrap(),
            Response::Devices { .. }
        ));
    }

    #[test]
    fn a_dead_writer_poisons_the_lane_and_the_pump_stops_feeding_it() {
        // Regression: write_lane used to swallow socket errors while
        // the connection's reader kept parsing and enqueueing requests
        // whose answers could never be delivered.
        struct FailingWriter {
            remaining: usize,
        }
        impl Write for FailingWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.remaining == 0 {
                    return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer went away"));
                }
                let n = buf.len().min(self.remaining);
                self.remaining -= n;
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let lane = ResponseLane::new();
        lane.push(Arc::new(Slot::filled("first response body".into())));
        lane.push(Arc::new(Slot::filled("second response body".into())));
        lane.close();
        // The writer dies 4 bytes into the first body: the error must
        // be reported, the lane poisoned, and the rest still drained.
        let result = Server::write_lane(&lane, FailingWriter { remaining: 4 }, None);
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert!(lane.is_poisoned(), "write error poisons the lane");
        assert!(lane.next().is_none(), "queued slots were still drained");
        // And the pump refuses to feed a poisoned lane: none of these
        // perfectly valid requests may be accepted for a dead client.
        let server = server(small_config());
        let stream = format!(
            "{}\n{}\n",
            Request::Devices.to_json(),
            Request::Devices.to_json()
        );
        server.pump(stream.as_bytes(), &lane, false, None);
        assert_eq!(
            server.stats().requests.total,
            0,
            "no request accepted once the writer is known dead"
        );
    }

    #[test]
    fn socket_setup_failures_are_counted() {
        // `connection()` used to bail through `?` on try_clone /
        // set_read_timeout errors — invisible in the stats.
        let server = server(small_config());
        server.note_setup_failure(&io::Error::other("synthetic fd-pressure failure"));
        let conns = server.stats().connections;
        assert_eq!(conns.failed, 1);
        assert_eq!(conns.opened, 0);
        assert_eq!(conns.active, 0);
    }

    #[test]
    fn per_client_quota_rejects_only_the_chatty_peer() {
        let server = server(ServerConfig {
            admission: AdmissionConfig {
                p99_target_us: None,
                quota: Some(Quota {
                    rate_per_sec: 1,
                    burst: 2,
                }),
            },
            ..small_config()
        });
        let lane = ResponseLane::new();
        let mut local_shutdown = false;
        let line = Request::predict(Device::TitanX, SAXPY).to_json();
        let chatty = Some(IpAddr::V4(Ipv4Addr::new(127, 0, 0, 1)));
        let other = Some(IpAddr::V4(Ipv4Addr::new(127, 0, 0, 2)));
        server.accept_line(&line, &lane, &mut local_shutdown, false, chatty);
        server.accept_line(&line, &lane, &mut local_shutdown, false, chatty);
        server.accept_line(&line, &lane, &mut local_shutdown, false, chatty); // over burst
        server.accept_line(&line, &lane, &mut local_shutdown, false, other);
        lane.close();
        // Three jobs were queued (1st, 2nd, 4th); drain them by hand.
        server.worker_drain_one();
        server.worker_drain_one();
        server.worker_drain_one();
        let bodies: Vec<String> = std::iter::from_fn(|| lane.next())
            .map(|s| s.wait())
            .collect();
        assert_eq!(bodies.len(), 4);
        assert!(matches!(
            Response::parse(&bodies[0]).unwrap(),
            Response::Predict { .. }
        ));
        assert!(matches!(
            Response::parse(&bodies[1]).unwrap(),
            Response::Predict { .. }
        ));
        let refused = Response::parse(&bodies[2]).unwrap();
        assert_eq!(refused.error().unwrap().code, ErrorCode::Overloaded);
        assert!(refused.error().unwrap().message.contains("quota"));
        assert!(matches!(
            Response::parse(&bodies[3]).unwrap(),
            Response::Predict { .. }
        ));
        let stats = server.stats().requests;
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.rejected_quota, 1);
        assert_eq!(stats.rejected_p99, 0);
    }

    #[test]
    fn reload_swaps_the_model_and_invalidates_the_device_cache() {
        let server = server(small_config());
        let predict = Request::predict(Device::TitanX, SAXPY);
        let reference = server.body_for(&predict, &mut SpanRecorder::start());
        assert!(!server.front.is_empty(), "prediction was cached");
        // Persist the same model and hot-swap it in: bytes must stay
        // identical (same artifact), but the cache must have been
        // swept and the slot version bumped.
        let path = format!(
            "{}/../../target/reload-test-{}.json",
            env!("CARGO_MANIFEST_DIR"),
            std::process::id()
        );
        planner().save(&path).expect("artifact saves");
        let body = server.reload_body("titan-x", &path);
        match Response::parse(&body).expect("reload response parses") {
            Response::Reload { device, version } => {
                assert_eq!(device, Device::TitanX);
                assert_eq!(version, 2, "first reload bumps version 1 -> 2");
            }
            other => panic!("expected a reload response, got {other:?}"),
        }
        assert_eq!(server.front.len(), 0, "device cache entries invalidated");
        assert_eq!(
            server.body_for(&predict, &mut SpanRecorder::start()),
            reference,
            "same artifact predicts the same bytes"
        );
        // Failure paths: bad path, unknown device, unserved device —
        // all typed, none of them disturb the serving slot.
        let failed = Response::parse(&server.reload_body("titan-x", "/no/such/artifact.json"))
            .expect("error response parses");
        assert_eq!(failed.error().unwrap().code, ErrorCode::ReloadFailed);
        let unknown = Response::parse(&server.reload_body("gtx-9000", &path)).unwrap();
        assert_eq!(unknown.error().unwrap().code, ErrorCode::UnknownDevice);
        let unserved = Response::parse(&server.reload_body("tesla-p100", &path)).unwrap();
        assert_eq!(unserved.error().unwrap().code, ErrorCode::DeviceNotServed);
        assert_eq!(server.stats().requests.reload, 4);
        assert_eq!(
            server.body_for(&predict, &mut SpanRecorder::start()),
            reference,
            "failed reloads leave the model serving"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn a_busy_client_cannot_block_tcp_shutdown() {
        // Regression: pump() used to check the shutdown flag only in
        // its read-timeout arm, so a client streaming requests
        // back-to-back kept its connection thread (and the daemon)
        // alive forever after another client's `shutdown`.
        let server = Arc::new(server(ServerConfig {
            workers: 1,
            ..small_config()
        }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.serve(listener).unwrap())
        };
        // The busy client: writes requests as fast as the socket
        // accepts them, never reading, until the server hangs up.
        let busy = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let line = format!("{}\n", Request::Devices.to_json());
            while writer.write_all(line.as_bytes()).is_ok() {}
        });
        // Give the busy stream a moment to be mid-flow, then shut
        // down via a second connection.
        std::thread::sleep(Duration::from_millis(100));
        {
            use std::io::BufRead as _;
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            writeln!(writer, "{}", Request::Shutdown.to_json()).unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(matches!(
                Response::parse(line.trim()).unwrap(),
                Response::Shutdown
            ));
        }
        // The daemon must drain and exit even though the busy client
        // never stops sending; a wedged serve() would hang the suite
        // here, which the harness reports as the regression.
        let summary = daemon.join().unwrap();
        assert!(summary.requests.shutdown >= 1);
        busy.join().unwrap();
    }

    #[test]
    fn connections_past_the_cap_get_a_typed_refusal() {
        use std::io::BufRead as _;
        // Regression: serve() used to spawn one thread per accepted
        // socket with no bound at all.
        let server = Arc::new(server(ServerConfig {
            max_connections: 2,
            ..small_config()
        }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.serve(listener).unwrap())
        };
        // Fill the cap with two established connections, each proven
        // live by a round-trip (accept() is asynchronous to connect()).
        let mut held = Vec::new();
        for _ in 0..2 {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            writeln!(writer, "{}", Request::Devices.to_json()).unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(matches!(
                Response::parse(line.trim()).unwrap(),
                Response::Devices { .. }
            ));
            held.push((reader, writer));
        }
        // Everything past the cap is refused with a typed line, then
        // closed (EOF) — no thread is spawned for it.
        for _ in 0..3 {
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let refusal = Response::parse(line.trim()).expect("refusal line parses");
            assert_eq!(refusal.error().unwrap().code, ErrorCode::Overloaded);
            assert!(refusal.error().unwrap().message.contains("connection cap"));
            let mut rest = String::new();
            assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "then EOF");
        }
        // Shut down through one of the established connections.
        {
            let (reader, writer) = &mut held[0];
            writeln!(writer, "{}", Request::Shutdown.to_json()).unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(matches!(
                Response::parse(line.trim()).unwrap(),
                Response::Shutdown
            ));
        }
        let summary = daemon.join().unwrap();
        assert_eq!(summary.connections.opened, 2);
        assert_eq!(summary.connections.refused, 3);
        assert_eq!(summary.connections.active, 0, "all threads accounted for");
    }

    #[test]
    fn tcp_round_trip_with_concurrent_clients() {
        use std::io::BufRead as _;
        let server = Arc::new(server(small_config()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server2 = Arc::clone(&server);
        let daemon = std::thread::spawn(move || server2.serve(listener).unwrap());
        let client = |requests: Vec<Request>| -> Vec<Response> {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            requests
                .iter()
                .map(|r| {
                    writeln!(writer, "{}", r.to_json()).unwrap();
                    writer.flush().unwrap();
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    Response::parse(line.trim()).unwrap()
                })
                .collect()
        };
        // Two sequential clients sharing the warm cache.
        let first = client(vec![
            Request::predict(Device::TitanX, SAXPY),
            Request::Devices,
        ]);
        assert!(matches!(first[0], Response::Predict { .. }));
        assert!(matches!(first[1], Response::Devices { .. }));
        let second = client(vec![
            Request::predict(Device::TitanX, SAXPY),
            Request::Shutdown,
        ]);
        assert!(matches!(second[0], Response::Predict { .. }));
        assert!(matches!(second[1], Response::Shutdown));
        let summary = daemon.join().unwrap();
        assert_eq!(summary.requests.predict, 2);
        assert!(summary.front_cache.hits >= 1, "second client hit the cache");
        assert_eq!(summary.connections.opened, 2);
        assert_eq!(summary.connections.closed, 2);
        assert!(server.is_shutting_down());
    }
}
