//! The prediction server: planners for every served device, a worker
//! pool behind a bounded queue, the response front cache, and the
//! TCP/stdio serving loops.
//!
//! # Determinism
//!
//! For every request except `stats` (a live metrics snapshot by
//! definition), the response body is a pure function of the request
//! and the loaded models: workers merge nothing, each request's
//! response is computed independently, and the per-connection
//! [`ResponseLane`] emits bodies strictly in request order. Replaying
//! a recorded request stream therefore produces **byte-identical**
//! response bodies at any worker count — pinned by
//! `tests/determinism.rs` at the workspace root, the serving-side twin
//! of the engine's serial-vs-parallel contract. Cache hits replay the
//! exact bytes that were first computed, so the front cache cannot
//! introduce drift either.
//!
//! Within one stream, requests after a `shutdown` are answered with a
//! typed `shutting_down` error by the stream's own reader (not raced
//! through the draining queue), keeping even the drain deterministic;
//! and single-stream replay ([`Server::serve_lines`]) applies
//! backpressure by *pausing the reader* on a full queue (a pipe's
//! natural flow control), so the contract holds for streams of any
//! length. Only genuinely concurrent effects are outside it: across
//! *concurrent TCP connections* the shutdown point and `overloaded`
//! rejections are inherently timing-dependent, as on any real server.

use crate::cache::{key_hash, FrontCache};
use crate::metrics::Metrics;
use crate::protocol::{
    CacheStats, DeviceInfo, ErrorBody, ErrorCode, QueueStats, Request, Response, ServerStats,
};
use crate::queue::{BoundedQueue, PushError, ResponseLane, Slot};
use gpufreq_core::{ascii_table, ProfileCache, TrainedPlanner};
use gpufreq_sim::Device;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the nonblocking accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Read timeout on accepted sockets, so connection readers notice a
/// server-wide shutdown even while their client is idle.
const READ_POLL: Duration = Duration::from_millis(200);

/// Requests larger than this are answered with `bad_request` instead
/// of being parsed (a kernel source is kilobytes; a megabyte line is
/// not a kernel). The pump discards — never buffers — bytes beyond
/// the bound, so oversized (or newline-less) input cannot grow server
/// memory.
const MAX_LINE_BYTES: usize = 4 << 20;

/// The `bad_request` body for a line crossing [`MAX_LINE_BYTES`].
fn oversize_error() -> ErrorBody {
    ErrorBody::new(
        ErrorCode::BadRequest,
        format!("request line exceeds {MAX_LINE_BYTES} bytes"),
    )
}

/// Append `bytes` to the line buffer unless that would cross
/// [`MAX_LINE_BYTES`]; past the bound the line is marked overflowed
/// and everything further is dropped on the floor.
fn append_bounded(buf: &mut Vec<u8>, bytes: &[u8], overflowed: &mut bool) {
    if *overflowed || buf.len() + bytes.len() > MAX_LINE_BYTES {
        *overflowed = true;
    } else {
        buf.extend_from_slice(bytes);
    }
}

/// Sizing knobs for a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads executing requests (minimum 1). Responses are
    /// byte-identical for every value; only throughput changes.
    pub workers: usize,
    /// Bound of the request queue; a full queue rejects with a typed
    /// `overloaded` error instead of blocking the acceptor.
    pub queue_capacity: usize,
    /// Total entries of the response front cache (0 disables it).
    pub cache_capacity: usize,
    /// Shards of the front cache (more shards, less lock contention).
    pub cache_shards: usize,
    /// Entry bound of the shared kernel-analysis cache (0 =
    /// unbounded).
    pub analysis_cache_capacity: usize,
}

impl Default for ServerConfig {
    /// All cores (capped at 8) workers, a 256-deep queue, a 4096-entry
    /// front cache over 16 shards, a 1024-entry analysis cache.
    fn default() -> ServerConfig {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
            queue_capacity: 256,
            cache_capacity: 4096,
            cache_shards: 16,
            analysis_cache_capacity: 1024,
        }
    }
}

/// Why a [`Server`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No planners were supplied.
    NoPlanners,
    /// Two planners target the same device.
    DuplicateDevice(Device),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoPlanners => f.write_str("a server needs at least one trained planner"),
            ServeError::DuplicateDevice(d) => {
                write!(f, "two planners target the same device `{d}`")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One queued unit of work: the parsed request, the slot its response
/// body goes into, and when it was accepted (for the latency
/// histogram).
#[derive(Debug)]
struct Job {
    request: Request,
    slot: Arc<Slot>,
    accepted: Instant,
}

/// The long-running prediction server. See the [module docs](self) for
/// the determinism contract and [`ServerConfig`] for sizing.
///
/// Construction takes already-trained planners (train them with
/// [`Planner::builder`](gpufreq_core::Planner::builder) or load
/// persisted artifacts); the server pins each planner's engine serial
/// — parallelism comes from the worker pool, one request per worker —
/// and re-homes them onto one shared, bounded analysis cache.
#[derive(Debug)]
pub struct Server {
    planners: Vec<(Device, TrainedPlanner)>,
    analysis_cache: Arc<ProfileCache>,
    front: FrontCache,
    metrics: Metrics,
    queue: BoundedQueue<Job>,
    shutting_down: AtomicBool,
    workers: usize,
}

impl Server {
    /// Build a server holding `planners` (one per device).
    ///
    /// # Errors
    /// [`ServeError::NoPlanners`] for an empty list,
    /// [`ServeError::DuplicateDevice`] when two planners target the
    /// same device.
    pub fn new(planners: Vec<TrainedPlanner>, config: ServerConfig) -> Result<Server, ServeError> {
        if planners.is_empty() {
            return Err(ServeError::NoPlanners);
        }
        let analysis_cache = Arc::new(if config.analysis_cache_capacity == 0 {
            ProfileCache::new()
        } else {
            ProfileCache::with_capacity(config.analysis_cache_capacity)
        });
        let mut keyed: Vec<(Device, TrainedPlanner)> = Vec::with_capacity(planners.len());
        for planner in planners {
            let device = planner.device();
            if keyed.iter().any(|(d, _)| *d == device) {
                return Err(ServeError::DuplicateDevice(device));
            }
            keyed.push((
                device,
                planner
                    .with_jobs(Some(1))
                    .with_cache(Arc::clone(&analysis_cache)),
            ));
        }
        Ok(Server {
            planners: keyed,
            analysis_cache,
            front: FrontCache::new(config.cache_capacity, config.cache_shards),
            metrics: Metrics::new(),
            queue: BoundedQueue::new(config.queue_capacity),
            shutting_down: AtomicBool::new(false),
            workers: config.workers.max(1),
        })
    }

    /// The devices served, in planner order.
    pub fn devices(&self) -> Vec<Device> {
        self.planners.iter().map(|(d, _)| *d).collect()
    }

    /// Whether a `shutdown` request has been accepted.
    pub fn is_shutting_down(&self) -> bool {
        // ordering: Acquire pairs with the Release store in
        // `initiate_shutdown`: a thread that observes `true` also
        // observes everything the initiator did before flipping the
        // flag (previously SeqCst, which bought nothing over the
        // pair — no other atomic participates in this protocol).
        self.shutting_down.load(Ordering::Acquire)
    }

    /// Stop accepting new work (queued work still drains). Idempotent;
    /// also triggered by the `shutdown` request.
    pub fn initiate_shutdown(&self) {
        // ordering: Release publishes the initiator's prior writes to
        // every Acquire load in `is_shutting_down`.
        self.shutting_down.store(true, Ordering::Release);
        self.queue.close();
    }

    /// A live metrics snapshot (the `stats` response payload).
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.metrics.request_counts(),
            front_cache: CacheStats {
                hits: self.front.hits(),
                misses: self.front.misses(),
                evictions: self.front.evictions(),
                len: self.front.len(),
                capacity: self.front.capacity(),
            },
            analysis_cache: CacheStats {
                hits: self.analysis_cache.hits() as u64,
                misses: self.analysis_cache.misses() as u64,
                evictions: self.analysis_cache.evictions() as u64,
                len: self.analysis_cache.len(),
                capacity: self.analysis_cache.capacity().unwrap_or(0),
            },
            queue: QueueStats {
                depth: self.queue.len(),
                capacity: self.queue.capacity(),
            },
            workers: self.workers,
            latency_us: self.metrics.latency(),
        }
    }

    // ------------------------------------------------------------------
    // Request execution
    // ------------------------------------------------------------------

    /// Resolve a wire device id to a served planner.
    fn resolve(&self, id: &str) -> Result<(Device, &TrainedPlanner), ErrorBody> {
        let device: Device = id
            .parse()
            .map_err(|e| ErrorBody::new(ErrorCode::UnknownDevice, format!("{e}")))?;
        self.planners
            .iter()
            .find(|(d, _)| *d == device)
            .map(|(d, p)| (*d, p))
            .ok_or_else(|| {
                ErrorBody::new(
                    ErrorCode::DeviceNotServed,
                    format!(
                        "no model loaded for `{device}` (serving: {})",
                        self.planners
                            .iter()
                            .map(|(d, _)| d.id())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                )
            })
    }

    /// The cached compact-JSON `ParetoPrediction` fragment for one
    /// `(device, source)` pair; a hit skips parsing, analysis and the
    /// SVR scan entirely. Failures are typed and never cached.
    fn prediction_fragment(
        &self,
        device: Device,
        planner: &TrainedPlanner,
        source: &str,
    ) -> Result<Arc<str>, ErrorBody> {
        let key = key_hash(device, source);
        if let Some(hit) = self.front.get(key, source) {
            return Ok(hit);
        }
        match planner.predict_source(source) {
            // `to_compact_json` writes the same bytes as the generic
            // serializer (pinned in `gpufreq_core::predict`) without
            // building a value tree per response.
            Ok(prediction) => {
                let fragment: Arc<str> = Arc::from(prediction.to_compact_json().as_str());
                self.front.insert(key, source, Arc::clone(&fragment));
                Ok(fragment)
            }
            Err(e) => Err(ErrorBody::new(ErrorCode::Kernel, format!("{e}"))),
        }
    }

    /// Execute a request into a typed [`Response`] (no front cache, no
    /// metrics) — the reference semantics the fast path is pinned
    /// against, and the API in-process callers use.
    pub fn handle(&self, request: &Request) -> Response {
        match request {
            Request::Predict { device, source } => match self.resolve(device) {
                Ok((device, planner)) => match planner.predict_source(source) {
                    Ok(prediction) => Response::Predict { device, prediction },
                    Err(e) => ErrorBody::new(ErrorCode::Kernel, format!("{e}")).into_response(),
                },
                Err(e) => e.into_response(),
            },
            Request::PredictBatch { device, sources } => match self.resolve(device) {
                Ok((device, planner)) => Response::PredictBatch {
                    device,
                    results: planner
                        .predict_batch(sources)
                        .into_iter()
                        .map(|r| match r {
                            Ok(p) => crate::protocol::BatchResult::Ok(p),
                            Err(e) => crate::protocol::BatchResult::Err(ErrorBody::new(
                                ErrorCode::Kernel,
                                format!("{e}"),
                            )),
                        })
                        .collect(),
                },
                Err(e) => e.into_response(),
            },
            Request::Devices => Response::Devices {
                devices: self
                    .planners
                    .iter()
                    .map(|(device, planner)| {
                        let spec = planner.simulator().spec();
                        DeviceInfo {
                            id: device.id().to_string(),
                            name: spec.name.clone(),
                            memory_domains: spec.clocks.supported_memory_clocks().len(),
                            configurations: spec.clocks.actual_configs().len(),
                        }
                    })
                    .collect(),
            },
            Request::Stats => Response::Stats {
                stats: self.stats(),
            },
            Request::Shutdown => Response::Shutdown,
        }
    }

    /// Serialized error response, counted.
    fn error_response(&self, error: ErrorBody) -> String {
        self.metrics.count_error();
        error.into_response().to_json()
    }

    /// Execute a request to its serialized response body — the worker
    /// path: metrics are counted, predictions go through the front
    /// cache, `shutdown` flips the server into draining.
    fn body_for(&self, request: &Request) -> String {
        match request {
            Request::Predict { device, source } => {
                self.metrics.count_predict();
                match self.resolve(device) {
                    Ok((device, planner)) => {
                        match self.prediction_fragment(device, planner, source) {
                            Ok(fragment) => format!(
                                "{{\"ok\":\"predict\",\"device\":\"{}\",\"prediction\":{}}}",
                                device.id(),
                                fragment
                            ),
                            Err(e) => self.error_response(e),
                        }
                    }
                    Err(e) => self.error_response(e),
                }
            }
            Request::PredictBatch { device, sources } => {
                self.metrics.count_predict_batch(sources.len());
                match self.resolve(device) {
                    Ok((device, planner)) => {
                        let mut body = format!(
                            "{{\"ok\":\"predict_batch\",\"device\":\"{}\",\"results\":[",
                            device.id()
                        );
                        for (i, source) in sources.iter().enumerate() {
                            if i > 0 {
                                body.push(',');
                            }
                            match self.prediction_fragment(device, planner, source) {
                                Ok(fragment) => {
                                    body.push_str("{\"prediction\":");
                                    body.push_str(&fragment);
                                    body.push('}');
                                }
                                Err(e) => {
                                    body.push_str("{\"error\":");
                                    body.push_str(
                                        &serde_json::to_string(&e)
                                            // analyze:allow(panic-in-request-path, reason = "ErrorBody is a struct of plain strings; serializing it cannot fail")
                                            .expect("error serialization is infallible"),
                                    );
                                    body.push('}');
                                }
                            }
                        }
                        body.push_str("]}");
                        body
                    }
                    Err(e) => self.error_response(e),
                }
            }
            Request::Devices => {
                self.metrics.count_devices();
                self.handle(request).to_json()
            }
            Request::Stats => {
                self.metrics.count_stats();
                self.handle(request).to_json()
            }
            Request::Shutdown => {
                self.metrics.count_shutdown();
                self.initiate_shutdown();
                Response::Shutdown.to_json()
            }
        }
    }

    // ------------------------------------------------------------------
    // Worker pool + connection plumbing
    // ------------------------------------------------------------------

    /// One worker: pop jobs until the queue is closed and drained.
    ///
    /// A panic inside request execution must not strand the waiting
    /// connection: it is caught, answered as a typed `internal` error,
    /// and the worker keeps serving.
    fn worker_loop(&self) {
        while let Some(job) = self.queue.pop() {
            let body = self.execute(&job);
            job.slot.fill(body);
        }
    }

    /// Run one job to its response body, catching panics so the
    /// response [`Slot`] is *always* filled (an unfilled slot would
    /// wedge the connection's writer forever).
    fn execute(&self, job: &Job) -> String {
        let body =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.body_for(&job.request)))
                .unwrap_or_else(|_| {
                    self.error_response(ErrorBody::new(
                        ErrorCode::Internal,
                        "internal error while serving the request",
                    ))
                });
        self.metrics
            .observe_us(job.accepted.elapsed().as_micros() as u64);
        body
    }

    /// Process exactly one queued job — lets tests drive the worker
    /// side by hand without spawning a pool.
    #[cfg(test)]
    fn worker_drain_one(&self) {
        let job = self.queue.pop().expect("a job is queued");
        let body = self.execute(&job);
        job.slot.fill(body);
    }

    /// Accept one protocol line: parse, enqueue (or answer inline),
    /// and push the response slot onto the connection's in-order lane.
    ///
    /// `wait_for_space` selects the backpressure flavor: single-stream
    /// replay pauses the reader on a full queue (so replayed responses
    /// never depend on worker timing), while TCP connections reject
    /// with `overloaded` (the acceptor must never block).
    fn accept_line(
        &self,
        line: &str,
        lane: &ResponseLane,
        local_shutdown: &mut bool,
        wait_for_space: bool,
    ) {
        self.metrics.count_line();
        let accepted = Instant::now();
        let inline = |error: ErrorBody| {
            let body = self.error_response(error);
            self.metrics
                .observe_us(accepted.elapsed().as_micros() as u64);
            lane.push(Arc::new(Slot::filled(body)));
        };
        if line.len() > MAX_LINE_BYTES {
            inline(oversize_error());
            return;
        }
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(e) => {
                inline(e);
                return;
            }
        };
        if *local_shutdown {
            // Deterministic drain: once this stream has asked for
            // shutdown, everything after it is refused by the stream's
            // own reader instead of racing the closing queue.
            inline(ErrorBody::new(
                ErrorCode::ShuttingDown,
                "server is shutting down",
            ));
            return;
        }
        if matches!(request, Request::Shutdown) {
            // Control-plane: a shutdown must never lose a race against
            // a data-plane queue kept full by busy clients, so it is
            // answered inline instead of queued. Closing the queue
            // refuses *new* work; everything already queued still
            // drains, and this lane keeps emitting responses in
            // request order.
            self.metrics.count_shutdown();
            self.initiate_shutdown();
            *local_shutdown = true;
            self.metrics
                .observe_us(accepted.elapsed().as_micros() as u64);
            lane.push(Arc::new(Slot::filled(Response::Shutdown.to_json())));
            return;
        }
        let slot = Arc::new(Slot::new());
        let job = Job {
            request,
            slot: Arc::clone(&slot),
            accepted,
        };
        let pushed = if wait_for_space {
            self.queue.push_wait(job)
        } else {
            self.queue.try_push(job)
        };
        match pushed {
            Ok(()) => {
                lane.push(slot);
            }
            Err((_, PushError::Full)) => {
                self.metrics.count_rejected();
                let body = ErrorBody::new(
                    ErrorCode::Overloaded,
                    format!(
                        "request queue is full ({} queued); retry later",
                        self.queue.capacity()
                    ),
                )
                .into_response()
                .to_json();
                self.metrics
                    .observe_us(accepted.elapsed().as_micros() as u64);
                lane.push(Arc::new(Slot::filled(body)));
            }
            Err((_, PushError::Closed)) => {
                inline(ErrorBody::new(
                    ErrorCode::ShuttingDown,
                    "server is shutting down",
                ));
            }
        }
    }

    /// Read protocol lines from `reader` until EOF (or, under
    /// shutdown, until the next read timeout), feeding `lane`.
    ///
    /// Lines are assembled through a bounded buffer: once a line
    /// crosses [`MAX_LINE_BYTES`] the rest of it is *discarded as it
    /// streams in* (never accumulated), and the finished line is
    /// answered with a typed `bad_request` — a newline-less firehose
    /// cannot grow server memory.
    fn pump<R: BufRead>(&self, mut reader: R, lane: &ResponseLane, wait_for_space: bool) {
        let mut buf: Vec<u8> = Vec::new();
        let mut overflowed = false;
        let mut local_shutdown = false;
        loop {
            let (consumed, complete) = match reader.fill_buf() {
                Ok([]) => {
                    // EOF: a final unterminated line is still a request.
                    if !buf.is_empty() || overflowed {
                        self.finish_line(
                            &mut buf,
                            &mut overflowed,
                            lane,
                            &mut local_shutdown,
                            wait_for_space,
                        );
                    }
                    break;
                }
                Ok(bytes) => match bytes.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        append_bounded(&mut buf, &bytes[..pos], &mut overflowed);
                        (pos + 1, true)
                    }
                    None => {
                        append_bounded(&mut buf, bytes, &mut overflowed);
                        (bytes.len(), false)
                    }
                },
                // A read timeout (TCP sockets poll at `READ_POLL`):
                // keep any partial line buffered and re-check the
                // shutdown flag.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    if self.is_shutting_down() {
                        break;
                    }
                    continue;
                }
                Err(_) => break,
            };
            reader.consume(consumed);
            if complete {
                self.finish_line(
                    &mut buf,
                    &mut overflowed,
                    lane,
                    &mut local_shutdown,
                    wait_for_space,
                );
            }
            // TCP only: a client that keeps streaming must not pin its
            // connection thread (and with it the daemon) open across a
            // server-wide shutdown — the timeout arm alone never fires
            // while data keeps arriving. Replay streams instead drain
            // to EOF so every recorded line gets its deterministic
            // answer.
            if !wait_for_space && self.is_shutting_down() {
                break;
            }
        }
    }

    /// One assembled line out of [`pump`](Server::pump): answer
    /// oversize and non-UTF-8 lines with typed errors, hand everything
    /// else to [`accept_line`](Server::accept_line). Resets the buffer
    /// for the next line.
    fn finish_line(
        &self,
        buf: &mut Vec<u8>,
        overflowed: &mut bool,
        lane: &ResponseLane,
        local_shutdown: &mut bool,
        wait_for_space: bool,
    ) {
        let line_bytes = std::mem::take(buf);
        if std::mem::take(overflowed) {
            self.metrics.count_line();
            lane.push(Arc::new(Slot::filled(
                self.error_response(oversize_error()),
            )));
            return;
        }
        let Ok(line) = String::from_utf8(line_bytes) else {
            self.metrics.count_line();
            lane.push(Arc::new(Slot::filled(self.error_response(ErrorBody::new(
                ErrorCode::BadRequest,
                "request line is not valid UTF-8",
            )))));
            return;
        };
        let line = line.trim();
        if !line.is_empty() {
            self.accept_line(line, lane, local_shutdown, wait_for_space);
        }
    }

    /// Serve one already-connected byte stream (stdin/stdout, a pipe,
    /// an in-memory transcript): spawn the worker pool, answer every
    /// line in order, then drain and shut down at EOF. Returns the
    /// final metrics snapshot — the daemon's exit summary.
    ///
    /// This is also the replay entry point: determinism tests feed the
    /// same recorded stream at different worker counts and compare the
    /// output bytes.
    pub fn serve_lines<R, W>(&self, reader: R, writer: W) -> io::Result<ServerStats>
    where
        R: BufRead,
        W: Write + Send,
    {
        let lane = ResponseLane::new();
        let write_result = std::thread::scope(|s| {
            for _ in 0..self.workers {
                s.spawn(|| self.worker_loop());
            }
            let lane_ref = &lane;
            let writer_thread = s.spawn(move || Server::write_lane(lane_ref, writer));
            // Single-stream replay: pause the reader on a full queue
            // instead of rejecting, so the replayed bytes stay
            // independent of worker timing at any stream length.
            self.pump(reader, &lane, true);
            lane.close();
            // analyze:allow(panic-in-request-path, reason = "join() only errors if the writer itself panicked; re-raising that panic is the faithful report")
            let result = writer_thread.join().expect("writer thread panicked");
            // Now that every accepted job has been answered, release
            // the workers (the scope joins them).
            self.initiate_shutdown();
            result
        });
        write_result?;
        Ok(self.stats())
    }

    /// Drain `lane` in order into `writer`, one body per line. Each
    /// body and its newline go out in a single write, and any further
    /// responses that are already finished ride along in the same
    /// write (bounded) — a pipelining client wakes once per batch
    /// instead of once per line. Write errors stop writing but keep
    /// draining, so producers never block.
    fn write_lane<W: Write>(lane: &ResponseLane, mut writer: W) -> io::Result<()> {
        /// Stop coalescing once a batch reaches this many bytes.
        const BATCH_BYTES: usize = 256 * 1024;
        let mut result = Ok(());
        let mut buf: Vec<u8> = Vec::new();
        // A slot popped by `try_next` whose body was still being
        // computed: it is next in request order, so it opens the
        // following batch.
        let mut carry: Option<std::sync::Arc<Slot>> = None;
        while let Some(slot) = carry.take().or_else(|| lane.next()) {
            buf.clear();
            buf.extend_from_slice(slot.wait().as_bytes());
            buf.push(b'\n');
            while buf.len() < BATCH_BYTES {
                let Some(next) = lane.try_next() else { break };
                match next.try_take() {
                    Some(body) => {
                        buf.extend_from_slice(body.as_bytes());
                        buf.push(b'\n');
                    }
                    None => {
                        carry = Some(next);
                        break;
                    }
                }
            }
            if result.is_ok() {
                result = writer.write_all(&buf).and_then(|()| writer.flush());
            }
        }
        result
    }

    /// Handle one accepted TCP connection: reader + in-order writer.
    fn connection(&self, stream: TcpStream) -> io::Result<()> {
        stream.set_nonblocking(false)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(READ_POLL))?;
        let reader = BufReader::new(stream.try_clone()?);
        let lane = ResponseLane::new();
        std::thread::scope(|s| {
            let lane_ref = &lane;
            let writer_thread = s.spawn(move || Server::write_lane(lane_ref, stream));
            // TCP: never block the shared acceptor path on a full
            // queue — reject with `overloaded`.
            self.pump(reader, &lane, false);
            lane.close();
            // analyze:allow(panic-in-request-path, reason = "join() only errors if the connection writer panicked; re-raising is the faithful report")
            writer_thread.join().expect("connection writer panicked")
        })
    }

    /// Serve TCP connections on `listener` until a `shutdown` request
    /// arrives, then drain and return the final metrics snapshot.
    ///
    /// Each connection gets its own reader and in-order writer thread;
    /// all of them share the worker pool, queue, caches and metrics.
    pub fn serve(&self, listener: TcpListener) -> io::Result<ServerStats> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|s| {
            for _ in 0..self.workers {
                s.spawn(|| self.worker_loop());
            }
            loop {
                if self.is_shutting_down() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        s.spawn(move || {
                            let _ = self.connection(stream);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        // A transient accept failure must not kill the
                        // daemon; log and keep serving.
                        eprintln!("[gpufreq-serve] accept error: {e}");
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            }
            // Shutdown: the queue is closed, workers drain and exit,
            // connection threads notice the flag at their next read
            // timeout; the scope joins them all.
        });
        Ok(self.stats())
    }
}

/// Render a [`ServerStats`] snapshot as the human-readable summary
/// table the CLI prints on exit and `loadgen` prints per mix.
pub fn render_stats_table(stats: &ServerStats) -> String {
    let r = &stats.requests;
    let hit_rate = |hits: u64, misses: u64| -> String {
        let total = hits + misses;
        if total == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * hits as f64 / total as f64)
        }
    };
    let rows = vec![
        vec!["requests".into(), r.total.to_string()],
        vec!["  predict".into(), r.predict.to_string()],
        vec![
            "  predict_batch".into(),
            format!("{} ({} kernels)", r.predict_batch, r.batch_kernels),
        ],
        vec!["  errors".into(), r.errors.to_string()],
        vec!["  rejected (overloaded)".into(), r.rejected.to_string()],
        vec![
            "front cache hit rate".into(),
            hit_rate(stats.front_cache.hits, stats.front_cache.misses),
        ],
        vec![
            "front cache len/capacity".into(),
            format!("{}/{}", stats.front_cache.len, stats.front_cache.capacity),
        ],
        vec![
            "front cache evictions".into(),
            stats.front_cache.evictions.to_string(),
        ],
        vec![
            "analysis cache hit rate".into(),
            hit_rate(stats.analysis_cache.hits, stats.analysis_cache.misses),
        ],
        vec![
            "queue depth/capacity".into(),
            format!("{}/{}", stats.queue.depth, stats.queue.capacity),
        ],
        vec!["workers".into(), stats.workers.to_string()],
        vec![
            "latency p50/p95/p99 (µs)".into(),
            format!(
                "{}/{}/{}",
                stats.latency_us.p50, stats.latency_us.p95, stats.latency_us.p99
            ),
        ],
        vec!["latency max (µs)".into(), stats.latency_us.max.to_string()],
    ];
    ascii_table(&["metric", "value"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufreq_core::{Corpus, ModelConfig, Planner};
    use std::sync::OnceLock;

    const SAXPY: &str = "__kernel void saxpy(__global float* x, __global float* y, float a) {
        uint i = get_global_id(0);
        y[i] = a * x[i] + y[i];
    }";

    /// One fast Titan X planner shared by every test in this module
    /// (training once keeps the suite fast).
    fn planner() -> TrainedPlanner {
        static PLANNER: OnceLock<TrainedPlanner> = OnceLock::new();
        PLANNER
            .get_or_init(|| {
                Planner::builder()
                    .corpus(Corpus::Fast)
                    .settings(6)
                    .model_config(ModelConfig::relaxed())
                    .train()
                    .expect("fast corpus trains")
            })
            .clone()
    }

    fn server(config: ServerConfig) -> Server {
        Server::new(vec![planner()], config).expect("one planner is valid")
    }

    fn small_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 64,
            cache_shards: 4,
            analysis_cache_capacity: 32,
        }
    }

    #[test]
    fn construction_rejects_empty_and_duplicate_planners() {
        assert_eq!(
            Server::new(Vec::new(), ServerConfig::default()).unwrap_err(),
            ServeError::NoPlanners
        );
        let err = Server::new(vec![planner(), planner()], ServerConfig::default()).unwrap_err();
        assert_eq!(err, ServeError::DuplicateDevice(Device::TitanX));
        assert!(err.to_string().contains("titan-x"), "{err}");
    }

    #[test]
    fn fast_path_bytes_match_reference_serialization() {
        let server = server(small_config());
        // predict: cold (computes), then warm (cache replay) — both
        // must equal the reference `handle` serialization.
        let predict = Request::predict(Device::TitanX, SAXPY);
        let reference = server.handle(&predict).to_json();
        assert_eq!(server.body_for(&predict), reference, "cold");
        assert_eq!(server.body_for(&predict), reference, "warm (cache hit)");
        assert!(server.front.hits() >= 1, "second predict hit the cache");
        // predict_batch, with a per-kernel error in the middle slot.
        let batch = Request::predict_batch(
            Device::TitanX,
            vec![SAXPY.into(), "not a kernel".into(), SAXPY.into()],
        );
        assert_eq!(server.body_for(&batch), server.handle(&batch).to_json());
        // devices and the error responses too.
        let devices = Request::Devices;
        assert_eq!(server.body_for(&devices), server.handle(&devices).to_json());
        for bad in [
            Request::Predict {
                device: "gtx-9000".into(),
                source: SAXPY.into(),
            },
            Request::Predict {
                device: "tesla-p100".into(), // registered but not served
                source: SAXPY.into(),
            },
        ] {
            assert_eq!(server.body_for(&bad), server.handle(&bad).to_json());
        }
    }

    #[test]
    fn unknown_and_unserved_devices_are_typed_errors() {
        let server = server(small_config());
        let unknown = server.handle(&Request::Predict {
            device: "gtx-9000".into(),
            source: SAXPY.into(),
        });
        let error = unknown.error().expect("unknown device is an error");
        assert_eq!(error.code, ErrorCode::UnknownDevice);
        assert!(error.message.contains("titan-x"), "{}", error.message);
        let unserved = server.handle(&Request::Predict {
            device: "tesla-k20c".into(),
            source: SAXPY.into(),
        });
        let error = unserved.error().expect("unserved device is an error");
        assert_eq!(error.code, ErrorCode::DeviceNotServed);
        assert!(
            error.message.contains("serving: titan-x"),
            "{}",
            error.message
        );
    }

    #[test]
    fn serve_lines_answers_in_request_order_and_reports_stats() {
        // One worker: with more, the two identical predicts may run
        // concurrently and both miss the front cache — the response
        // bytes are still identical (pinned below and by the root
        // determinism suite), but the hit *counter* would be racy.
        let server = server(ServerConfig {
            workers: 1,
            ..small_config()
        });
        let stream = [
            Request::predict(Device::TitanX, SAXPY).to_json(),
            "this is not json".to_string(),
            Request::Devices.to_json(),
            Request::predict(Device::TitanX, SAXPY).to_json(),
            Request::Stats.to_json(),
            Request::Shutdown.to_json(),
            // After shutdown in the same stream: deterministic refusal.
            Request::Devices.to_json(),
        ]
        .join("\n");
        let mut out = Vec::new();
        let summary = server.serve_lines(stream.as_bytes(), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 7, "one response per request line");
        let parsed: Vec<Response> = lines
            .iter()
            .map(|l| Response::parse(l).expect("every response line parses"))
            .collect();
        assert!(matches!(parsed[0], Response::Predict { .. }));
        assert_eq!(parsed[1].error().unwrap().code, ErrorCode::BadRequest);
        assert!(matches!(parsed[2], Response::Devices { .. }));
        assert_eq!(
            lines[3], lines[0],
            "repeated kernel replays identical bytes"
        );
        assert!(matches!(parsed[4], Response::Stats { .. }));
        assert!(matches!(parsed[5], Response::Shutdown));
        assert_eq!(parsed[6].error().unwrap().code, ErrorCode::ShuttingDown);
        assert_eq!(summary.requests.total, 7);
        assert_eq!(summary.requests.predict, 2);
        assert_eq!(summary.requests.shutdown, 1);
        assert!(summary.requests.errors >= 2);
        assert!(summary.front_cache.hits >= 1);
        assert!(summary.latency_us.count >= 7);
    }

    #[test]
    fn oversize_and_non_utf8_lines_are_typed_errors_mid_stream() {
        let server = server(small_config());
        // A giant newline-less prefix must not be buffered: the line is
        // rejected, and the valid request after it is still served.
        let mut stream: Vec<u8> = Vec::new();
        stream.extend(std::iter::repeat_n(b'x', MAX_LINE_BYTES + 16));
        stream.push(b'\n');
        stream.extend_from_slice(&[0xff, 0xfe, b'\n']); // invalid UTF-8
        stream.extend_from_slice(Request::Devices.to_json().as_bytes());
        stream.push(b'\n');
        let mut out = Vec::new();
        let summary = server.serve_lines(stream.as_slice(), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3, "all three lines answered: {}", lines.len());
        let oversize = Response::parse(lines[0]).unwrap();
        assert_eq!(oversize.error().unwrap().code, ErrorCode::BadRequest);
        assert!(oversize.error().unwrap().message.contains("exceeds"));
        let utf8 = Response::parse(lines[1]).unwrap();
        assert_eq!(utf8.error().unwrap().code, ErrorCode::BadRequest);
        assert!(utf8.error().unwrap().message.contains("UTF-8"));
        assert!(matches!(
            Response::parse(lines[2]).unwrap(),
            Response::Devices { .. }
        ));
        assert_eq!(summary.requests.total, 3);
        assert_eq!(summary.requests.errors, 2);
    }

    #[test]
    fn replay_longer_than_the_queue_never_sees_overloaded() {
        // Single-stream replay pauses the reader on a full queue, so a
        // stream much longer than the queue bound drains without a
        // single `overloaded` rejection — at any worker count.
        let server = server(ServerConfig {
            workers: 2,
            queue_capacity: 2,
            ..small_config()
        });
        let stream = vec![Request::Devices.to_json(); 64].join("\n");
        let mut out = Vec::new();
        let summary = server.serve_lines(stream.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.requests.total, 64);
        assert_eq!(summary.requests.rejected, 0, "replay must not shed load");
        assert_eq!(summary.requests.devices, 64);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 64);
        assert!(lines.iter().all(|l| *l == lines[0]));
    }

    #[test]
    fn full_queue_rejects_with_overloaded_instead_of_blocking() {
        // No workers draining: fill the queue directly.
        let server = server(ServerConfig {
            queue_capacity: 1,
            ..small_config()
        });
        let lane = ResponseLane::new();
        let mut local_shutdown = false;
        let line = Request::Devices.to_json();
        server.accept_line(&line, &lane, &mut local_shutdown, false);
        server.accept_line(&line, &lane, &mut local_shutdown, false);
        lane.close();
        let first = lane.next().unwrap();
        let second = lane.next().unwrap();
        // The second was rejected inline and is already filled.
        let rejected = Response::parse(&second.wait()).unwrap();
        assert_eq!(rejected.error().unwrap().code, ErrorCode::Overloaded);
        assert_eq!(server.stats().requests.rejected, 1);
        assert_eq!(server.stats().queue.depth, 1);
        // Drain the queued job so `first` fills.
        server.worker_drain_one();
        assert!(matches!(
            Response::parse(&first.wait()).unwrap(),
            Response::Devices { .. }
        ));
    }

    #[test]
    fn a_busy_client_cannot_block_tcp_shutdown() {
        // Regression: pump() used to check the shutdown flag only in
        // its read-timeout arm, so a client streaming requests
        // back-to-back kept its connection thread (and the daemon)
        // alive forever after another client's `shutdown`.
        let server = Arc::new(server(ServerConfig {
            workers: 1,
            ..small_config()
        }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.serve(listener).unwrap())
        };
        // The busy client: writes requests as fast as the socket
        // accepts them, never reading, until the server hangs up.
        let busy = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let line = format!("{}\n", Request::Devices.to_json());
            while writer.write_all(line.as_bytes()).is_ok() {}
        });
        // Give the busy stream a moment to be mid-flow, then shut
        // down via a second connection.
        std::thread::sleep(Duration::from_millis(100));
        {
            use std::io::BufRead as _;
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            writeln!(writer, "{}", Request::Shutdown.to_json()).unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(matches!(
                Response::parse(line.trim()).unwrap(),
                Response::Shutdown
            ));
        }
        // The daemon must drain and exit even though the busy client
        // never stops sending; a wedged serve() would hang the suite
        // here, which the harness reports as the regression.
        let summary = daemon.join().unwrap();
        assert!(summary.requests.shutdown >= 1);
        busy.join().unwrap();
    }

    #[test]
    fn tcp_round_trip_with_concurrent_clients() {
        use std::io::BufRead as _;
        let server = Arc::new(server(small_config()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server2 = Arc::clone(&server);
        let daemon = std::thread::spawn(move || server2.serve(listener).unwrap());
        let client = |requests: Vec<Request>| -> Vec<Response> {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            requests
                .iter()
                .map(|r| {
                    writeln!(writer, "{}", r.to_json()).unwrap();
                    writer.flush().unwrap();
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    Response::parse(line.trim()).unwrap()
                })
                .collect()
        };
        // Two sequential clients sharing the warm cache.
        let first = client(vec![
            Request::predict(Device::TitanX, SAXPY),
            Request::Devices,
        ]);
        assert!(matches!(first[0], Response::Predict { .. }));
        assert!(matches!(first[1], Response::Devices { .. }));
        let second = client(vec![
            Request::predict(Device::TitanX, SAXPY),
            Request::Shutdown,
        ]);
        assert!(matches!(second[0], Response::Predict { .. }));
        assert!(matches!(second[1], Response::Shutdown));
        let summary = daemon.join().unwrap();
        assert_eq!(summary.requests.predict, 2);
        assert!(summary.front_cache.hits >= 1, "second client hit the cache");
        assert!(server.is_shutting_down());
    }
}
