//! The sharded, capacity-bounded response front cache.
//!
//! Keyed by `(device, source-hash)`: a kernel the server has already
//! answered for a device skips *everything* — parsing, static
//! analysis, and the full-configuration SVR scan — and replays the
//! exact serialized prediction bytes, which is also what keeps
//! repeated responses byte-identical by construction. Entries are the
//! compact-JSON `ParetoPrediction` fragments shared by `predict` and
//! `predict_batch` responses, so a kernel cached through one request
//! kind is a hit for the other.
//!
//! Sharding (`shards` independently-locked LRU maps, selected by key
//! hash) keeps workers from serializing on one mutex under load; the
//! capacity bound is split evenly across shards. Hash collisions are
//! guarded by comparing the stored source before a hit is returned —
//! a colliding insert simply replaces the entry (last writer wins),
//! never serves the wrong kernel's bytes.

use gpufreq_sim::Device;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a, the classic dependency-free 64-bit string hash.
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The cache key hash of one `(device, source)` pair.
pub fn key_hash(device: Device, source: &str) -> u64 {
    let h = fnv1a(device.id().as_bytes(), 0xcbf2_9ce4_8422_2325);
    // A separator byte that can appear in neither id nor UTF-8 text,
    // so `(id, source)` pairs can't alias across the boundary.
    fnv1a(source.as_bytes(), fnv1a(&[0xff], h))
}

#[derive(Debug)]
struct Entry {
    /// The full source, kept to verify hits under (astronomically
    /// unlikely) 64-bit hash collisions.
    source: Arc<str>,
    /// The device the body was computed for — shard selection hashes
    /// device and source together, so one device's entries spread over
    /// *all* shards and invalidation must be able to match them.
    device: Device,
    body: Arc<str>,
    tick: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<u64, Entry>,
    /// Recency index: tick → key hash; smallest tick = LRU.
    recency: BTreeMap<u64, u64>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: u64) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(&key) {
            self.recency.remove(&entry.tick);
            entry.tick = tick;
            self.recency.insert(tick, key);
        }
    }
}

/// The sharded LRU described in the [module docs](self).
///
/// All methods take `&self`; the cache is shared by every worker
/// thread. A capacity of `0` disables caching entirely (every lookup
/// is a miss, nothing is stored) — the knob load tests use to measure
/// the uncached baseline.
#[derive(Debug)]
pub struct FrontCache {
    shards: Vec<Mutex<Shard>>,
    capacity: usize,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl FrontCache {
    /// A cache bounded to `capacity` entries across `shards` shards
    /// (shard count minimum 1; capacity 0 disables the cache).
    pub fn new(capacity: usize, shards: usize) -> FrontCache {
        let shards = shards.max(1);
        FrontCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity,
            per_shard: capacity.div_ceil(shards),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // The low bits feed the HashMap inside the shard; use the high
        // bits for shard selection so the two are independent.
        &self.shards[(key >> 32) as usize % self.shards.len()]
    }

    /// Look up the cached body for `(device, source)` with `key` =
    /// [`key_hash`]`(device, source)`. A hit refreshes recency.
    pub fn get(&self, key: u64, source: &str) -> Option<Arc<str>> {
        if self.capacity == 0 {
            // ordering: hit/miss/eviction counters are telemetry; the
            // cached bodies themselves are published by the shard
            // mutex, never by these counters, so Relaxed suffices
            // (here and at every counter site below).
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = lock_shard(self.shard(key));
        match shard.entries.get(&key) {
            Some(entry) if entry.source.as_ref() == source => {
                let body = Arc::clone(&entry.body);
                shard.touch(key);
                drop(shard);
                // ordering: telemetry (see the counter note above).
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(body)
            }
            _ => {
                drop(shard);
                // ordering: telemetry (see the counter note above).
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or, on key collision, replace) the body for
    /// `(device, source)`, evicting the shard's least-recently-used
    /// entries beyond its capacity share.
    pub fn insert(&self, key: u64, device: Device, source: &str, body: Arc<str>) {
        if self.capacity == 0 {
            return;
        }
        let mut shard = lock_shard(self.shard(key));
        if let Some(old) = shard.entries.remove(&key) {
            shard.recency.remove(&old.tick);
        }
        shard.entries.insert(
            key,
            Entry {
                source: Arc::from(source),
                device,
                body,
                tick: 0, // fixed by touch() below
            },
        );
        shard.touch(key);
        let mut evicted = 0;
        while shard.entries.len() > self.per_shard {
            let Some((_, lru_key)) = shard.recency.pop_first() else {
                break;
            };
            shard.entries.remove(&lru_key);
            evicted += 1;
        }
        drop(shard);
        if evicted > 0 {
            // ordering: telemetry (see the counter note in `get`).
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Drop every entry cached for `device` — called after a model
    /// hot-swap so stale predictions cannot be replayed for the new
    /// model. Shards are scanned one at a time (shard selection mixes
    /// device and source, so the entries are spread over all of them);
    /// concurrent inserts racing the sweep may land before or after it,
    /// exactly as they may race the reload itself. Returns the number
    /// of entries removed.
    pub fn invalidate_device(&self, device: Device) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = lock_shard(shard);
            let doomed: Vec<u64> = shard
                .entries
                .iter()
                .filter(|(_, e)| e.device == device)
                .map(|(k, _)| *k)
                .collect();
            for key in doomed {
                if let Some(entry) = shard.entries.remove(&key) {
                    shard.recency.remove(&entry.tick);
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Total configured capacity (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_shard(s).entries.len())
            .sum()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        // ordering: telemetry read; nothing is synchronized by the
        // counters (here and in the two reads below).
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing (or found a colliding entry).
    pub fn misses(&self) -> u64 {
        // ordering: telemetry read (see `hits`).
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay within capacity.
    pub fn evictions(&self) -> u64 {
        // ordering: telemetry read (see `hits`).
        self.evictions.load(Ordering::Relaxed)
    }
}

/// Lock one shard, propagating a poisoned-lock panic.
fn lock_shard(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    // A poisoned shard means another worker already panicked while
    // mutating cache state; serving possibly half-updated entries
    // would be worse than taking this thread down too.
    // analyze:allow(panic-in-request-path, reason = "poisoned shard mutex means a worker already panicked mid-update; propagating is the only sound option")
    shard.lock().expect("front cache poisoned")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hit_after_insert_and_distinct_devices_do_not_alias() {
        let cache = FrontCache::new(16, 2);
        let src = "__kernel void k() {}";
        let k_titan = key_hash(Device::TitanX, src);
        let k_p100 = key_hash(Device::TeslaP100, src);
        assert_ne!(k_titan, k_p100);
        cache.insert(k_titan, Device::TitanX, src, body("titan-body"));
        assert_eq!(cache.get(k_titan, src).as_deref(), Some("titan-body"));
        assert_eq!(cache.get(k_p100, src), None);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn colliding_source_is_never_served() {
        let cache = FrontCache::new(16, 1);
        let key = 42u64; // force a synthetic collision
        cache.insert(key, Device::TitanX, "source-a", body("a"));
        assert_eq!(cache.get(key, "source-b"), None, "collision is a miss");
        cache.insert(key, Device::TitanX, "source-b", body("b"));
        assert_eq!(cache.get(key, "source-b").as_deref(), Some("b"));
        assert_eq!(cache.get(key, "source-a"), None, "last writer won");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_within_a_shard() {
        let cache = FrontCache::new(2, 1);
        cache.insert(1, Device::TitanX, "s1", body("b1"));
        cache.insert(2, Device::TitanX, "s2", body("b2"));
        // Touch 1 so 2 is the LRU victim.
        assert!(cache.get(1, "s1").is_some());
        cache.insert(3, Device::TitanX, "s3", body("b3"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(2, "s2").is_none(), "LRU entry evicted");
        assert!(cache.get(1, "s1").is_some());
        assert!(cache.get(3, "s3").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = FrontCache::new(0, 4);
        cache.insert(1, Device::TitanX, "s", body("b"));
        assert_eq!(cache.get(1, "s"), None);
        assert_eq!(cache.len(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn invalidate_device_sweeps_every_shard_and_spares_other_devices() {
        let cache = FrontCache::new(64, 4);
        // Real hashed keys so entries land on different shards.
        for i in 0..16 {
            let src = format!("__kernel void k{i}() {{}}");
            cache.insert(
                key_hash(Device::TitanX, &src),
                Device::TitanX,
                &src,
                body("titan"),
            );
            cache.insert(
                key_hash(Device::TeslaP100, &src),
                Device::TeslaP100,
                &src,
                body("p100"),
            );
        }
        assert_eq!(cache.len(), 32);
        assert_eq!(cache.invalidate_device(Device::TitanX), 16);
        assert_eq!(cache.len(), 16, "only the reloaded device was swept");
        let survivor = "__kernel void k0() {}";
        assert!(cache
            .get(key_hash(Device::TeslaP100, survivor), survivor)
            .is_some());
        assert!(cache
            .get(key_hash(Device::TitanX, survivor), survivor)
            .is_none());
        assert_eq!(cache.invalidate_device(Device::TitanX), 0, "idempotent");
    }

    #[test]
    fn key_hash_separates_device_and_source_bytes() {
        // `titan-x` + `abc` must not alias some other split of the
        // same byte stream.
        let a = key_hash(Device::TitanX, "abc");
        let b = key_hash(Device::TitanX, "abd");
        assert_ne!(a, b);
    }
}
